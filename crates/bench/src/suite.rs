//! The canonical query suite Q1–Q10 and the figure queries F1–F5.
//!
//! Each query is stated in every formalism that can express it; `None`
//! entries are the expressiveness gaps that experiment T2 reports. The
//! queries run against the three synthetic datasets whose shapes mirror the
//! paper's running examples (see `gql_ssdm::generator`).

use gql_core::QueryKind;
use gql_ssdm::generator::{
    bibliography, cityguide, greengrocer, BibConfig, CityConfig, GrocerConfig,
};
use gql_ssdm::Document;

/// Which dataset a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    CityGuide,
    Greengrocer,
    Bibliography,
}

impl Dataset {
    pub fn name(self) -> &'static str {
        match self {
            Dataset::CityGuide => "city-guide",
            Dataset::Greengrocer => "greengrocer",
            Dataset::Bibliography => "bibliography",
        }
    }

    /// Build the dataset at a scale factor (≈ number of principal records).
    pub fn build(self, scale: usize) -> Document {
        match self {
            Dataset::CityGuide => cityguide(CityConfig {
                restaurants: scale,
                hotels: (scale / 4).max(1),
                seed: 11,
            }),
            Dataset::Greengrocer => greengrocer(GrocerConfig {
                products: scale,
                vendors: (scale / 10).clamp(1, 10),
                seed: 13,
            }),
            Dataset::Bibliography => bibliography(BibConfig {
                books: scale,
                people: (scale / 2).max(1),
                seed: 7,
            }),
        }
    }
}

/// One canonical query with all its formulations.
pub struct SuiteQuery {
    pub id: &'static str,
    pub class: &'static str,
    pub description: &'static str,
    pub dataset: Dataset,
    pub xmlgl: Option<&'static str>,
    pub wglog: Option<&'static str>,
    pub xpath: Option<&'static str>,
}

impl SuiteQuery {
    /// Parse the XML-GL formulation.
    pub fn xmlgl_program(&self) -> Option<gql_xmlgl::ast::Program> {
        self.xmlgl
            .map(|src| gql_xmlgl::dsl::parse(src).expect("suite query parses"))
    }

    /// Parse the WG-Log formulation.
    pub fn wglog_program(&self) -> Option<gql_wglog::rule::Program> {
        self.wglog
            .map(|src| gql_wglog::dsl::parse(src).expect("suite query parses"))
    }

    /// All runnable engine queries, labelled.
    pub fn engine_queries(&self) -> Vec<(&'static str, QueryKind)> {
        let mut out = Vec::new();
        if let Some(p) = self.xmlgl_program() {
            out.push(("XML-GL", QueryKind::XmlGl(p)));
        }
        if let Some(p) = self.wglog_program() {
            out.push(("WG-Log", QueryKind::WgLog(p)));
        }
        if let Some(x) = self.xpath {
            out.push(("XPath", QueryKind::XPath(x.to_string())));
        }
        out
    }
}

/// The suite. Queries Q1–Q10 cover the feature axes of the comparison
/// matrix; each is drawn from the worked examples of the paper or the
/// canonical follow-ups.
pub fn queries() -> Vec<SuiteQuery> {
    vec![
        SuiteQuery {
            id: "Q1",
            class: "selection",
            description: "all restaurants",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                "rule { extract { restaurant as $r } construct { answer { all $r } } }",
            ),
            wglog: Some(
                "rule { query { $r: restaurant } construct { $l: answer $l -member-> $r } } goal answer",
            ),
            xpath: Some("//restaurant"),
        },
        SuiteQuery {
            id: "Q2",
            class: "value predicate",
            description: "italian restaurants",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                r#"rule { extract { restaurant as $r { @category = "italian" } }
                          construct { answer { all $r } } }"#,
            ),
            wglog: Some(
                r#"rule { query { $r: restaurant where category = "italian" }
                          construct { $l: answer $l -member-> $r } } goal answer"#,
            ),
            xpath: Some("//restaurant[@category='italian']"),
        },
        SuiteQuery {
            id: "Q3",
            class: "conjunction",
            description: "restaurants in Milano offering a menu",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                r#"rule { extract { restaurant as $r {
                            menu as $m
                            address { city { text = "Milano" } } } }
                          construct { answer { all $r } } }"#,
            ),
            wglog: Some(
                r#"rule { query { $r: restaurant  $m: menu  $a: address where city = "Milano"
                                  $r -menu-> $m  $r -address-> $a }
                          construct { $l: answer $l -member-> $r } } goal answer"#,
            ),
            xpath: Some("//restaurant[menu][address/city='Milano']"),
        },
        SuiteQuery {
            id: "Q4",
            class: "disjunction",
            description: "menus cheaper than 15 or dearer than 50",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                r#"rule { extract { menu as $m { price { text < "15" or > "50" } } }
                          construct { answer { all $m } } }"#,
            ),
            wglog: None, // constraints are conjunctive
            xpath: Some("//menu[price < 15 or price > 50]"),
        },
        SuiteQuery {
            id: "Q5",
            class: "negation",
            description: "restaurants offering no menu",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                "rule { extract { restaurant as $r { not menu } } construct { answer { all $r } } }",
            ),
            wglog: Some(
                "rule { query { $r: restaurant  $m: menu  not $r -menu-> $m }
                        construct { $l: answer $l -member-> $r } } goal answer",
            ),
            xpath: Some("//restaurant[not(menu)]"),
        },
        SuiteQuery {
            id: "Q6",
            class: "value join",
            description: "products sold by Dutch vendors",
            dataset: Dataset::Greengrocer,
            xmlgl: Some(
                r#"rule { extract {
                            product as $p { vendor { text as $v1 } }
                            vendor as $w { country { text = "holland" }
                                           name { text as $v2 } }
                            join $v1 == $v2 }
                          construct { answer { all $p } } }"#,
            ),
            wglog: None, // no value joins
            xpath: Some("//product[vendor = //vendors/vendor[country='holland']/name]"),
        },
        SuiteQuery {
            id: "Q7",
            class: "deep matching",
            description: "all name elements at any depth",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                "rule { extract { cityguide { deep name as $n } } construct { answer { all $n } } }",
            ),
            wglog: None, // containment labels vary per step
            xpath: Some("//name"),
        },
        SuiteQuery {
            id: "Q8",
            class: "aggregation",
            description: "count of menus and their price range",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                r#"rule { extract { menu as $m { price { text as $p } } }
                          construct { answer {
                            menus { count($m) } lo { min($p) } hi { max($p) } } } }"#,
            ),
            wglog: None, // no aggregation
            xpath: Some("count(//menu)"), // partial: the count only
        },
        SuiteQuery {
            id: "Q9",
            class: "restructuring",
            description: "restaurant names grouped by category",
            dataset: Dataset::CityGuide,
            xmlgl: Some(
                r#"rule { extract { restaurant { @category as $c name as $n } }
                          construct { answer { all $n group by $c as category } } }"#,
            ),
            wglog: None, // grouping by value is beyond member collection
            xpath: None, // XPath selects, it does not construct
        },
        SuiteQuery {
            id: "Q10",
            class: "recursion",
            description: "transitive closure of menu-sharing (same dish offered)",
            dataset: Dataset::CityGuide,
            xmlgl: None, // no fixpoint
            wglog: Some(
                r#"
                rule {
                  query { $r: restaurant  $m: menu  $r -menu-> $m }
                  construct { $r -linked-> $m }
                }
                rule {
                  query { $a: restaurant  $m: menu  $b: restaurant
                          $a -linked-> $m  $b -menu-> $m }
                  construct { $a -peer-> $b }
                }
                rule {
                  query { $a: restaurant  $b: restaurant  $c: restaurant
                          $a -peer-> $b  $b -peer-> $c }
                  construct { $a -peer-> $c }
                }
                goal restaurant
                "#,
            ),
            xpath: None,
        },
    ]
}

/// XPath evaluation of a suite query returns either a node count or a
/// value; normalise both to a count-like number for cross-engine checks.
pub fn xpath_result_size(doc: &Document, expr: &str) -> usize {
    let parsed = gql_xpath::parse(expr).expect("suite xpath parses");
    match gql_xpath::evaluate(doc, &parsed).expect("suite xpath runs") {
        gql_xpath::XValue::Nodes(ns) => ns.len(),
        gql_xpath::XValue::Num(n) => n as usize,
        _ => 0,
    }
}

/// Figure queries F1–F5 (see DESIGN.md). Returned as (id, caption, diagram).
pub fn figures() -> Vec<(&'static str, &'static str, gql_layout::Diagram)> {
    let f1 = gql_wglog::dsl::parse(
        "rule { query { $r: restaurant  $m: menu  $r -menu-> $m }
                construct { $l: rest-list  $l -member-> $r } } goal rest-list",
    )
    .expect("F1 parses");
    let f2 = gql_xmlgl::dsl::parse(
        r#"rule { extract { book as $b { @year as $y >= "2000" } }
                  construct { result { all $b } } }"#,
    )
    .expect("F2 parses");
    let f4 = gql_xmlgl::dsl::parse(
        r#"rule { extract { person as $p { firstname { text as $f }
                                           lastname { text as $l } fulladdr } }
                  construct { result { entry { first { copy $f } last { copy $l } } } } }"#,
    )
    .expect("F4 parses");
    let f5 = gql_xmlgl::dsl::parse(
        r#"rule { extract {
                    product as $p { vendor { text as $v1 } }
                    vendor as $w { name { text as $v2 } }
                    join $v1 == $v2 }
                  construct { answer { all $p } } }"#,
    )
    .expect("F5 parses");
    vec![
        (
            "F1",
            "WG-Log: restaurants offering menus, collected into one rest-list",
            gql_wglog::diagram::rule_diagram(&f1.rules[0]),
        ),
        (
            "F2",
            "XML-GL: all BOOK elements since 2000 (deep construct)",
            gql_xmlgl::diagram::rule_diagram(&f2.rules[0]),
        ),
        (
            "F3",
            "XML-GL schema of the BOOK DTD (multiplicity edges)",
            schema_figure(),
        ),
        (
            "F4",
            "XML-GL: PERSONs with FULLADDR, name parts projected",
            gql_xmlgl::diagram::rule_diagram(&f4.rules[0]),
        ),
        (
            "F5",
            "XML-GL: equi-join via a shared node",
            gql_xmlgl::diagram::rule_diagram(&f5.rules[0]),
        ),
    ]
}

/// The F3 schema figure: the BOOK DTD as a diagram of boxes and
/// multiplicity-labelled edges.
fn schema_figure() -> gql_layout::Diagram {
    use gql_layout::{Diagram, EdgeSpec, EdgeStyle, NodeSpec, Shape};
    let dtd = gql_ssdm::dtd::Dtd::parse(
        "<!ELEMENT BOOK (title?,price,AUTHOR*)>\
         <!ATTLIST BOOK isbn CDATA #REQUIRED>\
         <!ELEMENT title (#PCDATA)>\
         <!ELEMENT price (#PCDATA)>\
         <!ELEMENT AUTHOR (first-name,last-name)>\
         <!ELEMENT first-name (#PCDATA)>\
         <!ELEMENT last-name (#PCDATA)>",
    )
    .expect("BOOK DTD parses");
    let schema = gql_xmlgl::schema::GlSchema::from_dtd(&dtd);
    let mut d = Diagram::new();
    let mut nodes = std::collections::HashMap::new();
    for name in schema.element_names() {
        let decl = schema.element(name).expect("declared");
        let mut spec = NodeSpec::new(name, Shape::Box);
        let attrs: Vec<String> = decl
            .attrs
            .iter()
            .map(|(a, req)| format!("●{a}{}", if *req { "!" } else { "" }))
            .collect();
        if !attrs.is_empty() {
            spec = spec.with_sublabel(attrs.join(" "));
        } else if decl.text {
            spec = spec.with_sublabel("(text)");
        }
        nodes.insert(name.to_string(), d.add_node(spec));
    }
    for name in schema.element_names() {
        let decl = schema.element(name).expect("declared");
        for c in &decl.children {
            if let (Some(&from), Some(&to)) = (nodes.get(name), nodes.get(&c.child)) {
                d.add_edge(
                    from,
                    to,
                    EdgeSpec::labelled(c.mult.symbol(), EdgeStyle::Solid),
                );
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::Engine;

    #[test]
    fn every_formulation_parses() {
        for q in queries() {
            let _ = q.xmlgl_program();
            let _ = q.wglog_program();
            if let Some(x) = q.xpath {
                gql_xpath::parse(x).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            }
        }
    }

    #[test]
    fn suite_covers_every_language_at_least_six_times() {
        let qs = queries();
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().filter(|q| q.xmlgl.is_some()).count() >= 8);
        assert!(qs.iter().filter(|q| q.wglog.is_some()).count() >= 5);
        assert!(qs.iter().filter(|q| q.xpath.is_some()).count() >= 7);
    }

    #[test]
    fn engines_agree_where_comparable() {
        // For the pure selection queries, every formulation must select the
        // same number of principal records.
        let engine = Engine::new();
        for q in queries() {
            if !matches!(q.id, "Q1" | "Q2" | "Q3" | "Q5") {
                continue;
            }
            let doc = q.dataset.build(30);
            let mut counts = Vec::new();
            for (label, query) in q.engine_queries() {
                let outcome = engine.run(&query, &doc).expect("suite query runs");
                let n = match &query {
                    gql_core::QueryKind::XPath(_) => outcome.result_count,
                    gql_core::QueryKind::XmlGl(_) => {
                        let root = outcome.output.root_element().expect("root");
                        outcome.output.child_elements(root).count()
                    }
                    gql_core::QueryKind::WgLog(_) => {
                        let root = outcome.output.root_element().expect("root");
                        let list = outcome.output.child_elements(root).next();
                        list.map(|l| outcome.output.child_elements(l).count())
                            .unwrap_or(0)
                    }
                };
                counts.push((label, n));
            }
            assert!(
                counts.windows(2).all(|w| w[0].1 == w[1].1),
                "{} disagreement: {counts:?}",
                q.id
            );
        }
    }

    #[test]
    fn q10_recursion_runs() {
        let q = queries()
            .into_iter()
            .find(|q| q.id == "Q10")
            .expect("Q10 exists");
        let doc = q.dataset.build(20);
        let program = q.wglog_program().expect("Q10 has a WG-Log formulation");
        let db = gql_wglog::instance::Instance::from_document(&doc);
        let out = gql_wglog::eval::run(&program, &db).expect("Q10 runs");
        let peers = out.edges().iter().filter(|e| e.label == "peer").count();
        assert!(peers > 0, "closure derived nothing");
    }

    #[test]
    fn figures_render() {
        for (id, _, diagram) in figures() {
            let layout = gql_layout::layout(&diagram, &gql_layout::LayoutOptions::default());
            let svg = gql_layout::render::to_svg(&diagram, &layout);
            assert!(svg.starts_with("<svg"), "{id}");
            assert!(diagram.node_count() > 0, "{id}");
        }
    }

    #[test]
    fn datasets_scale() {
        for ds in [
            Dataset::CityGuide,
            Dataset::Greengrocer,
            Dataset::Bibliography,
        ] {
            let small = ds.build(10).live_node_count();
            let large = ds.build(100).live_node_count();
            assert!(large > small * 5, "{}: {small} → {large}", ds.name());
        }
    }
}
