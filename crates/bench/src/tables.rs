//! Plain-text table rendering for the harness output.

/// A simple left-padded text table with a header row.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"─".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Format a `Duration` compactly (µs below 2ms, ms below 2s, else s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 2_000 {
        format!("{us}µs")
    } else if us < 2_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Median wall-clock over `n` runs of `f`.
pub fn median_time<F: FnMut()>(n: usize, mut f: F) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..n.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["query", "engine", "time"]);
        t.row(vec!["Q1".into(), "XML-GL".into(), "1.2ms".into()]);
        t.row(vec!["Q10-long".into(), "WG".into(), "3s".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[1].starts_with('─'));
        // Columns align: "engine" column starts at the same offset.
        let off0 = lines[0].find("engine").unwrap();
        let off2 = lines[2].find("XML-GL").unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(900)), "900µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // smoke: no panic
        let _ = d;
    }
}
