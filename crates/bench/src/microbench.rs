//! A dependency-free stand-in for the slice of the Criterion API the
//! benches use, so `cargo bench` works in this offline workspace.
//!
//! Timing model: each `b.iter(f)` call runs one untimed warm-up, then
//! `sample_size` timed samples; the reported figure is the mean wall-clock
//! time per iteration (with an elements/second rate when the group set a
//! [`Throughput`]). No outlier rejection or significance testing — for
//! statistically rigorous numbers, wire the same closures into a real
//! harness; for "did this get 10× slower" regression checks this is
//! enough.
//!
//! `GQL_BENCH_SAMPLES` overrides every group's sample size (e.g. `=1` for
//! a smoke run).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn new() -> Criterion {
        Criterion::default()
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Element/byte counts that turn mean times into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of related measurements sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.mean);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean);
    }

    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        std::env::var("GQL_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1)
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("  {}/{id}: {mean:.2?}/iter{rate}", self.name);
    }
}

/// Passed to the measured closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Collect bench functions into one runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_mean() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 4); // warm-up + samples
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("engine", 400).to_string(), "engine/400");
    }
}
