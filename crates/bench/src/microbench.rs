//! A dependency-free stand-in for the slice of the Criterion API the
//! benches use, so `cargo bench` works in this offline workspace.
//!
//! Timing model: each `b.iter(f)` call runs one untimed warm-up, then
//! `sample_size` timed samples; the reported figure is the mean wall-clock
//! time per iteration (with an elements/second rate when the group set a
//! [`Throughput`]). No outlier rejection or significance testing — for
//! statistically rigorous numbers, wire the same closures into a real
//! harness; for "did this get 10× slower" regression checks this is
//! enough.
//!
//! `GQL_BENCH_SAMPLES` overrides every group's sample size (e.g. `=1` for
//! a smoke run).
//!
//! Every reported measurement is also accumulated in-process and written to
//! a machine-readable results file when the [`Criterion`] driver drops:
//! `BENCH_results.json` at the repository root by default,
//! `GQL_BENCH_RESULTS` to override. The file is a JSON array with one entry
//! object per line; re-running a bench binary replaces its own entries and
//! leaves entries from other binaries in place, so the file converges to
//! the union of the latest run of everything.

use std::fmt::Display;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One reported measurement, as serialized into the results file.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    mean_ns: u128,
    samples: usize,
    rate: Option<(f64, &'static str)>,
}

impl Entry {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"mean_ns\":{},\"samples\":{}",
            json_escape(&self.name),
            self.mean_ns,
            self.samples
        );
        if let Some((rate, unit)) = self.rate {
            // Shortest round-trippable form — a fixed precision would erase
            // small metrics (an 0.03% overhead bound rounds to 0.0 at `:.1`).
            s.push_str(&format!(",\"rate\":{rate},\"rate_unit\":\"{unit}\""));
        }
        s.push('}');
        s
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Measurements reported since the last flush, process-wide (bench binaries
/// may build several [`Criterion`]s via `criterion_group!`).
fn pending() -> &'static Mutex<Vec<Entry>> {
    static PENDING: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    PENDING.get_or_init(|| Mutex::new(Vec::new()))
}

fn results_path() -> PathBuf {
    std::env::var_os("GQL_BENCH_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_results.json"
            ))
        })
}

/// The "name" field of a serialized entry line (the writer controls the
/// format, so a plain string scan suffices — no JSON parser needed).
fn entry_name(line: &str) -> Option<&str> {
    let rest = line.split_once("\"name\":\"")?.1;
    rest.split_once('"').map(|(name, _)| name)
}

/// Merge `new` entries into the results file: keep existing entries whose
/// names this run did not re-measure, replace the rest.
fn merge_into_file(path: &Path, new: &[Entry]) -> std::io::Result<()> {
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() || line == "[" || line == "]" {
                continue;
            }
            lines.push(line.to_string());
        }
    }
    let replaced: std::collections::HashSet<&str> = new.iter().map(|e| e.name.as_str()).collect();
    lines.retain(|l| entry_name(l).is_none_or(|n| !replaced.contains(n)));
    lines.extend(new.iter().map(Entry::to_json));
    let mut out = String::from("[\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str(l);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Top-level driver handed to every bench function. Flushes accumulated
/// measurements to the results file on drop.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn new() -> Criterion {
        Criterion::default()
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let entries: Vec<Entry> = std::mem::take(&mut *pending().lock().expect("not poisoned"));
        if entries.is_empty() {
            return;
        }
        let path = results_path();
        if let Err(e) = merge_into_file(&path, &entries) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Element/byte counts that turn mean times into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of related measurements sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one measurement; returns the mean time per iteration so callers
    /// can derive figures (speedup ratios) from pairs of measurements.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> Duration {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.mean);
        bencher.mean
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> Duration {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean);
        bencher.mean
    }

    /// Record a derived figure (a speedup ratio, a count) into the results
    /// file alongside the timed entries.
    pub fn record_metric(&self, id: impl Display, value: f64, unit: &'static str) {
        println!("  {}/{id}: {value:.2} {unit}", self.name);
        pending().lock().expect("not poisoned").push(Entry {
            name: format!("{}/{id}", self.name),
            mean_ns: 0,
            samples: 0,
            rate: Some((value, unit)),
        });
    }

    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        std::env::var("GQL_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1)
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                Some((n as f64 / mean.as_secs_f64(), "elem/s"))
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                Some((n as f64 / mean.as_secs_f64(), "B/s"))
            }
            _ => None,
        };
        let shown = rate.map_or(String::new(), |(r, u)| format!("  ({r:.0} {u})"));
        println!("  {}/{id}: {mean:.2?}/iter{shown}", self.name);
        pending().lock().expect("not poisoned").push(Entry {
            name: format!("{}/{id}", self.name),
            mean_ns: mean.as_nanos(),
            samples: self.effective_samples(),
            rate,
        });
    }
}

/// Passed to the measured closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Collect bench functions into one runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_mean_and_writes_results() {
        // Redirect the results file away from the repository root for the
        // duration of the test (the driver writes on drop).
        let path = std::env::temp_dir().join(format!("gql_bench_test_{}.json", std::process::id()));
        std::env::set_var("GQL_BENCH_RESULTS", &path);
        let mut ran = 0usize;
        {
            let mut c = Criterion::new();
            let mut group = c.benchmark_group("test");
            group.sample_size(3);
            let mean = group.bench_function("noop", |b| {
                b.iter(|| {
                    ran += 1;
                })
            });
            group.finish();
            assert!(mean >= Duration::ZERO);
        }
        assert!(ran >= 4); // warm-up + samples
        let written = std::fs::read_to_string(&path).expect("results written on drop");
        assert!(written.starts_with("[\n"));
        assert!(written.contains("\"name\":\"test/noop\""));
        std::fs::remove_file(&path).ok();
        std::env::remove_var("GQL_BENCH_RESULTS");
    }

    #[test]
    fn merge_replaces_re_measured_entries_and_keeps_the_rest() {
        let path =
            std::env::temp_dir().join(format!("gql_bench_merge_{}.json", std::process::id()));
        let old = [
            Entry {
                name: "a/x".into(),
                mean_ns: 1,
                samples: 1,
                rate: None,
            },
            Entry {
                name: "b/y".into(),
                mean_ns: 2,
                samples: 1,
                rate: Some((3.5, "elem/s")),
            },
        ];
        merge_into_file(&path, &old).unwrap();
        let new = [Entry {
            name: "a/x".into(),
            mean_ns: 9,
            samples: 2,
            rate: None,
        }];
        merge_into_file(&path, &new).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"name\":\"a/x\",\"mean_ns\":9"));
        assert!(!written.contains("\"mean_ns\":1,"));
        assert!(written.contains("\"name\":\"b/y\""));
        assert!(written.contains("\"rate\":3.5,\"rate_unit\":\"elem/s\""));
        // The file stays a well-formed array: one entry object per line.
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.first(), Some(&"["));
        assert_eq!(lines.last(), Some(&"]"));
        assert_eq!(lines.len(), 4); // brackets + two entries
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("engine", 400).to_string(), "engine/400");
    }
}
