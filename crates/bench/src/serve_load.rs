//! The corpus-replay load driver behind `benches/serve_load.rs` and the
//! `gql-serve-load` binary.
//!
//! A workload is the regression corpus (budget-bearing cases excluded)
//! plus a deterministic generated mix — per-dataset queries over the four
//! paper datasets and seeded cross-engine [`Intent`]s over generated
//! documents — replayed through an in-process [`ServeHandle`] at a
//! configurable worker count. The driver records every request's wall
//! latency and reduces them to throughput plus p50/p95/p99, and reads the
//! service's trace-derived warm/cold counters back as plan/index cache hit
//! rates. In-process on purpose: the socket adds nondeterministic batching
//! the latency distribution shouldn't inherit (the TCP path has its own
//! smoke coverage in CI).
//!
//! [`Intent`]: gql_testkit::generators::Intent

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use gql_serve::{Catalog, Envelope, Request, Service, TenantRegistry};
use gql_ssdm::generator;
use gql_testkit::generators;
use gql_testkit::harness::case_rng;

/// One request the load loop replays.
#[derive(Debug, Clone)]
pub struct WorkItem {
    pub dataset: String,
    pub kind: String,
    pub query: String,
}

/// The tenant every load request runs as.
const TENANT: &str = "load";

/// Seeded [`Intent`]s and documents mixed into the corpus replay.
const GENERATED_DOCS: u64 = 6;

/// Build the catalog + work list: every replayable corpus case, canned
/// queries over the four paper datasets, and seeded generated pairs.
pub fn build_workload(corpus_dir: &Path) -> Result<(Catalog, Vec<WorkItem>), String> {
    let mut catalog = Catalog::new();
    let mut items = Vec::new();

    // The regression corpus, replayed against the service verbatim.
    for (path, case) in gql_testkit::corpus::load_dir(corpus_dir)? {
        if case.budget.is_some() {
            continue; // pathological by construction
        }
        let Ok(kind) = case.query_kind() else {
            continue;
        };
        let name = format!(
            "corpus-{}",
            path.file_stem()
                .map(|s| s.to_string_lossy())
                .unwrap_or_default()
        );
        let Some(doc) = gql_testkit::oracle::normalize(&case.doc) else {
            continue;
        };
        catalog.register(&name, doc);
        let (kind, query) = match kind {
            gql_core::QueryKind::XmlGl(_) => ("xmlgl", case.query.clone()),
            gql_core::QueryKind::WgLog(_) => ("wglog", case.query.clone()),
            gql_core::QueryKind::XPath(x) => ("xpath", x),
        };
        items.push(WorkItem {
            dataset: name,
            kind: kind.into(),
            query,
        });
    }

    // The paper datasets under representative queries in all three
    // languages — the steady-state "many clients, few datasets" shape the
    // catalog is built for.
    catalog.register("bibliography", generator::bibliography(Default::default()));
    catalog.register("cityguide", generator::cityguide(Default::default()));
    catalog.register("greengrocer", generator::greengrocer(Default::default()));
    catalog.register("webgraph", generator::webgraph(Default::default()));
    let canned: &[(&str, &str, &str)] = &[
        ("bibliography", "xpath", "//book/title"),
        ("bibliography", "xpath", "//book[year]"),
        (
            "bibliography",
            "wglog",
            "rule { query { $b: book  $a: author  $b -author-> $a } \
             construct { $l: author-list  $l -member-> $a } } goal author-list",
        ),
        (
            "cityguide",
            "xmlgl",
            "rule { query { $r: restaurant  $n: name  $r -> $n } \
             construct { $out: result  $out -> $n } }",
        ),
        ("cityguide", "xpath", "//restaurant/name"),
        ("greengrocer", "xpath", "//price"),
        ("webgraph", "xpath", "//page"),
    ];
    for (dataset, kind, query) in canned {
        items.push(WorkItem {
            dataset: (*dataset).into(),
            kind: (*kind).into(),
            query: (*query).into(),
        });
    }

    // Seeded generated mix: a fresh document per seed, queried through a
    // cross-engine Intent in both of its lowerings plus a raw generated
    // XPath. Deterministic by seed, so every run replays the same load.
    for seed in 0..GENERATED_DOCS {
        let mut rng = case_rng(0x10ad ^ seed);
        let name = format!("gen-{seed}");
        catalog.register(&name, generators::document(&mut rng));
        let intent = generators::Intent::gen(&mut rng);
        items.push(WorkItem {
            dataset: name.clone(),
            kind: "xpath".into(),
            query: intent.xpath(),
        });
        items.push(WorkItem {
            dataset: name.clone(),
            kind: "xmlgl".into(),
            query: intent.xmlgl(),
        });
        items.push(WorkItem {
            dataset: name,
            kind: "xpath".into(),
            query: generators::gen_xpath(&mut rng),
        });
    }
    Ok((catalog, items))
}

/// One load run's reduced measurements.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub workers: usize,
    pub requests: u64,
    pub ok: u64,
    pub errors: u64,
    pub wall: Duration,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Latency percentiles over every request, in nanoseconds.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Plan-cache and index-cache hit rates observed through the service's
    /// trace-derived counters (warm / (warm + cold)).
    pub plan_hit_rate: f64,
    pub index_hit_rate: f64,
}

/// Nearest-rank percentile: the smallest value with at least `p` of the
/// distribution at or below it.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Replay `items` round-robin for `total_requests` across `workers`
/// concurrent submitter threads against a fresh service. The submitter
/// count models client concurrency; the service's own pool is sized to the
/// machine (as a deployment would be), with the tenant envelope wide
/// enough that admission never rejects — the measurement is execution
/// plus queueing latency, which is what a loaded service actually serves.
///
/// The timed window measures warm steady state: every item is replayed
/// once untimed first (planting plan-cache entries and paging the resident
/// indexes), and all submitter threads gate on a barrier so thread spawn
/// cost never leaks into the wall clock.
pub fn run_load(
    catalog: Catalog,
    items: &[WorkItem],
    workers: usize,
    total_requests: u64,
) -> LoadReport {
    assert!(!items.is_empty(), "empty workload");
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let pool = workers.min(cores * 4).max(1);
    let mut tenants = TenantRegistry::new();
    tenants.register(TENANT, Envelope::slots(workers as u64 * 2));
    let service = Service::builder()
        .workers(pool)
        .catalog(catalog)
        .tenants(tenants)
        .build();
    let handle = service.handle();

    // Untimed warm-up: one pass over the unique work list.
    for item in items {
        let _ = handle.submit(&Request::new(
            TENANT,
            &item.dataset,
            &item.kind,
            &item.query,
        ));
    }
    let warmup_metrics = handle.metrics();

    let barrier = std::sync::Barrier::new(workers + 1);
    let next = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let lat_slot = AtomicUsize::new(0);
    let latencies: Vec<AtomicU64> = (0..total_requests as usize)
        .map(|_| AtomicU64::new(0))
        .collect();
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let submitters: Vec<_> = (0..workers)
            .map(|_| {
                let handle = handle.clone();
                let (barrier, next, ok, errors, lat_slot, latencies) =
                    (&barrier, &next, &ok, &errors, &lat_slot, &latencies);
                s.spawn(move || {
                    barrier.wait();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total_requests {
                            return;
                        }
                        let item = &items[i as usize % items.len()];
                        let req = Request::new(TENANT, &item.dataset, &item.kind, &item.query);
                        let t0 = Instant::now();
                        let resp = handle.submit(&req);
                        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        latencies[lat_slot.fetch_add(1, Ordering::Relaxed)]
                            .store(ns, Ordering::Relaxed);
                        if resp.is_ok() {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for t in submitters {
            t.join().expect("submitter thread");
        }
        wall = start.elapsed();
    });
    let metrics = handle.metrics();
    service.shutdown();

    let mut sorted: Vec<u64> = latencies
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    sorted.sort_unstable();
    // Hit rates over the timed window only (warm-up traffic subtracted).
    let rate = |warm: u64, cold: u64| {
        if warm + cold == 0 {
            0.0
        } else {
            warm as f64 / (warm + cold) as f64
        }
    };
    LoadReport {
        workers,
        requests: total_requests,
        ok: ok.into_inner(),
        errors: errors.into_inner(),
        wall,
        throughput_rps: total_requests as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: percentile(&sorted, 0.50),
        p95_ns: percentile(&sorted, 0.95),
        p99_ns: percentile(&sorted, 0.99),
        plan_hit_rate: rate(
            metrics.plan_warm - warmup_metrics.plan_warm,
            metrics.plan_cold - warmup_metrics.plan_cold,
        ),
        index_hit_rate: rate(
            metrics.index_warm - warmup_metrics.index_warm,
            metrics.index_cold - warmup_metrics.index_cold,
        ),
    }
}

/// The workspace corpus directory (the load driver and bench both run from
/// inside the workspace).
pub fn default_corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_replays_mostly_ok() {
        let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
        assert!(items.len() >= 20, "got {} items", items.len());
        let report = run_load(catalog, &items, 4, items.len() as u64 * 2);
        assert_eq!(report.ok + report.errors, report.requests);
        // The corpus and canned queries dominate; generated intents may
        // reject, but the bulk of the mix must answer ok.
        assert!(
            report.ok * 2 > report.requests,
            "ok {} of {}",
            report.ok,
            report.requests
        );
        assert!(report.p50_ns <= report.p95_ns && report.p95_ns <= report.p99_ns);
        assert!(report.throughput_rps > 0.0);
        // Every item replays at least twice, so plans must be warming.
        assert!(report.plan_hit_rate > 0.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}
