//! The corpus-replay load driver behind `benches/serve_load.rs` and the
//! `gql-serve-load` binary.
//!
//! A workload is the regression corpus (budget-bearing cases excluded)
//! plus a deterministic generated mix — per-dataset queries over the four
//! paper datasets and seeded cross-engine [`Intent`]s over generated
//! documents — replayed through an in-process [`ServeHandle`] at a
//! configurable worker count. The driver records every request's wall
//! latency into a shared lock-free [`Histo`] (the same log-linear
//! histogram the service's telemetry plane uses, so the reported
//! percentiles carry the same ≤[`Histo::MAX_RELATIVE_ERROR`] bound) and
//! reads the service's trace-derived warm/cold counters back as
//! plan/index cache hit rates. In-process on purpose: the socket adds
//! nondeterministic batching the latency distribution shouldn't inherit
//! (the TCP path has its own smoke coverage in CI).
//!
//! [`Intent`]: gql_testkit::generators::Intent

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gql_metrics::Histo;
use gql_serve::{Catalog, Envelope, Request, Service, TelemetryConfig, TenantRegistry};
use gql_ssdm::generator;
use gql_testkit::generators;
use gql_testkit::harness::case_rng;

/// One request the load loop replays.
#[derive(Debug, Clone)]
pub struct WorkItem {
    pub dataset: String,
    pub kind: String,
    pub query: String,
}

/// The tenant every load request runs as.
const TENANT: &str = "load";

/// Seeded [`Intent`]s and documents mixed into the corpus replay.
const GENERATED_DOCS: u64 = 6;

/// Build the catalog + work list: every replayable corpus case, canned
/// queries over the four paper datasets, and seeded generated pairs.
pub fn build_workload(corpus_dir: &Path) -> Result<(Catalog, Vec<WorkItem>), String> {
    let mut catalog = Catalog::new();
    let mut items = Vec::new();

    // The regression corpus, replayed against the service verbatim.
    for (path, case) in gql_testkit::corpus::load_dir(corpus_dir)? {
        if case.budget.is_some() {
            continue; // pathological by construction
        }
        let Ok(kind) = case.query_kind() else {
            continue;
        };
        let name = format!(
            "corpus-{}",
            path.file_stem()
                .map(|s| s.to_string_lossy())
                .unwrap_or_default()
        );
        let Some(doc) = gql_testkit::oracle::normalize(&case.doc) else {
            continue;
        };
        catalog.register(&name, doc);
        let (kind, query) = match kind {
            gql_core::QueryKind::XmlGl(_) => ("xmlgl", case.query.clone()),
            gql_core::QueryKind::WgLog(_) => ("wglog", case.query.clone()),
            gql_core::QueryKind::XPath(x) => ("xpath", x),
        };
        items.push(WorkItem {
            dataset: name,
            kind: kind.into(),
            query,
        });
    }

    // The paper datasets under representative queries in all three
    // languages — the steady-state "many clients, few datasets" shape the
    // catalog is built for.
    catalog.register("bibliography", generator::bibliography(Default::default()));
    catalog.register("cityguide", generator::cityguide(Default::default()));
    catalog.register("greengrocer", generator::greengrocer(Default::default()));
    catalog.register("webgraph", generator::webgraph(Default::default()));
    let canned: &[(&str, &str, &str)] = &[
        ("bibliography", "xpath", "//book/title"),
        ("bibliography", "xpath", "//book[year]"),
        (
            "bibliography",
            "wglog",
            "rule { query { $b: book  $a: author  $b -author-> $a } \
             construct { $l: author-list  $l -member-> $a } } goal author-list",
        ),
        (
            "cityguide",
            "xmlgl",
            "rule { query { $r: restaurant  $n: name  $r -> $n } \
             construct { $out: result  $out -> $n } }",
        ),
        ("cityguide", "xpath", "//restaurant/name"),
        ("greengrocer", "xpath", "//price"),
        ("webgraph", "xpath", "//page"),
    ];
    for (dataset, kind, query) in canned {
        items.push(WorkItem {
            dataset: (*dataset).into(),
            kind: (*kind).into(),
            query: (*query).into(),
        });
    }

    // Seeded generated mix: a fresh document per seed, queried through a
    // cross-engine Intent in both of its lowerings plus a raw generated
    // XPath. Deterministic by seed, so every run replays the same load.
    for seed in 0..GENERATED_DOCS {
        let mut rng = case_rng(0x10ad ^ seed);
        let name = format!("gen-{seed}");
        catalog.register(&name, generators::document(&mut rng));
        let intent = generators::Intent::gen(&mut rng);
        items.push(WorkItem {
            dataset: name.clone(),
            kind: "xpath".into(),
            query: intent.xpath(),
        });
        items.push(WorkItem {
            dataset: name.clone(),
            kind: "xmlgl".into(),
            query: intent.xmlgl(),
        });
        items.push(WorkItem {
            dataset: name,
            kind: "xpath".into(),
            query: generators::gen_xpath(&mut rng),
        });
    }
    Ok((catalog, items))
}

/// One load run's reduced measurements.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub workers: usize,
    pub requests: u64,
    pub ok: u64,
    pub errors: u64,
    pub wall: Duration,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Latency percentiles over every request, in nanoseconds —
    /// nearest-rank reduced from the shared [`Histo`], so each is the
    /// true order statistic within [`Histo::MAX_RELATIVE_ERROR`].
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Plan-cache and index-cache hit rates observed through the service's
    /// trace-derived counters (warm / (warm + cold)).
    pub plan_hit_rate: f64,
    pub index_hit_rate: f64,
    /// Telemetry probe firings inside the service over the timed window
    /// (0 when the plane is disabled) — the multiplier the overhead bench
    /// uses to derive its disabled-cost bound.
    pub telemetry_probes: u64,
    /// Hot catalog reloads completed during the timed window (0 unless the
    /// run came from [`run_load_reloading`]).
    pub reloads: u64,
}

/// Replay `items` round-robin for `total_requests` across `workers`
/// concurrent submitter threads against a fresh service. The submitter
/// count models client concurrency; the service's own pool is sized to the
/// machine (as a deployment would be), with the tenant envelope wide
/// enough that admission never rejects — the measurement is execution
/// plus queueing latency, which is what a loaded service actually serves.
///
/// The timed window measures warm steady state: every item is replayed
/// once untimed first (planting plan-cache entries and paging the resident
/// indexes), and all submitter threads gate on a barrier so thread spawn
/// cost never leaks into the wall clock.
pub fn run_load(
    catalog: Catalog,
    items: &[WorkItem],
    workers: usize,
    total_requests: u64,
) -> LoadReport {
    run_load_with(
        catalog,
        items,
        workers,
        total_requests,
        TelemetryConfig::default(),
    )
}

/// [`run_load`] with an explicit telemetry configuration — the overhead
/// bench runs the identical workload with the plane disabled and enabled
/// to bound what telemetry costs the hot path.
pub fn run_load_with(
    catalog: Catalog,
    items: &[WorkItem],
    workers: usize,
    total_requests: u64,
    telemetry: TelemetryConfig,
) -> LoadReport {
    run_load_inner(catalog, items, workers, total_requests, telemetry, None)
}

/// [`run_load`] with a reloader thread hot-swapping `reload_dataset`
/// throughout the timed window — the epoch-swap latency scenario. The
/// dataset must be one of the four paper datasets (they regenerate
/// deterministically, so every swapped epoch serves identical content and
/// the measured cost is purely the swap, not a workload change). The
/// returned p99 therefore bounds what a client sees *during* reloads; CI
/// holds it within 2x the steady-state p99.
pub fn run_load_reloading(
    catalog: Catalog,
    items: &[WorkItem],
    workers: usize,
    total_requests: u64,
    reload_dataset: &str,
) -> LoadReport {
    assert!(
        regenerate(reload_dataset).is_some(),
        "reload scenario only regenerates the paper datasets, not {reload_dataset:?}"
    );
    run_load_inner(
        catalog,
        items,
        workers,
        total_requests,
        TelemetryConfig::default(),
        Some(reload_dataset),
    )
}

/// Rebuild one paper dataset's document from its deterministic generator.
fn regenerate(name: &str) -> Option<gql_ssdm::Document> {
    Some(match name {
        "bibliography" => generator::bibliography(Default::default()),
        "cityguide" => generator::cityguide(Default::default()),
        "greengrocer" => generator::greengrocer(Default::default()),
        "webgraph" => generator::webgraph(Default::default()),
        _ => return None,
    })
}

fn run_load_inner(
    catalog: Catalog,
    items: &[WorkItem],
    workers: usize,
    total_requests: u64,
    telemetry: TelemetryConfig,
    reload_dataset: Option<&str>,
) -> LoadReport {
    assert!(!items.is_empty(), "empty workload");
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let pool = workers.min(cores * 4).max(1);
    let mut tenants = TenantRegistry::new();
    tenants.register(TENANT, Envelope::slots(workers as u64 * 2));
    let service = Service::builder()
        .workers(pool)
        .catalog(catalog)
        .tenants(tenants)
        .telemetry(telemetry)
        .build();
    let handle = service.handle();

    // Untimed warm-up: one pass over the unique work list.
    for item in items {
        let _ = handle.submit(&Request::new(
            TENANT,
            &item.dataset,
            &item.kind,
            &item.query,
        ));
    }
    let warmup_metrics = handle.metrics();
    let warmup_probes = handle.telemetry().probes();

    let barrier = std::sync::Barrier::new(workers + 1);
    let next = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies = Histo::new();
    let mut wall = Duration::ZERO;
    let storm_done = std::sync::atomic::AtomicBool::new(false);
    let reloads = AtomicU64::new(0);
    std::thread::scope(|s| {
        // The epoch-swap scenario: one reloader thread hot-swaps the
        // chosen dataset for the whole timed window while submitters
        // storm it, so the measured percentiles include requests that
        // straddle swaps and drain old epochs.
        if let Some(name) = reload_dataset {
            let handle = handle.clone();
            let (storm_done, reloads) = (&storm_done, &reloads);
            s.spawn(move || {
                while !storm_done.load(Ordering::Acquire) {
                    let doc = regenerate(name).expect("regenerable dataset");
                    handle
                        .catalog()
                        .reload(name, doc)
                        .expect("reload of a registered dataset");
                    reloads.fetch_add(1, Ordering::Relaxed);
                    handle.catalog().reap_retired();
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        let submitters: Vec<_> = (0..workers)
            .map(|_| {
                let handle = handle.clone();
                let (barrier, next, ok, errors, latencies) =
                    (&barrier, &next, &ok, &errors, &latencies);
                s.spawn(move || {
                    barrier.wait();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total_requests {
                            return;
                        }
                        let item = &items[i as usize % items.len()];
                        let req = Request::new(TENANT, &item.dataset, &item.kind, &item.query);
                        let t0 = Instant::now();
                        let resp = handle.submit(&req);
                        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        latencies.record(ns);
                        if resp.is_ok() {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for t in submitters {
            t.join().expect("submitter thread");
        }
        wall = start.elapsed();
        storm_done.store(true, Ordering::Release);
    });
    // Drain: with the storm over every pinned epoch must release, so the
    // retired list reaps to empty (bounded wait — a leak would hang CI).
    if reload_dataset.is_some() {
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.catalog().draining() > 0 {
            handle.catalog().reap_retired();
            assert!(Instant::now() < deadline, "retired epochs failed to drain");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let metrics = handle.metrics();
    let probes = handle.telemetry().probes();
    service.shutdown();

    let latency = latencies.snapshot();
    // Hit rates over the timed window only (warm-up traffic subtracted).
    let rate = |warm: u64, cold: u64| {
        if warm + cold == 0 {
            0.0
        } else {
            warm as f64 / (warm + cold) as f64
        }
    };
    LoadReport {
        workers,
        requests: total_requests,
        ok: ok.into_inner(),
        errors: errors.into_inner(),
        wall,
        throughput_rps: total_requests as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: latency.p50(),
        p95_ns: latency.p95(),
        p99_ns: latency.p99(),
        plan_hit_rate: rate(
            metrics.plan_warm - warmup_metrics.plan_warm,
            metrics.plan_cold - warmup_metrics.plan_cold,
        ),
        index_hit_rate: rate(
            metrics.index_warm - warmup_metrics.index_warm,
            metrics.index_cold - warmup_metrics.index_cold,
        ),
        telemetry_probes: probes - warmup_probes,
        reloads: reloads.into_inner(),
    }
}

/// The workspace corpus directory (the load driver and bench both run from
/// inside the workspace).
pub fn default_corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_replays_mostly_ok() {
        let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
        assert!(items.len() >= 20, "got {} items", items.len());
        let report = run_load(catalog, &items, 4, items.len() as u64 * 2);
        assert_eq!(report.ok + report.errors, report.requests);
        // The corpus and canned queries dominate; generated intents may
        // reject, but the bulk of the mix must answer ok.
        assert!(
            report.ok * 2 > report.requests,
            "ok {} of {}",
            report.ok,
            report.requests
        );
        assert!(report.p50_ns <= report.p95_ns && report.p95_ns <= report.p99_ns);
        assert!(report.throughput_rps > 0.0);
        // Every item replays at least twice, so plans must be warming.
        assert!(report.plan_hit_rate > 0.0);
        // Telemetry defaults on: the service fired probes for this load.
        assert!(report.telemetry_probes > 0);
    }

    #[test]
    fn reload_scenario_swaps_epochs_and_drains() {
        let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
        let report = run_load_reloading(catalog, &items, 4, items.len() as u64, "greengrocer");
        assert_eq!(report.ok + report.errors, report.requests);
        assert!(report.reloads >= 1, "reloader never fired");
        // run_load_inner's bounded drain already asserted no epoch leaked.
    }

    #[test]
    fn disabled_telemetry_fires_no_probes() {
        let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
        let n = items.len() as u64;
        let report = run_load_with(catalog, &items, 2, n, TelemetryConfig::disabled());
        assert_eq!(report.ok + report.errors, report.requests);
        assert_eq!(report.telemetry_probes, 0);
    }

    /// Exact nearest-rank percentile over a sorted slice — the oracle the
    /// histogram reduction is checked against.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Property: for seeded value streams spanning exact buckets through
    /// wide octaves, every histogram percentile brackets the true
    /// nearest-rank order statistic from above within one bucket's
    /// relative error — the contract the load report's p50/p95/p99 now
    /// rely on.
    #[test]
    fn histo_percentiles_track_exact_nearest_rank() {
        for seed in 0u64..8 {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (seed + 1);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let h = Histo::new();
            let mut values = Vec::new();
            for i in 0..2000u64 {
                // Mix exact small values with log-distributed large ones.
                let v = match i % 3 {
                    0 => next() % 16,
                    1 => next() % 10_000,
                    _ => next() % 1_000_000_000,
                };
                h.record(v);
                values.push(v);
            }
            values.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, values.len() as u64);
            for p in [0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
                let exact = exact_percentile(&values, p);
                let approx = snap.percentile(p);
                assert!(
                    approx >= exact,
                    "seed {seed} p{p}: approx {approx} below exact {exact}"
                );
                let bound = exact as f64 * (1.0 + Histo::MAX_RELATIVE_ERROR) + 1.0;
                assert!(
                    (approx as f64) <= bound,
                    "seed {seed} p{p}: approx {approx} exceeds {bound} (exact {exact})"
                );
            }
        }
    }
}
