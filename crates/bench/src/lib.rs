//! # gql-bench — the experiment harness
//!
//! Everything needed to regenerate the paper's tables and figures (and the
//! declared quantitative extensions) lives here:
//!
//! * [`suite`] — the canonical query suite Q1–Q10 and the figure queries
//!   F1–F5, each expressed in every formalism that can express it;
//! * [`tables`] — a plain-text table renderer for the harness output;
//! * the `harness` binary (`cargo run -p gql-bench --bin harness -- all`)
//!   prints tables T1–T5 and writes figures F1–F5 as SVG;
//! * the benches (`cargo bench`) measure the same workloads with the
//!   dependency-free [`microbench`] timer;
//! * [`serve_load`] — the corpus-replay load driver for the `gql-serve`
//!   query service (shared by `benches/serve_load.rs` and the
//!   `gql-serve-load` binary): throughput, p50/p95/p99 latency and cache
//!   hit rates at configurable concurrency.

pub mod microbench;
pub mod serve_load;
pub mod suite;
pub mod tables;
