//! The experiment harness: regenerates every table (T1–T5) and figure
//! (F1–F5) of the reproduction.
//!
//! ```sh
//! cargo run --release -p gql-bench --bin harness -- all
//! cargo run --release -p gql-bench --bin harness -- table t3
//! cargo run --release -p gql-bench --bin harness -- fig f1
//! ```
//!
//! Figures are written as SVG into `./figures/`; tables print to stdout in
//! the layout EXPERIMENTS.md records.

use std::collections::BTreeSet;
use std::time::Duration;

use gql_bench::suite::{self, Dataset};
use gql_bench::tables::{fmt_duration, median_time, TextTable};
use gql_core::{algebra, capability, translate, Engine, Feature, LanguageProfile, QueryKind};
use gql_layout::{layout, LayoutOptions, OrderingHeuristic};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec: Vec<&str> = args.iter().map(String::as_str).collect();
    match spec.as_slice() {
        [] | ["all"] => {
            table_t1();
            table_t2();
            table_t3();
            table_t4();
            table_t5();
            table_t6();
            figures();
        }
        ["table", "t1"] | ["t1"] => table_t1(),
        ["table", "t2"] | ["t2"] => table_t2(),
        ["table", "t3"] | ["t3"] => table_t3(),
        ["table", "t4"] | ["t4"] => table_t4(),
        ["table", "t5"] | ["t5"] => table_t5(),
        ["table", "t6"] | ["t6"] => table_t6(),
        ["fig", id] => figure(id),
        ["figs"] | ["figures"] => figures(),
        other => {
            eprintln!(
                "unknown arguments {other:?}\n\
                 usage: harness [all | t1..t6 | table tN | fig fN | figs]"
            );
            std::process::exit(2);
        }
    }
}

/// T1 — the language capability matrix, derived from the profiles that sit
/// next to the implementations.
fn table_t1() {
    println!("\n== T1 — language feature matrix ==================================\n");
    let profiles = LanguageProfile::all();
    let mut header = vec!["feature"];
    for p in &profiles {
        header.push(p.name);
    }
    let mut t = TextTable::new(&header);
    for f in Feature::ALL {
        let mut row = vec![f.name().to_string()];
        for p in &profiles {
            row.push(if p.supports(f) {
                "yes".into()
            } else {
                "—".into()
            });
        }
        t.row(row);
    }
    print!("{}", t.render());
}

/// T2 — expressibility of the canonical suite Q1–Q10 per language, plus the
/// automatic XML-GL → WG-Log translation outcome.
fn table_t2() {
    println!("\n== T2 — canonical suite expressibility ===========================\n");
    let mut t = TextTable::new(&[
        "query",
        "class",
        "XML-GL",
        "WG-Log",
        "XPath",
        "predicted(WG-Log)",
        "auto-translate",
    ]);
    let wglog_profile = LanguageProfile::wglog();
    for q in suite::queries() {
        let has = |b: bool| {
            if b {
                "yes".to_string()
            } else {
                "—".to_string()
            }
        };
        // Prediction: take the feature set of the XML-GL formulation (the
        // most expressive formalism here) and ask the WG-Log profile.
        let predicted = match q.xmlgl_program() {
            Some(p) => {
                let features: BTreeSet<Feature> = capability::features_of_xmlgl(&p.rules[0]);
                has(capability::expressible(&wglog_profile, &features))
            }
            None => "n/a".to_string(),
        };
        let translated = match q.xmlgl_program() {
            Some(p) => match translate::xmlgl_to_wglog(&p.rules[0]) {
                Ok(_) => "ok".to_string(),
                Err(gql_core::CoreError::Untranslatable { feature, .. }) => {
                    format!("✗ {feature}")
                }
                Err(e) => format!("error: {e}"),
            },
            None => "n/a".to_string(),
        };
        t.row(vec![
            q.id.to_string(),
            q.class.to_string(),
            has(q.xmlgl.is_some()),
            has(q.wglog.is_some()),
            has(q.xpath.is_some()),
            predicted,
            translated,
        ]);
    }
    print!("{}", t.render());
}

/// T3 — evaluation performance across document sizes and query classes.
fn table_t3() {
    println!("\n== T3 — engine performance vs document size ======================\n");
    println!("median of 5 runs; WG-Log excludes the instance load (resident DB)\n");
    let sizes = [100usize, 300, 1000, 3000];
    let picks = ["Q1", "Q3", "Q5", "Q6", "Q7"];
    let mut t = TextTable::new(&[
        "query", "class", "records", "nodes", "XML-GL", "WG-Log", "XPath",
    ]);
    for id in picks {
        let q = suite::queries()
            .into_iter()
            .find(|q| q.id == id)
            .expect("suite query");
        for &scale in &sizes {
            let doc = q.dataset.build(scale);
            let mut engine = Engine::new();
            engine.preload(&doc);
            let mut cells = vec![
                q.id.to_string(),
                q.class.to_string(),
                scale.to_string(),
                doc.live_node_count().to_string(),
            ];
            for lang in ["XML-GL", "WG-Log", "XPath"] {
                let entry = q
                    .engine_queries()
                    .into_iter()
                    .find(|(l, _)| *l == lang)
                    .map(|(_, query)| {
                        median_time(5, || {
                            let _ = engine.run(&query, &doc).expect("suite query runs");
                        })
                    });
                cells.push(entry.map_or("n/a".to_string(), fmt_duration));
            }
            t.row(cells);
        }
    }
    print!("{}", t.render());
}

/// T4 — diagram readability metrics, tuned vs naive layouts.
fn table_t4() {
    println!("\n== T4 — diagram readability (layout heuristics) ==================\n");
    let mut t = TextTable::new(&[
        "diagram",
        "nodes",
        "edges",
        "crossings(naive)",
        "crossings(bary)",
        "crossings(median)",
        "edge-len(bary)",
        "area(bary)",
    ]);
    let mut diagrams: Vec<(String, gql_layout::Diagram)> = suite::figures()
        .into_iter()
        .map(|(id, _, d)| (id.to_string(), d))
        .collect();
    // Add the suite diagrams that exist in XML-GL.
    for q in suite::queries() {
        if let Some(p) = q.xmlgl_program() {
            diagrams.push((
                q.id.to_string(),
                gql_xmlgl::diagram::rule_diagram(&p.rules[0]),
            ));
        } else if let Some(p) = q.wglog_program() {
            diagrams.push((
                q.id.to_string(),
                gql_wglog::diagram::rule_diagram(&p.rules[0]),
            ));
        }
    }
    for (id, d) in diagrams {
        let metric = |ordering| {
            let l = layout(
                &d,
                &LayoutOptions {
                    ordering,
                    ..Default::default()
                },
            );
            gql_layout::metrics::readability(&l)
        };
        let naive = metric(OrderingHeuristic::None);
        let bary = metric(OrderingHeuristic::Barycenter);
        let median = metric(OrderingHeuristic::Median);
        t.row(vec![
            id,
            d.node_count().to_string(),
            d.edge_count().to_string(),
            naive.crossings.to_string(),
            bary.crossings.to_string(),
            median.crossings.to_string(),
            format!("{:.0}", bary.total_edge_length),
            format!("{:.0}", bary.area),
        ]);
    }
    print!("{}", t.render());
}

/// T5 — optimizer ablation on the algebra plans.
fn table_t5() {
    println!("\n== T5 — optimizer ablation (algebra plans) =======================\n");
    println!("unoptimized = nested-loop joins, filters hoisted to the top\n");
    let mut t = TextTable::new(&[
        "query",
        "records",
        "rows",
        "unoptimized",
        "optimized",
        "speedup",
    ]);
    let picks = ["Q2", "Q3", "Q6"];
    for id in picks {
        let q = suite::queries()
            .into_iter()
            .find(|q| q.id == id)
            .expect("suite query");
        let Some(program) = q.xmlgl_program() else {
            continue;
        };
        for scale in [100usize, 400, 1600] {
            let doc = q.dataset.build(scale);
            let plan = translate::extract_to_plan(&program.rules[0]).expect("planable");
            let slow = algebra::deoptimize(&plan);
            let fast = algebra::optimize(&plan);
            let rows = algebra::execute(&fast, &doc).expect("plan runs").len();
            let rows_slow = algebra::execute(&slow, &doc).expect("plan runs").len();
            assert_eq!(rows, rows_slow, "{id}: ablation changed the answer");
            let t_slow = median_time(3, || {
                let _ = algebra::execute(&slow, &doc).expect("plan runs");
            });
            let t_fast = median_time(3, || {
                let _ = algebra::execute(&fast, &doc).expect("plan runs");
            });
            let speedup = t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9);
            t.row(vec![
                id.to_string(),
                scale.to_string(),
                rows.to_string(),
                fmt_duration(t_slow),
                fmt_duration(t_fast),
                format!("{speedup:.1}x"),
            ]);
        }
    }
    print!("{}", t.render());

    // Fixpoint ablation appendix (naive vs semi-naive on closure).
    println!("\n-- T5b — WG-Log fixpoint ablation (Q10 closure) --\n");
    let mut t = TextTable::new(&[
        "records",
        "naive embeddings",
        "semi-naive embeddings",
        "naive",
        "semi-naive",
    ]);
    let q10 = suite::queries()
        .into_iter()
        .find(|q| q.id == "Q10")
        .expect("Q10");
    let program = q10.wglog_program().expect("Q10 in WG-Log");
    for scale in [50usize, 150, 400] {
        let doc = Dataset::CityGuide.build(scale);
        let db = gql_wglog::instance::Instance::from_document(&doc);
        let run = |mode| {
            let mut out = (Duration::ZERO, 0usize);
            out.0 = median_time(3, || {
                let (_, stats) = gql_wglog::eval::run_with(&program, &db, mode).expect("Q10 runs");
                out.1 = stats.embeddings_found;
            });
            out
        };
        let (naive_t, naive_e) = run(gql_wglog::eval::FixpointMode::Naive);
        let (semi_t, semi_e) = run(gql_wglog::eval::FixpointMode::SemiNaive);
        t.row(vec![
            scale.to_string(),
            naive_e.to_string(),
            semi_e.to_string(),
            fmt_duration(naive_t),
            fmt_duration(semi_t),
        ]);
    }
    print!("{}", t.render());
}

/// T6 — streaming vs DOM evaluation of the navigational core.
fn table_t6() {
    println!("\n== T6 — streaming vs DOM navigation ==============================\n");
    println!("one-shot setting: DOM pays its parse; streaming reads the text once\n");
    let mut t = TextTable::new(&[
        "records",
        "nodes",
        "matches",
        "stream",
        "DOM parse",
        "DOM eval",
        "stream vs total",
    ]);
    let path = "/cityguide/restaurant/menu/price";
    for scale in [300usize, 1000, 3000, 10000] {
        let doc = Dataset::CityGuide.build(scale);
        let xml = doc.to_xml_string();
        let compiled = gql_ssdm::stream::StreamPath::parse(path).expect("path parses");
        let mut matches = 0usize;
        let t_stream = median_time(5, || {
            matches = compiled.run(&xml).expect("stream runs").count;
        });
        let mut parsed = None;
        let t_parse = median_time(5, || {
            parsed = Some(gql_ssdm::Document::parse_str(&xml).expect("parses"));
        });
        let parsed = parsed.expect("parsed");
        let expr = gql_xpath::parse(path).expect("xpath parses");
        let t_eval = median_time(5, || {
            let _ = gql_xpath::evaluate(&parsed, &expr).expect("runs");
        });
        let total = t_parse + t_eval;
        let ratio = total.as_secs_f64() / t_stream.as_secs_f64().max(1e-9);
        t.row(vec![
            scale.to_string(),
            doc.live_node_count().to_string(),
            matches.to_string(),
            fmt_duration(t_stream),
            fmt_duration(t_parse),
            fmt_duration(t_eval),
            format!("{ratio:.1}x"),
        ]);
    }
    print!("{}", t.render());
}

/// All figures: SVG to ./figures, ASCII to stdout, plus the run summary.
fn figures() {
    for (id, _, _) in suite::figures() {
        figure(&id.to_lowercase());
    }
}

fn figure(id: &str) {
    let figs = suite::figures();
    let Some((fid, caption, diagram)) = figs
        .into_iter()
        .find(|(f, _, _)| f.eq_ignore_ascii_case(id))
    else {
        eprintln!("unknown figure '{id}' (have f1..f5)");
        std::process::exit(2);
    };
    println!("\n== {fid} — {caption} ==\n");
    let l = layout(&diagram, &LayoutOptions::default());
    println!("{}", gql_layout::render::to_ascii(&diagram, &l));
    std::fs::create_dir_all("figures").expect("figures dir");
    let path = format!("figures/{}.svg", fid.to_lowercase());
    std::fs::write(&path, gql_layout::render::to_svg(&diagram, &l)).expect("svg written");
    println!("(SVG written to {path})");

    // Run the figure's query where it denotes one, summarising the result.
    match fid {
        "F1" => {
            let doc = Dataset::CityGuide.build(40);
            let program = gql_wglog::dsl::parse(
                "rule { query { $r: restaurant  $m: menu  $r -menu-> $m }
                        construct { $l: rest-list  $l -member-> $r } } goal rest-list",
            )
            .expect("F1 parses");
            let db = gql_wglog::instance::Instance::from_document(&doc);
            let out = gql_wglog::eval::run(&program, &db).expect("F1 runs");
            let l = out.objects_of_type("rest-list")[0];
            println!(
                "F1 on city-guide(40): one rest-list, {} members",
                out.out_edges(l).count()
            );
        }
        "F2" => {
            let doc = Dataset::Bibliography.build(40);
            let program = gql_xmlgl::dsl::parse(
                r#"rule { extract { book as $b { @year as $y >= "2000" } }
                          construct { result { all $b } } }"#,
            )
            .expect("F2 parses");
            let out = gql_xmlgl::run(&program, &doc).expect("F2 runs");
            let root = out.root_element().expect("result root");
            println!(
                "F2 on bibliography(40): {} books selected",
                out.child_elements(root).count()
            );
        }
        "F4" => {
            let doc = Dataset::Bibliography.build(40);
            let program = gql_xmlgl::dsl::parse(
                r#"rule { extract { person as $p { firstname { text as $f }
                                                   lastname { text as $l } fulladdr } }
                          construct { result { entry { first { copy $f } last { copy $l } } } } }"#,
            )
            .expect("F4 parses");
            let out = gql_xmlgl::run(&program, &doc).expect("F4 runs");
            println!(
                "F4 on bibliography(40): {} persons with a FULLADDR projected",
                out.children(out.root()).len()
            );
        }
        "F5" => {
            let doc = Dataset::Greengrocer.build(60);
            let program = gql_xmlgl::dsl::parse(
                r#"rule { extract {
                            product as $p { vendor { text as $v1 } }
                            vendor as $w { name { text as $v2 } }
                            join $v1 == $v2 }
                          construct { answer { all $p } } }"#,
            )
            .expect("F5 parses");
            let out = gql_xmlgl::run(&program, &doc).expect("F5 runs");
            let root = out.root_element().expect("answer root");
            println!(
                "F5 on greengrocer(60): {} products joined to their vendor records",
                out.child_elements(root).count()
            );
        }
        _ => {}
    }
    println!();
}

// The engine enum is exhaustively matched above; silence the otherwise
// unused-import lint when compiling subsets.
#[allow(dead_code)]
fn _use(_: QueryKind) {}
