//! `gql-serve-load` — run the corpus-replay load driver from the command
//! line and print one JSON summary per worker count.
//!
//! ```text
//! gql-serve-load [--workers 1,8,64] [--requests 1600] [--corpus DIR]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use gql_bench::serve_load::{build_workload, default_corpus_dir, run_load};

fn usage() -> ExitCode {
    eprintln!("usage: gql-serve-load [--workers 1,8,64] [--requests N] [--corpus DIR]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workers: Vec<usize> = vec![1, 8, 64];
    let mut requests: u64 = 1600;
    let mut corpus: PathBuf = default_corpus_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
                match parsed {
                    Ok(w) if !w.is_empty() => workers = w,
                    _ => return usage(),
                }
            }
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => requests = n,
                None => return usage(),
            },
            "--corpus" => match args.next() {
                Some(dir) => corpus = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    for w in workers {
        let (catalog, items) = match build_workload(&corpus) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("gql-serve-load: {e}");
                return ExitCode::FAILURE;
            }
        };
        let r = run_load(catalog, &items, w, requests);
        println!(
            "{{\"workers\":{},\"requests\":{},\"ok\":{},\"errors\":{},\"wall_ms\":{},\
             \"throughput_rps\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
             \"plan_hit_rate\":{:.3},\"index_hit_rate\":{:.3}}}",
            r.workers,
            r.requests,
            r.ok,
            r.errors,
            r.wall.as_millis(),
            r.throughput_rps,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.plan_hit_rate,
            r.index_hit_rate,
        );
    }
    ExitCode::SUCCESS
}
