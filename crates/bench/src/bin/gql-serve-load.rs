//! `gql-serve-load` — run the corpus-replay load driver from the command
//! line and print one JSON summary per worker count.
//!
//! ```text
//! gql-serve-load [--workers 1,8,64] [--requests 1600] [--corpus DIR]
//! gql-serve-load --addr HOST:PORT [--requests N] [--tenant NAME]
//! ```
//!
//! Without `--addr` the driver runs in-process (deterministic latency,
//! no socket noise). With `--addr` it storms a **running** server's demo
//! datasets through the resilient client instead — and fails fast with a
//! clear message and a nonzero exit if the server is unreachable, rather
//! than hammering a dead address with retries.

use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gql_bench::serve_load::{build_workload, default_corpus_dir, run_load};
use gql_serve::{Request, ResilientClient, Response, RetryPolicy};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gql-serve-load [--workers 1,8,64] [--requests N] [--corpus DIR]\n       \
         gql-serve-load --addr HOST:PORT [--requests N] [--tenant NAME]"
    );
    ExitCode::from(2)
}

/// Remote mode: canned demo-dataset queries through the retrying client
/// against a live server. The connection is probed once, eagerly — an
/// unreachable server is an immediate, explicit failure.
fn run_remote(addr_str: &str, tenant: &str, requests: u64) -> ExitCode {
    let Some(addr) = addr_str
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
    else {
        eprintln!("gql-serve-load: cannot resolve {addr_str}");
        return ExitCode::FAILURE;
    };
    if let Err(e) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
        eprintln!("gql-serve-load: cannot connect to {addr_str}: {e}");
        return ExitCode::FAILURE;
    }
    let canned: &[(&str, &str, &str)] = &[
        ("bibliography", "xpath", "//book/title"),
        ("bibliography", "xpath", "//book[year]"),
        ("cityguide", "xpath", "//restaurant/name"),
        ("greengrocer", "xpath", "//price"),
        ("webgraph", "xpath", "//page"),
    ];
    let mut client = ResilientClient::new(
        addr,
        RetryPolicy::default().deadline(Duration::from_secs(10)),
    );
    let (mut ok, mut app_errors, mut gave_up) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for i in 0..requests {
        let (dataset, kind, query) = canned[i as usize % canned.len()];
        match client.query(&Request::new(tenant, dataset, kind, query)) {
            Ok(Response::Ok(_)) => ok += 1,
            Ok(Response::Err(_)) => app_errors += 1,
            Err(e) => {
                gave_up += 1;
                eprintln!("gql-serve-load: request {i}: {e}");
            }
        }
    }
    let wall = start.elapsed();
    println!(
        "{{\"addr\":\"{addr_str}\",\"requests\":{requests},\"ok\":{ok},\"errors\":{app_errors},\
         \"gave_up\":{gave_up},\"retries\":{},\"wall_ms\":{},\"throughput_rps\":{:.1}}}",
        client.retries(),
        wall.as_millis(),
        requests as f64 / wall.as_secs_f64().max(1e-9),
    );
    if gave_up == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut workers: Vec<usize> = vec![1, 8, 64];
    let mut requests: u64 = 1600;
    let mut corpus: PathBuf = default_corpus_dir();
    let mut addr: Option<String> = None;
    let mut tenant = "public".to_string();
    let mut requests_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
                match parsed {
                    Ok(w) if !w.is_empty() => workers = w,
                    _ => return usage(),
                }
            }
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    requests = n;
                    requests_set = true;
                }
                None => return usage(),
            },
            "--corpus" => match args.next() {
                Some(dir) => corpus = PathBuf::from(dir),
                None => return usage(),
            },
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => return usage(),
            },
            "--tenant" => match args.next() {
                Some(t) => tenant = t,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(addr) = addr {
        // Remote runs default to a modest request count: the point is a
        // live-fire probe, not saturating a production box by accident.
        let requests = if requests_set { requests } else { 100 };
        return run_remote(&addr, &tenant, requests);
    }
    for w in workers {
        let (catalog, items) = match build_workload(&corpus) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("gql-serve-load: {e}");
                return ExitCode::FAILURE;
            }
        };
        let r = run_load(catalog, &items, w, requests);
        println!(
            "{{\"workers\":{},\"requests\":{},\"ok\":{},\"errors\":{},\"wall_ms\":{},\
             \"throughput_rps\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
             \"plan_hit_rate\":{:.3},\"index_hit_rate\":{:.3}}}",
            r.workers,
            r.requests,
            r.ok,
            r.errors,
            r.wall.as_millis(),
            r.throughput_rps,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.plan_hit_rate,
            r.index_hit_rate,
        );
    }
    ExitCode::SUCCESS
}
