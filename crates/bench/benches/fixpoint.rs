//! Design-choice ablation D3: naive vs semi-naive fixpoint iteration on the
//! recursive Q10 closure and on a pure chain transitive closure.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite::{self, Dataset};
use gql_bench::{criterion_group, criterion_main};
use gql_wglog::eval::{run_with, FixpointMode};
use gql_wglog::instance::{Instance, Object};
use gql_wglog::rule::{Program, RuleBuilder};

fn closure_program() -> Program {
    let base = RuleBuilder::new()
        .query_node("a", "doc")
        .query_node("b", "doc")
        .query_edge("a", "link", "b")
        .unwrap()
        .construct_edge("a", "reach", "b")
        .unwrap()
        .build()
        .unwrap();
    let step = RuleBuilder::new()
        .query_node("a", "doc")
        .query_node("b", "doc")
        .query_node("c", "doc")
        .query_edge("a", "reach", "b")
        .unwrap()
        .query_edge("b", "link", "c")
        .unwrap()
        .construct_edge("a", "reach", "c")
        .unwrap()
        .build()
        .unwrap();
    Program {
        rules: vec![base, step],
        goal: None,
    }
}

fn chain(n: usize) -> Instance {
    let mut db = Instance::new();
    let nodes: Vec<_> = (0..n).map(|_| db.add_object(Object::new("doc"))).collect();
    for w in nodes.windows(2) {
        db.add_edge(w[0], "link", w[1]);
    }
    db
}

fn bench_chain_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("d3_chain_closure");
    group.sample_size(10);
    let program = closure_program();
    for n in [16usize, 32, 64] {
        let db = chain(n);
        for (label, mode) in [
            ("naive", FixpointMode::Naive),
            ("seminaive", FixpointMode::SemiNaive),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &db, |b, db| {
                b.iter(|| run_with(&program, db, mode).expect("closure runs"))
            });
        }
    }
    group.finish();
}

fn bench_q10(c: &mut Criterion) {
    let mut group = c.benchmark_group("q10_recursion");
    group.sample_size(10);
    let q10 = suite::queries()
        .into_iter()
        .find(|q| q.id == "Q10")
        .expect("Q10");
    let program = q10.wglog_program().expect("Q10 in WG-Log");
    for scale in [50usize, 150] {
        let doc = Dataset::CityGuide.build(scale);
        let db = Instance::from_document(&doc);
        for (label, mode) in [
            ("naive", FixpointMode::Naive),
            ("seminaive", FixpointMode::SemiNaive),
        ] {
            group.bench_with_input(BenchmarkId::new(label, scale), &db, |b, db| {
                b.iter(|| run_with(&program, db, mode).expect("Q10 runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chain_closure, bench_q10);
criterion_main!(benches);
