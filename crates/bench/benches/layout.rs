//! Experiment T4 / design-choice D4: layout cost and the barycenter vs
//! median crossing-reduction heuristics, on the suite diagrams and on
//! synthetic layered tangles where crossings actually occur.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite;
use gql_bench::{criterion_group, criterion_main};
use gql_layout::{layout, Diagram, EdgeSpec, LayoutOptions, NodeSpec, OrderingHeuristic, Shape};

/// A layered "tangle": k layers of w nodes, each node wired to 2 pseudo-
/// random nodes of the next layer — dense enough to make the ordering
/// heuristics work.
fn tangle(layers: usize, width: usize) -> Diagram {
    let mut d = Diagram::new();
    let mut rows = Vec::new();
    for l in 0..layers {
        let row: Vec<_> = (0..width)
            .map(|i| d.add_node(NodeSpec::new(format!("n{l}_{i}"), Shape::Box)))
            .collect();
        rows.push(row);
    }
    // Deterministic pseudo-random wiring (no RNG: multiplicative hashing).
    for l in 0..layers - 1 {
        for (i, &from) in rows[l].iter().enumerate() {
            let a = (i * 7 + l * 13 + 3) % width;
            let b = (i * 11 + l * 5 + 1) % width;
            d.add_edge(from, rows[l + 1][a], EdgeSpec::plain());
            if b != a {
                d.add_edge(from, rows[l + 1][b], EdgeSpec::plain());
            }
        }
    }
    d
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_ordering_heuristics");
    group.sample_size(20);
    for (layers, width) in [(4usize, 8usize), (6, 16)] {
        let d = tangle(layers, width);
        for (label, ordering) in [
            ("none", OrderingHeuristic::None),
            ("barycenter", OrderingHeuristic::Barycenter),
            ("median", OrderingHeuristic::Median),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{layers}x{width}")),
                &d,
                |b, d| {
                    b.iter(|| {
                        layout(
                            d,
                            &LayoutOptions {
                                ordering,
                                ..Default::default()
                            },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_suite_diagrams(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_suite_diagrams");
    group.sample_size(30);
    for (id, _, d) in suite::figures() {
        group.bench_with_input(BenchmarkId::new("layout_and_svg", id), &d, |b, d| {
            b.iter(|| {
                let l = layout(d, &LayoutOptions::default());
                gql_layout::render::to_svg(d, &l)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics, bench_suite_diagrams);
criterion_main!(benches);
