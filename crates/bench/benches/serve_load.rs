//! The corpus-replay load bench: the full workload (regression corpus +
//! paper datasets + seeded generated mix) replayed through the in-process
//! service at 1, 8 and 64 submitters, reporting throughput, p50/p95/p99
//! latency and plan/index cache hit rates into `BENCH_results.json`.
//!
//! CI holds `serve_load/scale_64v1 ≥ 1` (a thread-pooled service must not
//! get *slower* with more clients) and checks the `serve_load/w8`
//! percentile rows exist and are ordered via
//! `tools/check_bench_json.py --percentiles`.
//!
//! The reload-under-load scenario replays the same workload at 8
//! submitters while a reloader thread hot-swaps the `greengrocer` epoch
//! for the whole timed window; CI holds
//! `serve_load/reload_p99_vs_steady ≤ 2` — an epoch swap may cost a
//! short write-lock stall, never a latency cliff.

use gql_bench::microbench::Criterion;
use gql_bench::serve_load::{build_workload, default_corpus_dir, run_load, run_load_reloading};
use gql_bench::{criterion_group, criterion_main};

/// Requests per scenario: enough for stable percentiles and to amortize
/// scheduling noise at high worker counts, scaled down for smoke runs via
/// `GQL_BENCH_SAMPLES=1`. The same count is used at every worker count so
/// the throughput rows stay comparable.
fn requests_per_run() -> u64 {
    let samples: u64 = std::env::var("GQL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    (samples.clamp(1, 10) * 160).max(64 * 20)
}

fn bench_serve_load(c: &mut Criterion) {
    let group = c.benchmark_group("serve_load");
    let requests = requests_per_run();
    let mut throughput = std::collections::BTreeMap::new();
    let mut steady_p99 = 0u64;
    for workers in [1usize, 8, 64] {
        let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
        let report = run_load(catalog, &items, workers, requests);
        assert_eq!(report.ok + report.errors, report.requests);
        group.record_metric(
            format!("throughput/w{workers}"),
            report.throughput_rps,
            "req/s",
        );
        throughput.insert(workers, report.throughput_rps);
        if workers == 8 {
            group.record_metric("w8/p50", report.p50_ns as f64, "ns");
            group.record_metric("w8/p95", report.p95_ns as f64, "ns");
            group.record_metric("w8/p99", report.p99_ns as f64, "ns");
            group.record_metric("plan_hit_rate", report.plan_hit_rate, "ratio");
            group.record_metric("index_hit_rate", report.index_hit_rate, "ratio");
            steady_p99 = report.p99_ns;
        }
    }
    // The CI sanity bar: more submitters must never make the service
    // slower than a single sequential client.
    group.record_metric("scale_64v1", throughput[&64] / throughput[&1], "ratio");

    // Reload-under-load: same workload and submitter count as the w8
    // steady row, with the greengrocer epoch hot-swapped throughout.
    let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
    let report = run_load_reloading(catalog, &items, 8, requests, "greengrocer");
    assert_eq!(report.ok + report.errors, report.requests);
    assert!(
        report.reloads >= 1,
        "reloader never fired during the window"
    );
    group.record_metric("reload/p99", report.p99_ns as f64, "ns");
    group.record_metric("reload/swaps", report.reloads as f64, "count");
    group.record_metric(
        "reload_p99_vs_steady",
        report.p99_ns as f64 / (steady_p99 as f64).max(1.0),
        "ratio",
    );
    group.finish();
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
