//! Experiment F5/Q6: value-join evaluation — the crossover between
//! pattern-based (factor the join once) and navigational (re-navigate per
//! candidate) styles, plus the algebra plan.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite::Dataset;
use gql_bench::{criterion_group, criterion_main};
use gql_core::{algebra, translate};

fn q6_xmlgl() -> gql_xmlgl::ast::Program {
    gql_xmlgl::dsl::parse(
        r#"rule { extract {
                    product as $p { vendor { text as $v1 } }
                    vendor as $w { country { text = "holland" }
                                   name { text as $v2 } }
                    join $v1 == $v2 }
                  construct { answer { all $p } } }"#,
    )
    .expect("Q6 parses")
}

const Q6_XPATH: &str = "//product[vendor = //vendors/vendor[country='holland']/name]";

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("q6_value_join");
    group.sample_size(10);
    let program = q6_xmlgl();
    let plan = translate::extract_to_plan(&program.rules[0]).expect("Q6 plans");
    let optimized = algebra::optimize(&plan);
    let xpath = gql_xpath::parse(Q6_XPATH).expect("Q6 xpath parses");

    for scale in [100usize, 400, 1000] {
        let doc = Dataset::Greengrocer.build(scale);
        group.bench_with_input(BenchmarkId::new("xmlgl_engine", scale), &doc, |b, doc| {
            b.iter(|| gql_xmlgl::run(&program, doc).expect("Q6 runs"))
        });
        group.bench_with_input(
            BenchmarkId::new("algebra_hashjoin", scale),
            &doc,
            |b, doc| b.iter(|| algebra::execute(&optimized, doc).expect("plan runs")),
        );
        // XPath re-navigates the vendors per product: the quadratic side of
        // the crossover. Keep the largest size bounded.
        if scale <= 400 {
            group.bench_with_input(
                BenchmarkId::new("xpath_navigational", scale),
                &doc,
                |b, doc| b.iter(|| gql_xpath::evaluate(doc, &xpath).expect("xpath runs")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
