//! Per-phase engine timings from the tracing layer (experiment companion
//! to the end-to-end `queries` bench).
//!
//! The end-to-end bench reports one wall-clock number per (query, engine);
//! this bench uses [`Engine::run_profiled`] to split that number into its
//! phases — `load` (WG-Log's document→instance conversion), `index`
//! (DocIndex build or cache probe) and `eval` — and records each as a
//! metric in `BENCH_results.json`. The split is what the paper's cost
//! discussion needs: WG-Log's load dominates one-shot queries and
//! amortises away on a resident database, while the tree-native engines
//! pay per-query indexing instead.
//!
//! Phase durations come from the profile's span tree (one profiled run per
//! sample, minimum over samples to suppress scheduler noise), so the bench
//! doubles as an integration check that every engine emits the phases.

use gql_bench::microbench::Criterion;
use gql_bench::suite::{queries, Dataset};
use gql_bench::{criterion_group, criterion_main};
use gql_core::engine::Engine;

const SCALE: usize = 300;
const SAMPLES: usize = 10;

fn bench_phase_profile(c: &mut Criterion) {
    let group = c.benchmark_group("profile");
    let datasets: Vec<(Dataset, gql_ssdm::Document)> = [
        Dataset::CityGuide,
        Dataset::Greengrocer,
        Dataset::Bibliography,
    ]
    .into_iter()
    .map(|d| (d, d.build(SCALE)))
    .collect();
    // One representative query per engine keeps the bench quick; Q1 has
    // formulations in all three languages.
    let suite = queries();
    let q1 = suite
        .iter()
        .find(|q| q.id == "Q1")
        .expect("Q1 is in the suite");
    let doc = &datasets
        .iter()
        .find(|(d, _)| *d == q1.dataset)
        .expect("dataset built")
        .1;
    let engine = Engine::new();
    for (label, query) in q1.engine_queries() {
        let mut phases: Vec<(&'static str, u128)> = Vec::new();
        for _ in 0..SAMPLES {
            let outcome = engine
                .run_profiled(&query, doc)
                .expect("suite query evaluates");
            let profile = outcome.profile.expect("profiled run has a profile");
            let run = profile.find("run").expect("run span");
            for phase in ["load", "index", "eval", "construct"] {
                let Some(node) = run.find(phase) else {
                    continue;
                };
                match phases.iter_mut().find(|(p, _)| *p == phase) {
                    Some((_, best)) => *best = (*best).min(node.nanos),
                    None => phases.push((phase, node.nanos)),
                }
            }
        }
        for (phase, nanos) in phases {
            group.record_metric(format!("Q1/{label}/{phase}_ns"), nanos as f64, "ns");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_phase_profile);
criterion_main!(benches);
