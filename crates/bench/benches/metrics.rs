//! Telemetry-plane overhead on the serve hot path.
//!
//! The telemetry plane makes the same promise the trace and guard layers
//! do — free when disabled: every hook on a disabled [`Telemetry`] is one
//! `enabled` branch and an immediate return. This bench holds that
//! promise to a number on the corpus-replay load the `serve_load` bench
//! measures:
//!
//! * the full workload with the plane **disabled** (per-request wall
//!   time — the baseline),
//! * the same workload with the plane **enabled** (recorded as a ratio,
//!   not asserted — two full service runs differ by scheduling noise
//!   larger than the margin under test), and
//! * the **derived bound**: the number of telemetry probes one request
//!   fires on average (read exactly from the enabled plane's probe
//!   counter) times the measured cost of a disabled probe must stay
//!   under 2% of the disabled per-request time. That figure is immune to
//!   run-to-run noise and regresses exactly when a hook starts doing
//!   real work while disabled.
//!
//! `GQL_BENCH_SAMPLES` scales effort as usual.

use gql_bench::microbench::Criterion;
use gql_bench::serve_load::{build_workload, default_corpus_dir, run_load_with};
use gql_bench::{criterion_group, criterion_main};
use gql_serve::{Telemetry, TelemetryConfig};

fn requests_per_run() -> u64 {
    let samples: u64 = std::env::var("GQL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    (samples.clamp(1, 10) * 160).max(64 * 20)
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let requests = requests_per_run();
    let workers = 8;

    let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
    let disabled = run_load_with(
        catalog,
        &items,
        workers,
        requests,
        TelemetryConfig::disabled(),
    );
    assert_eq!(disabled.telemetry_probes, 0, "disabled plane fired probes");
    let (catalog, items) = build_workload(&default_corpus_dir()).expect("workload builds");
    let enabled = run_load_with(
        catalog,
        &items,
        workers,
        requests,
        TelemetryConfig::default(),
    );
    assert!(enabled.telemetry_probes > 0, "enabled plane fired nothing");

    let disabled_per_req = disabled.wall.as_secs_f64() / requests as f64;
    let enabled_per_req = enabled.wall.as_secs_f64() / requests as f64;
    let probes_per_req = enabled.telemetry_probes as f64 / requests as f64;
    group.record_metric("throughput_disabled", disabled.throughput_rps, "req/s");
    group.record_metric("throughput_enabled", enabled.throughput_rps, "req/s");
    group.record_metric(
        "enabled_ratio",
        enabled_per_req / disabled_per_req.max(f64::MIN_POSITIVE),
        "x",
    );
    group.record_metric("probes_per_request", probes_per_req, "probes");

    // Measure the disabled-probe cost through the same hook the service's
    // submit path calls. Batch 1024 probes per timed iteration so the
    // figure stays meaningful even under `GQL_BENCH_SAMPLES=1` (a single
    // branch is below timer resolution).
    const PROBE_BATCH: u32 = 1024;
    let plane = Telemetry::build(&TelemetryConfig::disabled(), &[]);
    let probe = group.bench_function("disabled_probe_x1024", |b| {
        b.iter(|| {
            for _ in 0..PROBE_BATCH {
                plane.on_submitted(None);
            }
            plane.probes()
        })
    }) / PROBE_BATCH;
    let derived = probe.as_secs_f64() * probes_per_req;
    let derived_pct = 100.0 * derived / disabled_per_req.max(f64::MIN_POSITIVE);
    group.record_metric("derived_overhead_pct", derived_pct, "%");
    group.finish();

    // The acceptance bar: disabled-telemetry overhead bounded under 2% of
    // a request's service time.
    assert!(
        derived_pct < 2.0,
        "disabled-telemetry overhead bound is {derived_pct:.3}% of a request \
         ({probes_per_req:.1} probes/request × {probe:?}/probe vs {:.1}us/request)",
        disabled_per_req * 1e6
    );
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
