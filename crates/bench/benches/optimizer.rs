//! Experiment T5 / design-choice D2: optimized (hash join, pushed filters)
//! vs deoptimized (nested loops, hoisted filters) algebra plans, including
//! a low-selectivity self-join where pushdown pays most, plus the matcher
//! side of the same story: declaration-order root joins vs the
//! summary-inferred combine order from `gql-infer`, the cost-based order
//! from `gql-plan` against the full enumeration of root orders, and the
//! engine's plan-cache warm/cold phase timings.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite::Dataset;
use gql_bench::{criterion_group, criterion_main};
use gql_core::{algebra, translate, Engine, QueryKind};
use gql_guard::Guard;
use gql_ssdm::{DocIndex, Summary};
use gql_trace::{ExecutionProfile, Trace};
use gql_xmlgl::ast::CmpOp;
use gql_xmlgl::builder::{RuleBuilder, C, Q};
use gql_xmlgl::eval::{match_rule_guarded, match_rule_planned, MatchMode};

/// All permutations of `0..k` (the full join-order search space for a
/// `k`-root rule; only used for tiny `k`).
fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..k).collect();
    fn heap(items: &mut Vec<usize>, n: usize, out: &mut Vec<Vec<usize>>) {
        if n <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..n {
            heap(items, n - 1, out);
            if n.is_multiple_of(2) {
                items.swap(i, n - 1);
            } else {
                items.swap(0, n - 1);
            }
        }
    }
    heap(&mut items, k, &mut out);
    out
}

/// Nanoseconds a profiled run spent in its plan-related phases
/// (`analyze` + `plan`) — the cost a cache hit avoids.
fn plan_phase_nanos(profile: &ExecutionProfile) -> u128 {
    let run = profile.find("run").expect("run span");
    run.find("analyze").map_or(0, |s| s.nanos) + run.find("plan").map_or(0, |s| s.nanos)
}

fn bench_q6(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_q6_join_plans");
    group.sample_size(10);
    let program = gql_xmlgl::dsl::parse(
        r#"rule { extract {
                    product as $p { vendor { text as $v1 } }
                    vendor as $w { country { text = "holland" }
                                   name { text as $v2 } }
                    join $v1 == $v2 }
                  construct { answer { all $p } } }"#,
    )
    .expect("Q6 parses");
    let plan = translate::extract_to_plan(&program.rules[0]).expect("Q6 plans");
    let fast = algebra::optimize(&plan);
    let slow = algebra::deoptimize(&plan);
    for scale in [200usize, 800, 3200] {
        let doc = Dataset::Greengrocer.build(scale);
        group.bench_with_input(BenchmarkId::new("optimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&fast, doc).expect("plan runs"))
        });
        group.bench_with_input(BenchmarkId::new("deoptimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&slow, doc).expect("plan runs"))
        });

        // Matcher-level counterpart: Q6's declaration order combines the
        // bulky `product` root first; the summary-inferred plan starts from
        // the country-filtered `vendor` root instead. Results are
        // guaranteed identical — only intermediate join sizes differ.
        let rule = &program.rules[0];
        let idx = DocIndex::build(&doc);
        let summary = Summary::from_index(&doc, &idx);
        let inference = gql_infer::infer_xmlgl(&program, &summary);
        let order = gql_infer::plan_root_order(rule, &inference.root_bounds[0])
            .expect("Q6 has a reorderable multi-root extract");
        assert_ne!(order, vec![0, 1], "plan must actually reorder Q6");
        let (trace, guard) = (Trace::disabled(), Guard::unlimited());
        let declared = match_rule_guarded(
            rule,
            &doc,
            Some(&idx),
            MatchMode::Sequential,
            &trace,
            &guard,
        );
        let planned = match_rule_planned(
            rule,
            &doc,
            Some(&idx),
            MatchMode::Sequential,
            &trace,
            &guard,
            &order,
        );
        assert_eq!(declared, planned, "plans must not change results");
        group.bench_with_input(BenchmarkId::new("declared-order", scale), &doc, |b, doc| {
            b.iter(|| {
                match_rule_guarded(rule, doc, Some(&idx), MatchMode::Sequential, &trace, &guard)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("summary-planned", scale),
            &doc,
            |b, doc| {
                b.iter(|| {
                    match_rule_planned(
                        rule,
                        doc,
                        Some(&idx),
                        MatchMode::Sequential,
                        &trace,
                        &guard,
                        &order,
                    )
                })
            },
        );

        // The cost-based order from `gql-plan`'s bottom-up enumerator,
        // against the *full* enumeration of root orders. Acceptance: the
        // cost-chosen order stays within 10% of the best enumerated order
        // (`cost_planned_vs_best` ≤ 1.1).
        let cost_order = gql_plan::plan_rule_order(rule, &inference.root_bounds[0])
            .expect("Q6 plans under gql-plan");
        let planned_mean =
            group.bench_with_input(BenchmarkId::new("cost-planned", scale), &doc, |b, doc| {
                b.iter(|| {
                    match_rule_planned(
                        rule,
                        doc,
                        Some(&idx),
                        MatchMode::Sequential,
                        &trace,
                        &guard,
                        &cost_order,
                    )
                })
            });
        let mut best: Option<std::time::Duration> = None;
        for enumerated in permutations(rule.extract.roots.len()) {
            let label = format!(
                "enumerated-{}",
                enumerated
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("-")
            );
            let mean = group.bench_with_input(BenchmarkId::new(label, scale), &doc, |b, doc| {
                b.iter(|| {
                    match_rule_planned(
                        rule,
                        doc,
                        Some(&idx),
                        MatchMode::Sequential,
                        &trace,
                        &guard,
                        &enumerated,
                    )
                })
            });
            best = Some(best.map_or(mean, |b| b.min(mean)));
        }
        let best = best.expect("at least one enumerated order");
        group.record_metric(
            BenchmarkId::new("cost_planned_vs_best", scale),
            planned_mean.as_nanos() as f64 / best.as_nanos().max(1) as f64,
            "x",
        );
    }
    group.finish();
}

/// Plan-cache effect on the plan phase: cold runs pay summary inference,
/// join-order enumeration and lowering; warm runs pay a keyed lookup. The
/// `plan_warm_speedup` metric (cold / warm plan-phase nanoseconds, from
/// trace phase timings) is the acceptance figure: ≥ 5× on a hit.
fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_q6_join_plans");
    group.sample_size(10);
    let program = gql_xmlgl::dsl::parse(
        r#"rule { extract {
                    product as $p { vendor { text as $v1 } }
                    vendor as $w { country { text = "holland" }
                                   name { text as $v2 } }
                    join $v1 == $v2 }
                  construct { answer { all $p } } }"#,
    )
    .expect("Q6 parses");
    let samples: usize = std::env::var("GQL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    for scale in [200usize, 800, 3200] {
        let doc = Dataset::Greengrocer.build(scale);
        let q = QueryKind::XmlGl(program.clone());
        // Cold: a fresh engine per run, so every plan phase misses.
        let mut cold_total = 0u128;
        for _ in 0..samples {
            let engine = Engine::new();
            let profile = engine
                .run_profiled(&q, &doc)
                .expect("Q6 runs")
                .profile
                .expect("profiled");
            cold_total += plan_phase_nanos(&profile);
        }
        // Warm: one engine with the cache primed, so every plan phase hits.
        let engine = Engine::new();
        engine.run(&q, &doc).expect("priming run");
        let mut warm_total = 0u128;
        for _ in 0..samples {
            let profile = engine
                .run_profiled(&q, &doc)
                .expect("Q6 runs")
                .profile
                .expect("profiled");
            warm_total += plan_phase_nanos(&profile);
        }
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 1, "only the priming run may miss");
        assert_eq!(stats.hits as usize, samples, "warm runs must all hit");
        let cold = cold_total as f64 / samples as f64;
        let warm = (warm_total as f64 / samples as f64).max(1.0);
        group.record_metric(BenchmarkId::new("plan_phase_cold_ns", scale), cold, "ns");
        group.record_metric(BenchmarkId::new("plan_phase_warm_ns", scale), warm, "ns");
        group.record_metric(
            BenchmarkId::new("plan_warm_speedup", scale),
            cold / warm,
            "x",
        );
    }
    group.finish();
}

fn bench_selective_self_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_selective_self_join");
    group.sample_size(10);
    // Books sharing a price with a cheap (< 20) book: a self-join where the
    // pushed filter shrinks one side dramatically.
    let rule = RuleBuilder::new()
        .extract(
            Q::elem("book")
                .var("b1")
                .child(Q::elem("price").child(Q::text().var("p1"))),
        )
        .extract(
            Q::elem("book")
                .var("b2")
                .child(Q::elem("price").child(Q::text().var("p2").pred(CmpOp::Lt, "20"))),
        )
        .join("p1", "p2")
        .construct(C::elem("answer").child(C::all("b1")))
        .build()
        .unwrap();
    let plan = translate::extract_to_plan(&rule).expect("self-join plans");
    let fast = algebra::optimize(&plan);
    let slow = algebra::deoptimize(&plan);
    for scale in [200usize, 800] {
        let doc = Dataset::Bibliography.build(scale);
        // Correctness guard once per size.
        assert_eq!(
            algebra::execute(&fast, &doc).expect("runs").len(),
            algebra::execute(&slow, &doc).expect("runs").len()
        );
        group.bench_with_input(BenchmarkId::new("optimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&fast, doc).expect("plan runs"))
        });
        group.bench_with_input(BenchmarkId::new("deoptimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&slow, doc).expect("plan runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_q6,
    bench_selective_self_join,
    bench_plan_cache
);
criterion_main!(benches);
