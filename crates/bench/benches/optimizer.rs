//! Experiment T5 / design-choice D2: optimized (hash join, pushed filters)
//! vs deoptimized (nested loops, hoisted filters) algebra plans, including
//! a low-selectivity self-join where pushdown pays most, plus the matcher
//! side of the same story: declaration-order root joins vs the
//! summary-inferred combine order from `gql-infer`.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite::Dataset;
use gql_bench::{criterion_group, criterion_main};
use gql_core::{algebra, translate};
use gql_guard::Guard;
use gql_ssdm::{DocIndex, Summary};
use gql_trace::Trace;
use gql_xmlgl::ast::CmpOp;
use gql_xmlgl::builder::{RuleBuilder, C, Q};
use gql_xmlgl::eval::{match_rule_guarded, match_rule_planned, MatchMode};

fn bench_q6(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_q6_join_plans");
    group.sample_size(10);
    let program = gql_xmlgl::dsl::parse(
        r#"rule { extract {
                    product as $p { vendor { text as $v1 } }
                    vendor as $w { country { text = "holland" }
                                   name { text as $v2 } }
                    join $v1 == $v2 }
                  construct { answer { all $p } } }"#,
    )
    .expect("Q6 parses");
    let plan = translate::extract_to_plan(&program.rules[0]).expect("Q6 plans");
    let fast = algebra::optimize(&plan);
    let slow = algebra::deoptimize(&plan);
    for scale in [200usize, 800, 3200] {
        let doc = Dataset::Greengrocer.build(scale);
        group.bench_with_input(BenchmarkId::new("optimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&fast, doc).expect("plan runs"))
        });
        group.bench_with_input(BenchmarkId::new("deoptimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&slow, doc).expect("plan runs"))
        });

        // Matcher-level counterpart: Q6's declaration order combines the
        // bulky `product` root first; the summary-inferred plan starts from
        // the country-filtered `vendor` root instead. Results are
        // guaranteed identical — only intermediate join sizes differ.
        let rule = &program.rules[0];
        let idx = DocIndex::build(&doc);
        let summary = Summary::from_index(&doc, &idx);
        let inference = gql_infer::infer_xmlgl(&program, &summary);
        let order = gql_infer::plan_root_order(rule, &inference.root_bounds[0])
            .expect("Q6 has a reorderable multi-root extract");
        assert_ne!(order, vec![0, 1], "plan must actually reorder Q6");
        let (trace, guard) = (Trace::disabled(), Guard::unlimited());
        let declared = match_rule_guarded(
            rule,
            &doc,
            Some(&idx),
            MatchMode::Sequential,
            &trace,
            &guard,
        );
        let planned = match_rule_planned(
            rule,
            &doc,
            Some(&idx),
            MatchMode::Sequential,
            &trace,
            &guard,
            &order,
        );
        assert_eq!(declared, planned, "plans must not change results");
        group.bench_with_input(BenchmarkId::new("declared-order", scale), &doc, |b, doc| {
            b.iter(|| {
                match_rule_guarded(rule, doc, Some(&idx), MatchMode::Sequential, &trace, &guard)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("summary-planned", scale),
            &doc,
            |b, doc| {
                b.iter(|| {
                    match_rule_planned(
                        rule,
                        doc,
                        Some(&idx),
                        MatchMode::Sequential,
                        &trace,
                        &guard,
                        &order,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_selective_self_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_selective_self_join");
    group.sample_size(10);
    // Books sharing a price with a cheap (< 20) book: a self-join where the
    // pushed filter shrinks one side dramatically.
    let rule = RuleBuilder::new()
        .extract(
            Q::elem("book")
                .var("b1")
                .child(Q::elem("price").child(Q::text().var("p1"))),
        )
        .extract(
            Q::elem("book")
                .var("b2")
                .child(Q::elem("price").child(Q::text().var("p2").pred(CmpOp::Lt, "20"))),
        )
        .join("p1", "p2")
        .construct(C::elem("answer").child(C::all("b1")))
        .build()
        .unwrap();
    let plan = translate::extract_to_plan(&rule).expect("self-join plans");
    let fast = algebra::optimize(&plan);
    let slow = algebra::deoptimize(&plan);
    for scale in [200usize, 800] {
        let doc = Dataset::Bibliography.build(scale);
        // Correctness guard once per size.
        assert_eq!(
            algebra::execute(&fast, &doc).expect("runs").len(),
            algebra::execute(&slow, &doc).expect("runs").len()
        );
        group.bench_with_input(BenchmarkId::new("optimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&fast, doc).expect("plan runs"))
        });
        group.bench_with_input(BenchmarkId::new("deoptimized", scale), &doc, |b, doc| {
            b.iter(|| algebra::execute(&slow, doc).expect("plan runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q6, bench_selective_self_join);
criterion_main!(benches);
