//! Tracing overhead on the hottest measured path: the indexed join.
//!
//! The tracing layer promises to be free when disabled — every probe is one
//! `Option` branch. This bench holds the promise to a number on the same
//! workload the `indexed` bench measures (the two-root deep-equal join over
//! the archive-padded catalog): it times the join matcher
//!
//! * through the public path (internally `Trace::disabled()` — the
//!   production configuration), and
//! * through a trace wired to a *no-op collector* (every probe fires, the
//!   sink discards everything — the worst case a user can configure),
//!
//! and records the ratio (`overhead/noop_ratio`, for trend-watching). The
//! asserted figure is a *derived* bound immune to run-to-run noise: the
//! number of probe events one traced join fires (counted exactly with a
//! counting collector) times the measured cost of a disabled probe must
//! stay under 2% of the join's run time. `GQL_BENCH_SAMPLES` scales effort
//! as usual.

use std::any::Any;

use gql_bench::microbench::Criterion;
use gql_bench::{criterion_group, criterion_main};
use gql_ssdm::{DocIndex, Document};
use gql_trace::{Collector, Trace};
use gql_xmlgl::builder::{RuleBuilder, C, Q};
use gql_xmlgl::eval::{match_rule_traced, match_rule_with, MatchMode};

/// Same shape as the `indexed` bench's dataset: a selective join plus a
/// filler section only scans pay for.
fn dataset(scale: usize) -> Document {
    let mut doc = Document::new();
    let root = doc.add_element(doc.root(), "catalog");
    let products = doc.add_element(root, "products");
    for i in 0..scale {
        let p = doc.add_element(products, "product");
        let v = doc.add_element(p, "vendor");
        if i < 8 {
            doc.add_text(v, &format!("v{i}"));
        } else {
            doc.add_text(v, &format!("u{i}"));
        }
    }
    let directory = doc.add_element(root, "directory");
    for i in 0..8 {
        let v = doc.add_element(directory, "vendor");
        doc.add_text(v, &format!("v{i}"));
    }
    doc
}

fn join_rule() -> gql_xmlgl::ast::Rule {
    RuleBuilder::new()
        .extract(
            Q::elem("product")
                .var("p")
                .child(Q::elem("vendor").var("a")),
        )
        .extract(Q::elem("directory").child(Q::elem("vendor").var("b")))
        .join("a", "b")
        .construct(C::elem("out"))
        .build()
        .expect("rule builds")
}

/// Discards every event: measures probe cost without sink cost.
struct NoopCollector;

impl Collector for NoopCollector {
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Counts events: measures how many probes one traced join run fires.
struct CountingCollector {
    events: u64,
}

impl Collector for CountingCollector {
    fn span_start(&mut self, _name: &str) -> usize {
        self.events += 1;
        0
    }
    fn span_end(&mut self, _token: usize, _elapsed: std::time::Duration) {
        self.events += 1;
    }
    fn count(&mut self, _name: &str, _delta: u64) {
        self.events += 1;
    }
    fn note(&mut self, _name: &str, _value: &str) {
        self.events += 1;
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let scale = 600;
    let doc = dataset(scale);
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let mut group = c.benchmark_group("overhead");
    group.sample_size(30);

    let disabled = group.bench_function("join_indexed/disabled", |b| {
        b.iter(|| match_rule_with(&rule, &doc, &idx, MatchMode::Auto))
    });
    let noop = group.bench_function("join_indexed/noop_collector", |b| {
        b.iter(|| {
            let trace = Trace::with_collector(Box::new(NoopCollector));
            match_rule_traced(&rule, &doc, &idx, MatchMode::Auto, &trace)
        })
    });

    let ratio = disabled.as_secs_f64() / noop.as_secs_f64().max(f64::MIN_POSITIVE);
    group.record_metric(
        "noop_ratio",
        noop.as_secs_f64() / disabled.as_secs_f64(),
        "x",
    );

    // Direct <2% bound. A disabled probe is one branch; its cost times the
    // number of probe *sites fired* per run bounds what instrumentation
    // can possibly add to the production (disabled) configuration. Count
    // the firings with a counting collector, measure the per-probe cost of
    // the disabled handle, and compare the product against the join time.
    let trace = Trace::with_collector(Box::new(CountingCollector { events: 0 }));
    match_rule_traced(&rule, &doc, &idx, MatchMode::Auto, &trace);
    let events = trace
        .into_collector()
        .expect("enabled trace")
        .into_any()
        .downcast::<CountingCollector>()
        .expect("counting collector")
        .events;
    // Batch 1024 probes per timed iteration so the figure stays meaningful
    // even under `GQL_BENCH_SAMPLES=1` (a single probe is below timer
    // resolution).
    const PROBE_BATCH: u32 = 1024;
    let probe = group.bench_function("disabled_probe_x1024", |b| {
        let t = Trace::disabled();
        b.iter(|| {
            for _ in 0..PROBE_BATCH {
                let _s = t.span("x");
                t.count("c", 1);
            }
        })
    }) / PROBE_BATCH;
    let derived = probe.as_secs_f64() * events as f64;
    let derived_pct = 100.0 * derived / disabled.as_secs_f64();
    group.record_metric("probe_events_per_run", events as f64, "events");
    group.record_metric("derived_overhead_pct", derived_pct, "%");
    group.finish();

    // The zero-cost-when-disabled claim: the derived bound must stay under
    // 2% of the join run. (The measured disabled-vs-noop ratio is recorded
    // but not asserted — the two runs do nearly identical work, so wall-
    // clock noise between them regularly exceeds the margin under test;
    // the derived bound is immune to that and regresses exactly when a
    // probe starts doing real work while disabled.)
    let _ = ratio;
    assert!(
        derived_pct < 2.0,
        "disabled-probe overhead bound is {derived_pct:.2}% of the indexed join \
         ({events} probe events × {probe:?}/probe vs {disabled:?}/run)"
    );
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
