//! Guard (resource-governance) overhead on the hottest measured path: the
//! indexed join.
//!
//! The guard layer makes the same promise the trace layer does — free when
//! disabled: every probe on `Guard::unlimited()` is one `Option`
//! discriminant branch. This bench holds that promise to a number on the
//! same workload the `indexed` and `overhead` benches measure (the
//! selective vendor join over the archive-padded catalog):
//!
//! * the ungoverned matcher path (`match_rule_with` — the production
//!   configuration before governance existed),
//! * the governed path with the disabled guard (`match_rule_guarded` +
//!   `Guard::unlimited()` — the production configuration today), and
//! * the governed path with an *enabled but unlimited* guard
//!   (`Guard::new(Budget::unlimited())` — every probe counts, nothing
//!   trips — the worst case a user can configure without tripping).
//!
//! The asserted figure mirrors `overhead.rs`: a *derived* bound immune to
//! run-to-run noise. The number of guard probes one governed join fires
//! (read exactly from the enabled guard's probe counter) times the
//! measured cost of a disabled probe must stay under 2% of the join's run
//! time. `GQL_BENCH_SAMPLES` scales effort as usual.

use gql_bench::microbench::Criterion;
use gql_bench::{criterion_group, criterion_main};
use gql_guard::{Budget, Guard};
use gql_ssdm::{DocIndex, Document};
use gql_trace::Trace;
use gql_xmlgl::builder::{RuleBuilder, C, Q};
use gql_xmlgl::eval::{match_rule_guarded, match_rule_with, MatchMode};

/// Same shape as the `indexed` / `overhead` bench dataset: a selective
/// join plus a filler section only scans pay for.
fn dataset(scale: usize) -> Document {
    let mut doc = Document::new();
    let root = doc.add_element(doc.root(), "catalog");
    let products = doc.add_element(root, "products");
    for i in 0..scale {
        let p = doc.add_element(products, "product");
        let v = doc.add_element(p, "vendor");
        if i < 8 {
            doc.add_text(v, &format!("v{i}"));
        } else {
            doc.add_text(v, &format!("u{i}"));
        }
    }
    let directory = doc.add_element(root, "directory");
    for i in 0..8 {
        let v = doc.add_element(directory, "vendor");
        doc.add_text(v, &format!("v{i}"));
    }
    doc
}

fn join_rule() -> gql_xmlgl::ast::Rule {
    RuleBuilder::new()
        .extract(
            Q::elem("product")
                .var("p")
                .child(Q::elem("vendor").var("a")),
        )
        .extract(Q::elem("directory").child(Q::elem("vendor").var("b")))
        .join("a", "b")
        .construct(C::elem("out"))
        .build()
        .expect("rule builds")
}

fn bench_guard_overhead(c: &mut Criterion) {
    let scale = 600;
    let doc = dataset(scale);
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let mut group = c.benchmark_group("guard");
    group.sample_size(30);

    let ungoverned = group.bench_function("join_indexed/ungoverned", |b| {
        b.iter(|| match_rule_with(&rule, &doc, &idx, MatchMode::Auto))
    });
    let disabled = group.bench_function("join_indexed/disabled_guard", |b| {
        let trace = Trace::disabled();
        let guard = Guard::unlimited();
        b.iter(|| match_rule_guarded(&rule, &doc, Some(&idx), MatchMode::Auto, &trace, &guard))
    });
    let enabled = group.bench_function("join_indexed/unlimited_enabled_guard", |b| {
        let trace = Trace::disabled();
        b.iter(|| {
            let guard = Guard::new(Budget::unlimited());
            match_rule_guarded(&rule, &doc, Some(&idx), MatchMode::Auto, &trace, &guard)
        })
    });
    group.record_metric(
        "disabled_ratio",
        disabled.as_secs_f64() / ungoverned.as_secs_f64().max(f64::MIN_POSITIVE),
        "x",
    );
    group.record_metric(
        "enabled_ratio",
        enabled.as_secs_f64() / ungoverned.as_secs_f64().max(f64::MIN_POSITIVE),
        "x",
    );

    // Count the probes one governed join fires — exactly, from the enabled
    // guard's own counter rather than an estimate.
    let counting = Guard::new(Budget::unlimited());
    match_rule_guarded(
        &rule,
        &doc,
        Some(&idx),
        MatchMode::Auto,
        &Trace::disabled(),
        &counting,
    );
    let probes_per_run = counting.probes();
    assert!(
        probes_per_run > 0,
        "the governed join fired no guard probes — the probe sites are gone"
    );

    // Measure the disabled-probe cost. Batch 1024 probes per timed
    // iteration so the figure stays meaningful even under
    // `GQL_BENCH_SAMPLES=1` (a single branch is below timer resolution).
    // The body fires one `ok()` and one `charge_matches()` — the two probe
    // shapes the hot paths use — and divides by the batch size only, so
    // the derived per-probe cost is a conservative 2× overcount.
    const PROBE_BATCH: u32 = 1024;
    let probe = group.bench_function("disabled_probe_x1024", |b| {
        let g = Guard::unlimited();
        b.iter(|| {
            let mut alive = 0u32;
            for _ in 0..PROBE_BATCH {
                if g.ok() && g.charge_matches(1) {
                    alive += 1;
                }
            }
            alive
        })
    }) / PROBE_BATCH;
    let derived = probe.as_secs_f64() * probes_per_run as f64;
    let derived_pct = 100.0 * derived / ungoverned.as_secs_f64().max(f64::MIN_POSITIVE);
    group.record_metric("probes_per_run", probes_per_run as f64, "probes");
    group.record_metric("derived_overhead_pct", derived_pct, "%");
    group.finish();

    // The zero-cost-when-disabled claim: the derived bound must stay under
    // 2% of the ungoverned join run. (The measured disabled-vs-ungoverned
    // wall-clock ratio is recorded but not asserted — the two runs do
    // nearly identical work, so noise between them regularly exceeds the
    // margin under test; the derived bound is immune to that and regresses
    // exactly when a probe starts doing real work while disabled.)
    assert!(
        derived_pct < 2.0,
        "disabled-probe guard overhead bound is {derived_pct:.2}% of the indexed join \
         ({probes_per_run} probes × {probe:?}/probe vs {ungoverned:?}/run)"
    );
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
