//! Indexed vs. scan evaluation: the [`gql_ssdm::DocIndex`] fast path.
//!
//! The dataset grows a large `archive` filler section around small,
//! fixed-rate join sections, so whole-document scans pay O(document) per
//! extract root while postings lookups pay O(matches). Three comparisons,
//! per document scale:
//!
//! * **root matching** — candidates for a named extract root from tag
//!   postings vs. a full-document walk;
//! * **join keys** — a two-root node-valued join through memoized 64-bit
//!   structural hashes vs. per-row canonical strings (the scan baseline
//!   also pays scan-side candidate enumeration: it is the whole unindexed
//!   path, which is what the resident-index configuration replaces);
//! * **parallel matching** — forced `MatchMode::Parallel` over the same
//!   index.
//!
//! The `join_speedup` metric (scan mean / indexed mean) is the acceptance
//! figure recorded in `BENCH_results.json`.

use gql_bench::microbench::{BenchmarkId, Criterion, Throughput};
use gql_bench::{criterion_group, criterion_main};
use gql_ssdm::{DocIndex, Document};
use gql_xmlgl::builder::{RuleBuilder, C, Q};
use gql_xmlgl::eval::{match_rule_scan, match_rule_with, MatchMode};

/// `scale` products (each `<product><vendor>…</vendor></product>`, the
/// first eight of which match a directory vendor by deep-equal `<vendor>`
/// subtree), eight directory vendors, and `50 * scale` filler entries that
/// only the scan path has to look at. The join is selective (eight result
/// rows at every scale) so the measured difference is candidate
/// enumeration and key computation, not shared result construction.
fn dataset(scale: usize) -> Document {
    let mut doc = Document::new();
    let root = doc.add_element(doc.root(), "catalog");
    let products = doc.add_element(root, "products");
    for i in 0..scale {
        let p = doc.add_element(products, "product");
        let v = doc.add_element(p, "vendor");
        if i < 8 {
            doc.add_text(v, &format!("v{i}"));
        } else {
            doc.add_text(v, &format!("u{i}"));
        }
    }
    let directory = doc.add_element(root, "directory");
    for i in 0..8 {
        let v = doc.add_element(directory, "vendor");
        doc.add_text(v, &format!("v{i}"));
    }
    let archive = doc.add_element(root, "archive");
    for i in 0..scale * 50 {
        let e = doc.add_element(archive, "entry");
        doc.add_text(e, &format!("x{i}"));
    }
    doc
}

/// Single named root: `product` elements.
fn root_rule() -> gql_xmlgl::ast::Rule {
    RuleBuilder::new()
        .extract(Q::elem("product").var("p"))
        .construct(C::elem("out"))
        .build()
        .expect("rule builds")
}

/// Named-root join on deep-equal `<vendor>` subtrees across two roots.
fn join_rule() -> gql_xmlgl::ast::Rule {
    RuleBuilder::new()
        .extract(
            Q::elem("product")
                .var("p")
                .child(Q::elem("vendor").var("a")),
        )
        .extract(Q::elem("directory").child(Q::elem("vendor").var("b")))
        .join("a", "b")
        .construct(C::elem("out"))
        .build()
        .expect("rule builds")
}

fn bench_indexed_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_fastpath");
    group.sample_size(10);
    let root = root_rule();
    let join = join_rule();
    for scale in [100usize, 400, 1600] {
        let doc = dataset(scale);
        let idx = DocIndex::build(&doc);
        group.throughput(Throughput::Elements(doc.live_node_count() as u64));

        // Sanity: both paths agree before being timed against each other.
        assert_eq!(
            match_rule_with(&join, &doc, &idx, MatchMode::Auto),
            match_rule_scan(&join, &doc)
        );

        group.bench_with_input(BenchmarkId::new("index_build", scale), &doc, |b, doc| {
            b.iter(|| DocIndex::build(doc))
        });
        group.bench_with_input(BenchmarkId::new("root_scan", scale), &doc, |b, doc| {
            b.iter(|| match_rule_scan(&root, doc))
        });
        group.bench_with_input(BenchmarkId::new("root_indexed", scale), &doc, |b, doc| {
            b.iter(|| match_rule_with(&root, doc, &idx, MatchMode::Sequential))
        });
        let scan = group.bench_with_input(
            BenchmarkId::new("join_scan_string", scale),
            &doc,
            |b, doc| b.iter(|| match_rule_scan(&join, doc)),
        );
        let indexed = group.bench_with_input(
            BenchmarkId::new("join_indexed_hashed", scale),
            &doc,
            |b, doc| b.iter(|| match_rule_with(&join, doc, &idx, MatchMode::Sequential)),
        );
        group.bench_with_input(
            BenchmarkId::new("join_indexed_parallel", scale),
            &doc,
            |b, doc| b.iter(|| match_rule_with(&join, doc, &idx, MatchMode::Parallel)),
        );
        let ratio = scan.as_nanos() as f64 / indexed.as_nanos().max(1) as f64;
        group.record_metric(BenchmarkId::new("join_speedup", scale), ratio, "x");
    }
    group.finish();
}

criterion_group!(benches, bench_indexed_fastpath);
criterion_main!(benches);
