//! Experiments F1/F2/F4 + Q2: the worked-figure queries under each engine.

use gql_bench::microbench::{BenchmarkId, Criterion};
use gql_bench::suite::Dataset;
use gql_bench::{criterion_group, criterion_main};
use gql_core::{Engine, QueryKind};

fn bench_figure_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_queries");
    group.sample_size(20);

    // F1 — WG-Log: restaurants offering menus.
    let doc = Dataset::CityGuide.build(300);
    let f1 = gql_wglog::dsl::parse(
        "rule { query { $r: restaurant  $m: menu  $r -menu-> $m }
                construct { $l: rest-list  $l -member-> $r } } goal rest-list",
    )
    .expect("F1 parses");
    let db = gql_wglog::instance::Instance::from_document(&doc);
    group.bench_function("F1_wglog_cityguide300", |b| {
        b.iter(|| gql_wglog::eval::run(&f1, &db).expect("F1 runs"))
    });

    // F2 — XML-GL: recent books.
    let bib = Dataset::Bibliography.build(300);
    let f2 = gql_xmlgl::dsl::parse(
        r#"rule { extract { book as $b { @year as $y >= "2000" } }
                  construct { result { all $b } } }"#,
    )
    .expect("F2 parses");
    group.bench_function("F2_xmlgl_bibliography300", |b| {
        b.iter(|| gql_xmlgl::run(&f2, &bib).expect("F2 runs"))
    });

    // F4 — XML-GL projection query.
    let f4 = gql_xmlgl::dsl::parse(
        r#"rule { extract { person as $p { firstname { text as $f }
                                           lastname { text as $l } fulladdr } }
                  construct { result { entry { first { copy $f } last { copy $l } } } } }"#,
    )
    .expect("F4 parses");
    group.bench_function("F4_xmlgl_bibliography300", |b| {
        b.iter(|| gql_xmlgl::run(&f4, &bib).expect("F4 runs"))
    });
    group.finish();
}

fn bench_q2_three_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_three_engines");
    group.sample_size(20);
    let q = gql_bench::suite::queries()
        .into_iter()
        .find(|q| q.id == "Q2")
        .expect("Q2");
    let doc = q.dataset.build(500);
    let mut engine = Engine::new();
    engine.preload(&doc);
    for (label, query) in q.engine_queries() {
        group.bench_with_input(BenchmarkId::new("engine", label), &query, |b, query| {
            b.iter(|| engine.run(query, &doc).expect("Q2 runs"))
        });
    }
    // Also the raw load cost WG-Log pays in a one-shot setting.
    group.bench_function("wglog_instance_load", |b| {
        b.iter(|| gql_wglog::instance::Instance::from_document(&doc))
    });
    let _ = QueryKind::XPath(String::new());
    group.finish();
}

criterion_group!(benches, bench_figure_queries, bench_q2_three_engines);
criterion_main!(benches);
