//! Experiment T3: engine scaling with document size on selection,
//! conjunctive and negation query classes. Also exercises the arena-store
//! design choice (D1): document build + scan cost at each scale.

use gql_bench::microbench::{BenchmarkId, Criterion, Throughput};
use gql_bench::suite;
use gql_bench::{criterion_group, criterion_main};
use gql_core::Engine;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_scaling");
    group.sample_size(10);
    for id in ["Q1", "Q3", "Q5"] {
        let q = suite::queries()
            .into_iter()
            .find(|q| q.id == id)
            .expect("suite query");
        for scale in [100usize, 400, 1600] {
            let doc = q.dataset.build(scale);
            let mut engine = Engine::new();
            engine.preload(&doc);
            group.throughput(Throughput::Elements(doc.live_node_count() as u64));
            for (label, query) in q.engine_queries() {
                group.bench_with_input(
                    BenchmarkId::new(format!("{id}_{label}"), scale),
                    &query,
                    |b, query| b.iter(|| engine.run(query, &doc).expect("query runs")),
                );
            }
        }
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1_arena_substrate");
    group.sample_size(10);
    for scale in [400usize, 1600] {
        let doc = suite::Dataset::CityGuide.build(scale);
        let xml = doc.to_xml_string();
        group.bench_with_input(BenchmarkId::new("parse", scale), &xml, |b, xml| {
            b.iter(|| gql_ssdm::Document::parse_str(xml).expect("parses"))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", scale), &doc, |b, doc| {
            b.iter(|| doc.descendants(doc.root()).count())
        });
        group.bench_with_input(BenchmarkId::new("serialize", scale), &doc, |b, doc| {
            b.iter(|| doc.to_xml_string())
        });
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_streaming_vs_dom");
    group.sample_size(10);
    let path = "/cityguide/restaurant/menu/price";
    for scale in [400usize, 1600] {
        let doc = suite::Dataset::CityGuide.build(scale);
        let xml = doc.to_xml_string();
        let compiled = gql_ssdm::stream::StreamPath::parse(path).expect("parses");
        group.bench_with_input(BenchmarkId::new("stream", scale), &xml, |b, xml| {
            b.iter(|| compiled.run(xml).expect("runs"))
        });
        let expr = gql_xpath::parse(path).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("dom_parse_and_eval", scale),
            &xml,
            |b, xml| {
                b.iter(|| {
                    let d = gql_ssdm::Document::parse_str(xml).expect("parses");
                    gql_xpath::evaluate(&d, &expr).expect("runs")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dom_eval_only", scale), &doc, |b, doc| {
            b.iter(|| gql_xpath::evaluate(doc, &expr).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_substrate, bench_streaming);
criterion_main!(benches);
