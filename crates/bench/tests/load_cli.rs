//! CLI failure-mode contract for `gql-serve-load --addr`: an unreachable
//! server is an immediate, explicit failure (single connect probe, clear
//! message, nonzero exit) — the retrying client must never get a chance
//! to grind through its backoff schedule against a dead address.

#![cfg(not(miri))]

use std::process::Command;
use std::time::{Duration, Instant};

/// Port 1 is reserved (tcpmux) and nothing in CI listens on it: connects
/// are refused immediately, which is exactly the failure mode under test.
const DEAD_ADDR: &str = "127.0.0.1:1";

#[test]
fn remote_load_against_unreachable_server_fails_fast_with_a_clear_message() {
    let start = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_gql-serve-load"))
        .args(["--addr", DEAD_ADDR, "--requests", "5"])
        .output()
        .expect("spawn gql-serve-load");
    let elapsed = start.elapsed();
    assert!(
        !out.status.success(),
        "load driver exited 0 against a dead address"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot connect") && stderr.contains(DEAD_ADDR),
        "diagnostic should name the failure and the address, got: {stderr}"
    );
    // The probe connect is refused in milliseconds and there is no retry
    // loop in front of it; allow generous CI slack.
    assert!(
        elapsed < Duration::from_secs(10),
        "load driver took {elapsed:?} to report a refused connect"
    );
    // Nothing should have been printed as a (misleading) summary line.
    assert!(
        out.stdout.is_empty(),
        "no summary should print on probe failure, got: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn unresolvable_host_fails_with_a_resolve_diagnostic() {
    let out = Command::new(env!("CARGO_BIN_EXE_gql-serve-load"))
        .args(["--addr", "no-such-host.invalid:7878"])
        .output()
        .expect("spawn gql-serve-load");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot resolve") || stderr.contains("cannot connect"),
        "got: {stderr}"
    );
}

#[test]
fn bad_flag_prints_usage_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_gql-serve-load"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn gql-serve-load");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "got: {stderr}");
}
