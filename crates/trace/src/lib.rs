//! # gql-trace — structured execution tracing and engine metrics
//!
//! A lightweight, dependency-free span-tree + typed-counter layer that every
//! engine in the workspace reports through. The design goals, in order:
//!
//! 1. **Zero cost when disabled.** The engine-facing handle is [`Trace`],
//!    which is an `Option` around a collector: [`Trace::disabled()`] holds
//!    `None`, so every operation is one branch and no allocation. Engines
//!    thread a `&Trace` unconditionally; hot loops additionally aggregate
//!    into plain integers and report once per coarse phase (per root, per
//!    join, per fixpoint round, per XPath step), never per candidate.
//! 2. **One model for all three engines.** A trace is a tree of *spans*
//!    (named, wall-clock-timed phases) carrying *counters* (named `u64`
//!    accumulators) and *notes* (named string facts such as
//!    `path=indexed`). The span taxonomy per engine is documented in
//!    DESIGN.md and treated as a stable surface.
//! 3. **Deterministic shape.** Counters and notes must be derived from the
//!    query/data alone, never from timing; [`ExecutionProfile::shape`]
//!    renders the tree without durations, and the testkit asserts that two
//!    runs of the same case produce identical shapes.
//!
//! The sink behind an enabled [`Trace`] is anything implementing
//! [`Collector`]; the default [`TreeCollector`] builds the span tree that
//! [`Trace::finish`] converts into an [`ExecutionProfile`] (renderable as an
//! aligned text tree or machine-readable JSON — see [`profile`]).
//!
//! ```
//! use gql_trace::Trace;
//!
//! let trace = Trace::profiling();
//! {
//!     let _eval = trace.span("eval");
//!     {
//!         let _m = trace.span("match");
//!         trace.count("candidates", 42);
//!         trace.note("path", "indexed");
//!     }
//!     trace.count("bindings", 7);
//! }
//! let profile = trace.finish().expect("profiling collector");
//! let eval = &profile.roots[0];
//! assert_eq!(eval.name, "eval");
//! assert_eq!(eval.counter("bindings"), Some(7));
//! assert_eq!(eval.children[0].counter("candidates"), Some(42));
//! ```

pub mod profile;

use std::any::Any;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use profile::{ExecutionProfile, ProfileNode};

/// A sink for trace events. Implementations receive span boundaries,
/// counter increments and notes; the default [`TreeCollector`] assembles
/// them into a span tree, but tests and tools can plug in anything (e.g. a
/// call-counting collector). Every method has a no-op default, so the unit
/// struct `struct Ignore; impl Collector for Ignore {}` (plus `into_any`)
/// is a valid collector.
pub trait Collector: Send {
    /// A span opens. Returns a token passed back to [`Collector::span_end`].
    fn span_start(&mut self, name: &str) -> usize {
        let _ = name;
        0
    }

    /// The span identified by `token` closes after `elapsed`.
    fn span_end(&mut self, token: usize, elapsed: Duration) {
        let _ = (token, elapsed);
    }

    /// Add `delta` to the named counter on the innermost open span.
    fn count(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Attach a string fact to the innermost open span.
    fn note(&mut self, name: &str, value: &str) {
        let _ = (name, value);
    }

    /// Downcast support so [`Trace::finish`] can recover a
    /// [`TreeCollector`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// One recorded span while the tree is under construction.
#[derive(Debug, Default)]
struct SpanRec {
    name: String,
    nanos: u128,
    counters: Vec<(String, u64)>,
    notes: Vec<(String, String)>,
    children: Vec<usize>,
}

/// The default collector: builds the span tree [`Trace::finish`] snapshots
/// into an [`ExecutionProfile`].
#[derive(Debug, Default)]
pub struct TreeCollector {
    spans: Vec<SpanRec>,
    stack: Vec<usize>,
    roots: Vec<usize>,
    /// Counters/notes reported outside any span (kept so nothing is lost;
    /// surfaced as a synthetic `(toplevel)` root if non-empty).
    loose_counters: Vec<(String, u64)>,
    loose_notes: Vec<(String, String)>,
}

impl TreeCollector {
    pub fn new() -> TreeCollector {
        TreeCollector::default()
    }

    fn add_to(list: &mut Vec<(String, u64)>, name: &str, delta: u64) {
        match list.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => list.push((name.to_string(), delta)),
        }
    }

    fn note_to(list: &mut Vec<(String, String)>, name: &str, value: &str) {
        match list.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => {
                *v = value.to_string();
            }
            None => list.push((name.to_string(), value.to_string())),
        }
    }

    fn build_node(&self, id: usize) -> ProfileNode {
        let rec = &self.spans[id];
        ProfileNode {
            name: rec.name.clone(),
            nanos: rec.nanos,
            counters: rec.counters.clone(),
            notes: rec.notes.clone(),
            children: rec.children.iter().map(|&c| self.build_node(c)).collect(),
        }
    }

    /// Snapshot the (finished) tree into a profile. Spans still open are
    /// included with the duration recorded so far (zero if never closed).
    pub fn into_profile(self) -> ExecutionProfile {
        let mut roots: Vec<ProfileNode> = self.roots.iter().map(|&r| self.build_node(r)).collect();
        if !self.loose_counters.is_empty() || !self.loose_notes.is_empty() {
            roots.push(ProfileNode {
                name: "(toplevel)".to_string(),
                nanos: 0,
                counters: self.loose_counters.clone(),
                notes: self.loose_notes.clone(),
                children: Vec::new(),
            });
        }
        ExecutionProfile { roots }
    }
}

impl Collector for TreeCollector {
    fn span_start(&mut self, name: &str) -> usize {
        let id = self.spans.len();
        self.spans.push(SpanRec {
            name: name.to_string(),
            ..SpanRec::default()
        });
        match self.stack.last() {
            Some(&parent) => self.spans[parent].children.push(id),
            None => self.roots.push(id),
        }
        self.stack.push(id);
        id
    }

    fn span_end(&mut self, token: usize, elapsed: Duration) {
        // Defensive: pop until the matching span is closed, so a leaked
        // guard cannot corrupt deeper nesting.
        while let Some(top) = self.stack.pop() {
            if top == token {
                self.spans[top].nanos = elapsed.as_nanos();
                return;
            }
        }
    }

    fn count(&mut self, name: &str, delta: u64) {
        match self.stack.last() {
            Some(&top) => Self::add_to(&mut self.spans[top].counters, name, delta),
            None => Self::add_to(&mut self.loose_counters, name, delta),
        }
    }

    fn note(&mut self, name: &str, value: &str) {
        match self.stack.last() {
            Some(&top) => Self::note_to(&mut self.spans[top].notes, name, value),
            None => Self::note_to(&mut self.loose_notes, name, value),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The engine-facing tracing handle. Cheap to construct in both states;
/// engines accept `&Trace` unconditionally and the disabled state turns
/// every operation into a single branch.
///
/// Enabled traces are `Sync` (the collector sits behind a mutex), but the
/// intended usage keeps trace calls on the coordinating thread — parallel
/// workers aggregate into locals that the coordinator records after
/// joining, which also keeps profiles deterministic.
pub struct Trace {
    collector: Option<Mutex<Box<dyn Collector>>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// The no-op handle: every operation is one branch, no allocation.
    pub const fn disabled() -> Trace {
        Trace { collector: None }
    }

    /// A tracing handle backed by the default [`TreeCollector`];
    /// [`Trace::finish`] recovers the profile.
    pub fn profiling() -> Trace {
        Trace::with_collector(Box::new(TreeCollector::new()))
    }

    /// A tracing handle backed by a custom collector.
    pub fn with_collector(collector: Box<dyn Collector>) -> Trace {
        Trace {
            collector: Some(Mutex::new(collector)),
        }
    }

    /// Is anything listening? Callers building expensive span names (e.g.
    /// `format!`-ed per-round labels) should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Open a span; it closes (and records its wall-clock duration) when
    /// the returned guard drops.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        match &self.collector {
            None => SpanGuard {
                trace: self,
                open: None,
            },
            Some(m) => {
                let token = m.lock().expect("trace collector poisoned").span_start(name);
                SpanGuard {
                    trace: self,
                    open: Some((token, Instant::now())),
                }
            }
        }
    }

    /// Add `delta` to the named counter on the innermost open span.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(m) = &self.collector {
            m.lock()
                .expect("trace collector poisoned")
                .count(name, delta);
        }
    }

    /// Attach a string fact (`path=indexed`, `cache=hit`) to the innermost
    /// open span. Re-noting a name overwrites its value.
    #[inline]
    pub fn note(&self, name: &str, value: &str) {
        if let Some(m) = &self.collector {
            m.lock()
                .expect("trace collector poisoned")
                .note(name, value);
        }
    }

    /// Consume the handle; `Some` when it was backed by the default
    /// [`TreeCollector`] (i.e. constructed by [`Trace::profiling`]).
    pub fn finish(self) -> Option<ExecutionProfile> {
        self.into_collector()?
            .into_any()
            .downcast::<TreeCollector>()
            .ok()
            .map(|t| t.into_profile())
    }

    /// Consume the handle and recover the collector it was constructed
    /// with, whatever its type — the custom-collector counterpart of
    /// [`Trace::finish`]. `None` for a disabled handle.
    pub fn into_collector(self) -> Option<Box<dyn Collector>> {
        Some(
            self.collector?
                .into_inner()
                .expect("trace collector poisoned"),
        )
    }
}

/// RAII guard returned by [`Trace::span`]; closes the span on drop.
#[must_use = "a span lasts as long as its guard; dropping immediately records an empty span"]
pub struct SpanGuard<'t> {
    trace: &'t Trace,
    open: Option<(usize, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some((token, started)), Some(m)) = (self.open.take(), &self.trace.collector) {
            m.lock()
                .expect("trace collector poisoned")
                .span_end(token, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("anything");
            t.count("c", 1);
            t.note("n", "v");
        }
        assert!(t.finish().is_none());
    }

    #[test]
    fn span_nesting_and_counters_are_exact() {
        let t = Trace::profiling();
        {
            let _run = t.span("run");
            {
                let _m = t.span("match");
                t.count("candidates", 10);
                t.count("candidates", 5);
                t.note("path", "scan");
                t.note("path", "indexed"); // overwrite
            }
            {
                let _c = t.span("construct");
                t.count("nodes", 3);
            }
            t.count("rules", 1);
        }
        let p = t.finish().unwrap();
        assert_eq!(p.roots.len(), 1);
        let run = &p.roots[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.counter("rules"), Some(1));
        assert_eq!(run.children.len(), 2);
        assert_eq!(run.children[0].name, "match");
        assert_eq!(run.children[0].counter("candidates"), Some(15));
        assert_eq!(run.children[0].note("path"), Some("indexed"));
        assert_eq!(run.children[1].counter("nodes"), Some(3));
    }

    #[test]
    fn sibling_spans_and_multiple_roots() {
        let t = Trace::profiling();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
            {
                let _c = t.span("c");
            }
        }
        let p = t.finish().unwrap();
        assert_eq!(
            p.roots.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(p.roots[1].children[0].name, "c");
    }

    #[test]
    fn counters_outside_spans_survive_as_toplevel() {
        let t = Trace::profiling();
        t.count("loose", 2);
        let p = t.finish().unwrap();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].name, "(toplevel)");
        assert_eq!(p.roots[0].counter("loose"), Some(2));
    }

    #[test]
    fn custom_collectors_receive_every_event() {
        #[derive(Default)]
        struct Counting {
            spans: usize,
            ends: usize,
            counts: u64,
            notes: usize,
        }
        impl Collector for Counting {
            fn span_start(&mut self, _n: &str) -> usize {
                self.spans += 1;
                self.spans
            }
            fn span_end(&mut self, _t: usize, _e: Duration) {
                self.ends += 1;
            }
            fn count(&mut self, _n: &str, d: u64) {
                self.counts += d;
            }
            fn note(&mut self, _n: &str, _v: &str) {
                self.notes += 1;
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let t = Trace::with_collector(Box::<Counting>::default());
        {
            let _s = t.span("x");
            t.count("c", 4);
            t.note("n", "v");
        }
        // finish() on a non-tree collector yields no profile…
        assert!(t.is_enabled());
        assert!(t.finish().is_none());
    }

    #[test]
    fn leaked_guard_order_is_defended() {
        // Dropping guards out of order (possible via mem::forget games or
        // explicit drop) must not corrupt the tree.
        let t = Trace::profiling();
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // closes a AND pops b from the stack defensively
        {
            let _c = t.span("c");
        }
        drop(b); // late close of an already-popped span is a no-op
        let p = t.finish().unwrap();
        assert_eq!(p.roots.len(), 2);
        assert_eq!(p.roots[0].name, "a");
        assert_eq!(p.roots[0].children[0].name, "b");
        assert_eq!(p.roots[1].name, "c");
    }
}
