//! Execution profiles: the immutable snapshot of a finished trace, plus the
//! three renderings every tool in the workspace consumes — an aligned text
//! tree (EXPLAIN-style, for humans), hand-rolled JSON (machine-readable, no
//! external dependencies), and a duration-free *shape* (for determinism
//! oracles: two runs of the same case must produce identical shapes even
//! though wall-clock timings differ).

/// A finished trace: the forest of top-level spans recorded by a
/// [`crate::TreeCollector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProfile {
    pub roots: Vec<ProfileNode>,
}

/// One span in a finished profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    pub name: String,
    /// Wall-clock duration in nanoseconds (0 for spans never closed).
    pub nanos: u128,
    /// Counter accumulations, in first-report order.
    pub counters: Vec<(String, u64)>,
    /// String facts, in first-report order; re-noting overwrites in place.
    pub notes: Vec<(String, String)>,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Value of the named counter, if reported on this span.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the named note, if reported on this span.
    pub fn note(&self, name: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All descendants (including self, preorder) with `name`.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a ProfileNode>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }
}

impl ExecutionProfile {
    /// Depth-first search across all roots.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// All spans named `name`, preorder across roots.
    pub fn find_all(&self, name: &str) -> Vec<&ProfileNode> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.find_all(name, &mut out);
        }
        out
    }

    /// Aligned text tree, EXPLAIN-style:
    ///
    /// ```text
    /// run ........................... 1.23ms  engine=xmlgl
    ///   analyze ..................... 0.10ms
    ///   index ....................... 0.40ms  elements=120  cache=miss
    ///   eval ........................ 0.70ms
    ///     rule[0] ................... 0.69ms  bindings=4
    /// ```
    pub fn to_text(&self) -> String {
        // First pass: compute the label width so the duration column aligns.
        fn width(node: &ProfileNode, depth: usize, max: &mut usize) {
            *max = (*max).max(depth * 2 + node.name.len());
            for c in &node.children {
                width(c, depth + 1, max);
            }
        }
        let mut label_w = 0;
        for r in &self.roots {
            width(r, 0, &mut label_w);
        }
        // Room for at least a few leader dots.
        let col = label_w + 4;

        fn emit(node: &ProfileNode, depth: usize, col: usize, out: &mut String) {
            let indent = depth * 2;
            out.push_str(&" ".repeat(indent));
            out.push_str(&node.name);
            let used = indent + node.name.len();
            out.push(' ');
            for _ in used + 1..col {
                out.push('.');
            }
            out.push(' ');
            out.push_str(&format_nanos(node.nanos));
            for (k, v) in &node.counters {
                out.push_str("  ");
                out.push_str(k);
                out.push('=');
                out.push_str(&v.to_string());
            }
            for (k, v) in &node.notes {
                out.push_str("  ");
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('\n');
            for c in &node.children {
                emit(c, depth + 1, col, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            emit(r, 0, col, &mut out);
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; the workspace takes no external
    /// dependencies). Shape:
    ///
    /// ```json
    /// {"spans":[{"name":"run","nanos":123,"counters":{"rules":1},
    ///            "notes":{"engine":"xmlgl"},"children":[...]}]}
    /// ```
    pub fn to_json(&self) -> String {
        fn node(n: &ProfileNode, out: &mut String) {
            out.push_str("{\"name\":");
            json_string(&n.name, out);
            out.push_str(",\"nanos\":");
            out.push_str(&n.nanos.to_string());
            out.push_str(",\"counters\":{");
            for (i, (k, v)) in n.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(k, out);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push_str("},\"notes\":{");
            for (i, (k, v)) in n.notes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(k, out);
                out.push(':');
                json_string(v, out);
            }
            out.push_str("},\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node(c, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("{\"spans\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node(r, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Duration-free rendering: structure, counters and notes only. Two
    /// runs of the same query on the same document must produce identical
    /// shapes — this is what the testkit determinism oracle compares.
    pub fn shape(&self) -> String {
        fn emit(node: &ProfileNode, depth: usize, out: &mut String) {
            out.push_str(&" ".repeat(depth * 2));
            out.push_str(&node.name);
            for (k, v) in &node.counters {
                out.push_str(&format!(" {k}={v}"));
            }
            for (k, v) in &node.notes {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for c in &node.children {
                emit(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            emit(r, 0, &mut out);
        }
        out
    }
}

/// Human-scaled duration: ns under 10µs, µs under 10ms, ms otherwise.
fn format_nanos(nanos: u128) -> String {
    if nanos < 10_000 {
        format!("{nanos}ns")
    } else if nanos < 10_000_000 {
        format!("{}.{:02}us", nanos / 1_000, (nanos % 1_000) / 10)
    } else {
        format!(
            "{}.{:02}ms",
            nanos / 1_000_000,
            (nanos % 1_000_000) / 10_000
        )
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionProfile {
        ExecutionProfile {
            roots: vec![ProfileNode {
                name: "run".into(),
                nanos: 1_234_567,
                counters: vec![("rules".into(), 1)],
                notes: vec![("engine".into(), "xmlgl".into())],
                children: vec![ProfileNode {
                    name: "eval".into(),
                    nanos: 987_654,
                    counters: vec![("bindings".into(), 4)],
                    notes: vec![],
                    children: vec![],
                }],
            }],
        }
    }

    #[test]
    fn text_tree_aligns_and_indents() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("run "));
        assert!(lines[1].starts_with("  eval "));
        assert!(lines[0].contains("rules=1"));
        assert!(lines[0].contains("engine=xmlgl"));
        // Duration column is aligned: both duration fields start at the
        // same character offset (after the dot leaders).
        let col0 = lines[0].find(". ").unwrap();
        let col1 = lines[1].find(". ").unwrap();
        assert_eq!(col0, col1);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"spans\":["));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"counters\":{\"rules\":1}"));
        assert!(json.contains("\"notes\":{\"engine\":\"xmlgl\"}"));
        assert!(json.contains("\"name\":\"eval\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_special_characters() {
        let p = ExecutionProfile {
            roots: vec![ProfileNode {
                name: "a\"b\\c\n".into(),
                nanos: 0,
                counters: vec![],
                notes: vec![("k".into(), "tab\there".into())],
                children: vec![],
            }],
        };
        let json = p.to_json();
        assert!(json.contains("a\\\"b\\\\c\\n"));
        assert!(json.contains("tab\\there"));
    }

    #[test]
    fn shape_omits_durations() {
        let shape = sample().shape();
        assert_eq!(shape, "run rules=1 engine=xmlgl\n  eval bindings=4\n");
        // Same structure with different timings → identical shape.
        let mut other = sample();
        other.roots[0].nanos = 1;
        other.roots[0].children[0].nanos = 99_999;
        assert_eq!(other.shape(), shape);
    }

    #[test]
    fn find_walks_the_tree() {
        let p = sample();
        assert_eq!(p.find("eval").unwrap().counter("bindings"), Some(4));
        assert!(p.find("missing").is_none());
        assert_eq!(p.find_all("eval").len(), 1);
    }

    #[test]
    fn format_nanos_scales() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(12_345), "12.34us");
        assert_eq!(format_nanos(12_345_678), "12.34ms");
    }
}
