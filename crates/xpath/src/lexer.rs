//! Tokenizer for XPath expressions.

use crate::{Result, XPathError};

/// One XPath token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Element/function/axis name (NCName, possibly with embedded `-`/`.`).
    Name(String),
    /// String literal (quotes stripped).
    Literal(String),
    /// Numeric literal.
    Number(f64),
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    Star,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Pipe,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `::` axis separator.
    ColonColon,
}

impl Token {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Name(n) => format!("name '{n}'"),
            Token::Literal(s) => format!("literal \"{s}\""),
            Token::Number(n) => format!("number {n}"),
            Token::Slash => "'/'".into(),
            Token::DoubleSlash => "'//'".into(),
            Token::Dot => "'.'".into(),
            Token::DotDot => "'..'".into(),
            Token::At => "'@'".into(),
            Token::Star => "'*'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::Comma => "','".into(),
            Token::Pipe => "'|'".into(),
            Token::Plus => "'+'".into(),
            Token::Minus => "'-'".into(),
            Token::Eq => "'='".into(),
            Token::Ne => "'!='".into(),
            Token::Lt => "'<'".into(),
            Token::Le => "'<='".into(),
            Token::Gt => "'>'".into(),
            Token::Ge => "'>='".into(),
            Token::ColonColon => "'::'".into(),
        }
    }
}

/// Collects tokens stamped with the start offset of the lexeme currently
/// being read.
struct TokenSink<'a> {
    out: &'a mut Vec<(Token, usize)>,
    start: usize,
}

impl TokenSink<'_> {
    fn push(&mut self, t: Token) {
        self.out.push((t, self.start));
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenize an XPath expression.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(input)?
        .into_iter()
        .map(|(t, _)| t)
        .collect())
}

/// Tokenize, pairing every token with the character offset it starts at, so
/// the parser can report span-carrying diagnostics. (Offsets count `char`s,
/// matching the offsets in [`XPathError::Lex`].)
pub fn tokenize_spanned(input: &str) -> Result<Vec<(Token, usize)>> {
    let chars: Vec<char> = input.chars().collect();
    let mut spanned = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        let mut toks = TokenSink {
            out: &mut spanned,
            start,
        };
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    toks.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    toks.push(Token::Slash);
                    i += 1;
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    toks.push(Token::DotDot);
                    i += 2;
                } else if chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    // .5 style number
                    let (n, len) = lex_number(&chars[i..]).ok_or_else(|| XPathError::Lex {
                        offset: i,
                        msg: "bad number".into(),
                    })?;
                    toks.push(Token::Number(n));
                    i += len;
                } else {
                    toks.push(Token::Dot);
                    i += 1;
                }
            }
            '@' => {
                toks.push(Token::At);
                i += 1;
            }
            '*' => {
                toks.push(Token::Star);
                i += 1;
            }
            '[' => {
                toks.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            '|' => {
                toks.push(Token::Pipe);
                i += 1;
            }
            '+' => {
                toks.push(Token::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Token::Minus);
                i += 1;
            }
            '=' => {
                toks.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(XPathError::Lex {
                        offset: i,
                        msg: "lone '!'".into(),
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Token::Le);
                    i += 2;
                } else {
                    toks.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Token::Ge);
                    i += 2;
                } else {
                    toks.push(Token::Gt);
                    i += 1;
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    toks.push(Token::ColonColon);
                    i += 2;
                } else {
                    return Err(XPathError::Lex {
                        offset: i,
                        msg: "namespaces are not supported (lone ':')".into(),
                    });
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(XPathError::Lex {
                        offset: i,
                        msg: "unterminated literal".into(),
                    });
                }
                toks.push(Token::Literal(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (n, len) = lex_number(&chars[i..]).ok_or_else(|| XPathError::Lex {
                    offset: i,
                    msg: "bad number".into(),
                })?;
                toks.push(Token::Number(n));
                i += len;
            }
            c if is_name_start(c) => {
                let start = i;
                while i < chars.len() && is_name_char(chars[i]) {
                    i += 1;
                }
                // Names must not swallow a trailing '.' that is actually a
                // path dot — but XPath names can legitimately contain dots;
                // XPath 1.0 resolves this in favour of the name, which we
                // follow.
                toks.push(Token::Name(chars[start..i].iter().collect()));
            }
            other => {
                return Err(XPathError::Lex {
                    offset: i,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(spanned)
}

/// Lex digits [. digits]; returns (value, chars consumed).
fn lex_number(chars: &[char]) -> Option<(f64, usize)> {
    let mut j = 0;
    while j < chars.len() && chars[j].is_ascii_digit() {
        j += 1;
    }
    if j < chars.len() && chars[j] == '.' {
        j += 1;
        while j < chars.len() && chars[j].is_ascii_digit() {
            j += 1;
        }
    }
    if j == 0 {
        return None;
    }
    let s: String = chars[..j].iter().collect();
    s.parse::<f64>().ok().map(|n| (n, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_path() {
        let t = tokenize("/html/body//a").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Slash,
                Token::Name("html".into()),
                Token::Slash,
                Token::Name("body".into()),
                Token::DoubleSlash,
                Token::Name("a".into()),
            ]
        );
    }

    #[test]
    fn predicates_and_operators() {
        let t = tokenize("book[@year >= 1999 and price != 10.5]").unwrap();
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Name("and".into())));
        assert!(t.contains(&Token::Number(10.5)));
    }

    #[test]
    fn literals_both_quotes() {
        let t = tokenize("contains(., \"Xcerpt\") or . = 'y'").unwrap();
        assert!(t.contains(&Token::Literal("Xcerpt".into())));
        assert!(t.contains(&Token::Literal("y".into())));
    }

    #[test]
    fn dots_and_numbers() {
        assert_eq!(tokenize(".5").unwrap(), vec![Token::Number(0.5)]);
        assert_eq!(tokenize("..").unwrap(), vec![Token::DotDot]);
        assert_eq!(tokenize(".").unwrap(), vec![Token::Dot]);
        assert_eq!(tokenize("5.25").unwrap(), vec![Token::Number(5.25)]);
    }

    #[test]
    fn axis_separator() {
        let t = tokenize("ancestor-or-self::node()").unwrap();
        assert_eq!(t[0], Token::Name("ancestor-or-self".into()));
        assert_eq!(t[1], Token::ColonColon);
    }

    #[test]
    fn errors() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("ns:name").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(tokenize("a / b").unwrap(), tokenize("a/b").unwrap());
    }
}
