//! The XPath 1.0 core function library.

use gql_ssdm::Document;

use crate::eval::{string_value, Item, XValue};
use crate::{Result, XPathError};

fn arity_err(name: &str, expected: &str, got: usize) -> XPathError {
    XPathError::Eval {
        msg: format!("{name}() expects {expected} argument(s), got {got}"),
    }
}

/// Dispatch a function call. `item`/`position`/`size` carry the evaluation
/// context for the context-dependent functions; `caches` holds the
/// per-evaluation lazily built structures (the `id()` reference graph).
#[allow(clippy::too_many_arguments)]
pub(crate) fn call(
    name: &str,
    args: Vec<XValue>,
    doc: &Document,
    item: Item,
    position: usize,
    size: usize,
    caches: &crate::eval::EvalCaches<'_>,
) -> Result<XValue> {
    let argc = args.len();
    let mut args = args.into_iter();
    let mut next = || args.next().expect("arity checked before access");
    match (name, argc) {
        // Context.
        ("position", 0) => Ok(XValue::Num(position as f64)),
        ("last", 0) => Ok(XValue::Num(size as f64)),
        // Booleans.
        ("true", 0) => Ok(XValue::Bool(true)),
        ("false", 0) => Ok(XValue::Bool(false)),
        ("not", 1) => Ok(XValue::Bool(!next().boolean())),
        ("boolean", 1) => Ok(XValue::Bool(next().boolean())),
        // Node-sets.
        ("count", 1) => Ok(XValue::Num(next().into_nodes()?.len() as f64)),
        ("id", 1) => {
            // XPath id(): elements whose `id` attribute matches any token of
            // the argument (string value, or each node's value for sets).
            let arg = next();
            let mut tokens: Vec<String> = Vec::new();
            match &arg {
                XValue::Nodes(ns) => {
                    for &n in ns {
                        tokens.extend(string_value(doc, n).split_whitespace().map(str::to_string));
                    }
                }
                other => tokens.extend(other.string(doc).split_whitespace().map(str::to_string)),
            }
            let refs = caches.refs(doc);
            let mut hits: Vec<Item> = tokens
                .iter()
                .filter_map(|t| refs.node_by_id(t))
                .map(Item::Node)
                .collect();
            // Document order, no duplicates.
            hits.sort_by_key(|i| match i {
                Item::Node(n) => doc.order_key(*n),
                Item::Attr { owner, .. } => doc.order_key(*owner),
            });
            hits.dedup();
            Ok(XValue::Nodes(hits))
        }
        ("sum", 1) => {
            let ns = next().into_nodes()?;
            let total: f64 = ns
                .iter()
                .map(|&n| gql_ssdm::value::parse_number(&string_value(doc, n)).unwrap_or(f64::NAN))
                .sum();
            Ok(XValue::Num(total))
        }
        ("name", 0) | ("local-name", 0) => Ok(XValue::Str(item_name(doc, item))),
        ("name", 1) | ("local-name", 1) => {
            let ns = next().into_nodes()?;
            Ok(XValue::Str(
                ns.first().map_or(String::new(), |&n| item_name(doc, n)),
            ))
        }
        // Strings.
        ("string", 0) => Ok(XValue::Str(string_value(doc, item))),
        ("string", 1) => Ok(XValue::Str(next().string(doc))),
        ("concat", n) if n >= 2 => {
            let mut out = String::new();
            for a in args {
                out.push_str(&a.string(doc));
            }
            Ok(XValue::Str(out))
        }
        ("contains", 2) => {
            let hay = next().string(doc);
            let needle = next().string(doc);
            Ok(XValue::Bool(hay.contains(&needle)))
        }
        ("starts-with", 2) => {
            let hay = next().string(doc);
            let prefix = next().string(doc);
            Ok(XValue::Bool(hay.starts_with(&prefix)))
        }
        ("string-length", 0) => Ok(XValue::Num(string_value(doc, item).chars().count() as f64)),
        ("string-length", 1) => Ok(XValue::Num(next().string(doc).chars().count() as f64)),
        ("normalize-space", 0 | 1) => {
            let s = if argc == 1 {
                next().string(doc)
            } else {
                string_value(doc, item)
            };
            Ok(XValue::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        ("substring-before", 2) => {
            let hay = next().string(doc);
            let sep = next().string(doc);
            Ok(XValue::Str(
                hay.split_once(&sep)
                    .map_or(String::new(), |(a, _)| a.to_string()),
            ))
        }
        ("substring-after", 2) => {
            let hay = next().string(doc);
            let sep = next().string(doc);
            Ok(XValue::Str(
                hay.split_once(&sep)
                    .map_or(String::new(), |(_, b)| b.to_string()),
            ))
        }
        ("substring", 2 | 3) => {
            let s = next().string(doc);
            let start = next().number(doc);
            let len = if argc == 3 {
                next().number(doc)
            } else {
                f64::INFINITY
            };
            Ok(XValue::Str(xpath_substring(&s, start, len)))
        }
        ("translate", 3) => {
            let s = next().string(doc);
            let from: Vec<char> = next().string(doc).chars().collect();
            let to: Vec<char> = next().string(doc).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    None => Some(c),
                    Some(i) => to.get(i).copied(),
                })
                .collect();
            Ok(XValue::Str(out))
        }
        // Numbers.
        ("number", 0) => Ok(XValue::Num(
            gql_ssdm::value::parse_number(&string_value(doc, item)).unwrap_or(f64::NAN),
        )),
        ("number", 1) => Ok(XValue::Num(next().number(doc))),
        ("floor", 1) => Ok(XValue::Num(next().number(doc).floor())),
        ("ceiling", 1) => Ok(XValue::Num(next().number(doc).ceil())),
        ("round", 1) => {
            let n = next().number(doc);
            // XPath rounds half towards +infinity.
            Ok(XValue::Num((n + 0.5).floor()))
        }
        // Arity errors for known names; unknown otherwise.
        (
            "position" | "last" | "true" | "false" | "not" | "boolean" | "count" | "sum" | "id"
            | "string" | "concat" | "contains" | "starts-with" | "string-length"
            | "normalize-space" | "substring-before" | "substring-after" | "substring"
            | "translate" | "number" | "floor" | "ceiling" | "round" | "name" | "local-name",
            got,
        ) => Err(arity_err(name, "a different number of", got)),
        _ => Err(XPathError::Eval {
            msg: format!("unknown function '{name}'"),
        }),
    }
}

fn item_name(doc: &Document, item: Item) -> String {
    match item {
        Item::Node(n) => doc.name(n).unwrap_or("").to_string(),
        Item::Attr { owner, index } => doc
            .attrs(owner)
            .nth(index)
            .map(|(n, _)| n.to_string())
            .unwrap_or_default(),
    }
}

/// XPath `substring` semantics: 1-based, rounded endpoints, NaN-safe.
fn xpath_substring(s: &str, start: f64, len: f64) -> String {
    if start.is_nan() || len.is_nan() {
        return String::new();
    }
    let round = |x: f64| (x + 0.5).floor();
    let begin = round(start);
    let end = if len.is_infinite() {
        f64::INFINITY
    } else {
        begin + round(len)
    };
    s.chars()
        .enumerate()
        .filter(|(i, _)| {
            let pos = (*i + 1) as f64;
            pos >= begin && pos < end
        })
        .map(|(_, c)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse;

    fn eval_str(xpath: &str) -> XValue {
        let d = Document::parse_str("<r a='v'>hello world</r>").unwrap();
        evaluate(&d, &parse(xpath).unwrap()).unwrap()
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_str("concat('a','b','c')"), XValue::Str("abc".into()));
        assert_eq!(eval_str("contains('banana','ana')"), XValue::Bool(true));
        assert_eq!(eval_str("starts-with('banana','ban')"), XValue::Bool(true));
        assert_eq!(eval_str("string-length('héllo')"), XValue::Num(5.0));
        assert_eq!(
            eval_str("normalize-space('  a   b ')"),
            XValue::Str("a b".into())
        );
        assert_eq!(
            eval_str("substring-before('12:34',':')"),
            XValue::Str("12".into())
        );
        assert_eq!(
            eval_str("substring-after('12:34',':')"),
            XValue::Str("34".into())
        );
        assert_eq!(
            eval_str("translate('bar','abc','ABC')"),
            XValue::Str("BAr".into())
        );
        assert_eq!(
            eval_str("translate('--x--','-','')"),
            XValue::Str("x".into())
        );
    }

    #[test]
    fn substring_spec_cases() {
        // Cases straight from the XPath 1.0 recommendation.
        assert_eq!(
            eval_str("substring('12345', 2, 3)"),
            XValue::Str("234".into())
        );
        assert_eq!(
            eval_str("substring('12345', 1.5, 2.6)"),
            XValue::Str("234".into())
        );
        assert_eq!(
            eval_str("substring('12345', 0, 3)"),
            XValue::Str("12".into())
        );
        assert_eq!(
            eval_str("substring('12345', 2)"),
            XValue::Str("2345".into())
        );
    }

    #[test]
    fn number_functions() {
        assert_eq!(eval_str("floor(2.7)"), XValue::Num(2.0));
        assert_eq!(eval_str("ceiling(2.1)"), XValue::Num(3.0));
        assert_eq!(eval_str("round(2.5)"), XValue::Num(3.0));
        assert_eq!(eval_str("round(-2.5)"), XValue::Num(-2.0)); // half toward +inf
        assert_eq!(eval_str("number('12')"), XValue::Num(12.0));
    }

    #[test]
    fn boolean_functions() {
        assert_eq!(eval_str("not(false())"), XValue::Bool(true));
        assert_eq!(eval_str("boolean('x')"), XValue::Bool(true));
        assert_eq!(eval_str("boolean('')"), XValue::Bool(false));
    }

    #[test]
    fn name_functions() {
        let d = Document::parse_str("<r><child attr='1'/></r>").unwrap();
        let v = evaluate(&d, &parse("name(//child)").unwrap()).unwrap();
        assert_eq!(v, XValue::Str("child".into()));
        let v = evaluate(&d, &parse("name(//child/@attr)").unwrap()).unwrap();
        assert_eq!(v, XValue::Str("attr".into()));
        let v = evaluate(&d, &parse("name(//nothing)").unwrap()).unwrap();
        assert_eq!(v, XValue::Str("".into()));
    }

    #[test]
    fn id_function() {
        let d = Document::parse_str(
            "<db><n id='a'><v>1</v></n><n id='b'><v>2</v></n><ptr refs='b a'/></db>",
        )
        .unwrap();
        let v = evaluate(&d, &parse("count(id('a b'))").unwrap()).unwrap();
        assert_eq!(v, XValue::Num(2.0));
        // Document order regardless of token order.
        let v = evaluate(&d, &parse("string(id('b a')/v)").unwrap()).unwrap();
        assert_eq!(v, XValue::Str("1".into()));
        // Node-set argument: tokens from each node's string value.
        let v = evaluate(&d, &parse("count(id(//ptr/@refs))").unwrap()).unwrap();
        assert_eq!(v, XValue::Num(2.0));
        // Unknown ids vanish.
        let v = evaluate(&d, &parse("count(id('zz'))").unwrap()).unwrap();
        assert_eq!(v, XValue::Num(0.0));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            eval_err("frobnicate()"),
            XPathError::Eval { msg } if msg.contains("unknown function")
        ));
        assert!(matches!(
            eval_err("count()"),
            XPathError::Eval { msg } if msg.contains("argument")
        ));
        assert!(matches!(
            eval_err("count('notanodeset')"),
            XPathError::Eval { msg } if msg.contains("node-set")
        ));
    }

    fn eval_err(xpath: &str) -> XPathError {
        let d = Document::parse_str("<r/>").unwrap();
        evaluate(&d, &parse(xpath).unwrap()).unwrap_err()
    }
}
