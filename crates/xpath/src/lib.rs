//! # gql-xpath — navigational baseline engine
//!
//! An XPath 1.0 subset over the [`gql_ssdm`] store. The paper contrasts
//! *graphical, pattern-based* query languages with the *navigational* style
//! of the W3C stack; this crate is the navigational comparator used by the
//! benchmark harness (experiment **T3**) and a generally useful substrate.
//!
//! Supported: the `child`, `descendant`, `descendant-or-self`, `parent`,
//! `ancestor`, `ancestor-or-self`, `self`, `attribute`,
//! `following-sibling`, `preceding-sibling`, `following` and `preceding`
//! axes (plus all their abbreviations `/`, `//`, `.`, `..`, `@`); name,
//! `*`, `text()`, `comment()` and `node()` node tests; positional and
//! boolean predicates; the full 1.0 comparison/arithmetic semantics over
//! node-sets; unions; and the core function library.
//!
//! Not supported: variables, namespaces, `id()`/`lang()`, and the
//! `processing-instruction(name)` test.
//!
//! ```
//! use gql_ssdm::Document;
//!
//! let doc = Document::parse_str("<bib><book year='1999'><title>X</title></book></bib>").unwrap();
//! let hits = gql_xpath::select(&doc, "//book[@year > 1998]/title").unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod parser;

pub use ast::{Axis, Expr, LocationPath, NodeTest, Step};
pub use eval::{
    evaluate, evaluate_guarded, evaluate_scan_guarded, evaluate_traced, evaluate_with_index,
    select, select_with_index, Item, XValue,
};
pub use parser::parse;

/// Errors produced while parsing or evaluating an XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// Lexical error with character offset.
    Lex { offset: usize, msg: String },
    /// Syntax error with the character offset of the offending token (input
    /// length when the error is at end of input).
    Parse { offset: usize, msg: String },
    /// Runtime error (bad function arity, type misuse, …).
    Eval { msg: String },
    /// A resource budget tripped during evaluation (carries the partial
    /// progress report).
    Budget(gql_guard::GuardError),
}

impl std::fmt::Display for XPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XPathError::Lex { offset, msg } => write!(f, "lex error at offset {offset}: {msg}"),
            XPathError::Parse { offset, msg } => {
                write!(f, "parse error at offset {offset}: {msg}")
            }
            XPathError::Eval { msg } => write!(f, "evaluation error: {msg}"),
            XPathError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XPathError {}

pub type Result<T> = std::result::Result<T, XPathError>;
