//! Abstract syntax for the XPath subset.

use std::fmt;

/// Navigation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    SelfAxis,
    Attribute,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
}

impl Axis {
    /// Parse an axis name as written before `::`.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            _ => return None,
        })
    }

    /// Whether the axis enumerates in reverse document order (affects the
    /// meaning of positional predicates).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }
}

/// Node tests.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// Named element (or named attribute on the attribute axis).
    Name(String),
    /// `*`.
    Any,
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `node()`.
    Node,
}

/// One location step: `axis::test[pred]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

impl Step {
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// `true` when the path starts at the document node (`/…`).
    pub absolute: bool,
    pub steps: Vec<Step>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
        }
    }
}

/// XPath expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Path(LocationPath),
    Literal(String),
    Number(f64),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Union(Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    /// A parenthesised expression used as the start of a path with trailing
    /// steps: `(…)/step…` — kept explicit so evaluation can re-apply steps.
    FilterPath(Box<Expr>, Vec<Step>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Literal(s) => write!(f, "\"{s}\""),
            Expr::Number(n) => write!(f, "{}", gql_ssdm::value::format_number(*n)),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Union(a, b) => write!(f, "{a} | {b}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::FilterPath(e, steps) => {
                write!(f, "({e})")?;
                for s in steps {
                    write!(f, "/{}", StepDisplay(s))?;
                }
                Ok(())
            }
        }
    }
}

struct StepDisplay<'a>(&'a Step);

impl fmt::Display for StepDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        write!(f, "{}::", s.axis.name())?;
        match &s.test {
            NodeTest::Name(n) => write!(f, "{n}")?,
            NodeTest::Any => write!(f, "*")?,
            NodeTest::Text => write!(f, "text()")?,
            NodeTest::Comment => write!(f, "comment()")?,
            NodeTest::Node => write!(f, "node()")?,
        }
        for p in &s.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{}", StepDisplay(s))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_roundtrip() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::SelfAxis,
            Axis::Attribute,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
        ] {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("sideways"), None);
    }

    #[test]
    fn reverse_axes() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::Preceding.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Following.is_reverse());
    }

    #[test]
    fn display_path() {
        let p = LocationPath {
            absolute: true,
            steps: vec![
                Step::new(Axis::Child, NodeTest::Name("bib".into())),
                Step {
                    axis: Axis::Descendant,
                    test: NodeTest::Name("book".into()),
                    predicates: vec![Expr::Number(1.0)],
                },
            ],
        };
        assert_eq!(p.to_string(), "/child::bib/descendant::book[1]");
    }
}
