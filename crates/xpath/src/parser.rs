//! Recursive-descent parser for the XPath subset, following the XPath 1.0
//! grammar and its disambiguation rules (`*` and the operator names
//! `and`/`or`/`div`/`mod` are operators only where an operand just ended).

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::lexer::{tokenize_spanned, Token};
use crate::{Result, XPathError};

/// Parse an XPath expression.
pub fn parse(input: &str) -> Result<Expr> {
    let spanned = tokenize_spanned(input)?;
    let (tokens, offsets): (Vec<Token>, Vec<usize>) = spanned.into_iter().unzip();
    let mut p = Parser {
        tokens,
        offsets,
        end: input.chars().count(),
        pos: 0,
    };
    let expr = p.parse_or()?;
    if !p.eof() {
        return Err(p.err(format!("trailing input starting at {}", p.peek_describe())));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    /// Character offset each token starts at; parallel to `tokens`.
    offsets: Vec<usize>,
    /// Character length of the input, reported for errors at end of input.
    end: usize,
    pos: usize,
}

impl Parser {
    /// Offset of the token about to be consumed (input end at EOF).
    fn here(&self) -> usize {
        self.offsets.get(self.pos).copied().unwrap_or(self.end)
    }

    /// A parse error anchored at the current token. Errors raised after
    /// `bump` consumed the offending token pass `self.pos - 1`'s offset via
    /// [`Parser::err_before`] instead.
    fn err(&self, msg: impl Into<String>) -> XPathError {
        XPathError::Parse {
            offset: self.here(),
            msg: msg.into(),
        }
    }

    /// A parse error anchored at the most recently consumed token.
    fn err_before(&self, msg: impl Into<String>) -> XPathError {
        let offset = self
            .pos
            .checked_sub(1)
            .and_then(|p| self.offsets.get(p).copied())
            .unwrap_or(self.end);
        XPathError::Parse {
            offset,
            msg: msg.into(),
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn peek_describe(&self) -> String {
        self.peek().map_or("end of input".into(), Token::describe)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                t.describe(),
                self.peek_describe()
            )))
        }
    }

    /// Is the upcoming name token the given operator keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Name(n)) if n == kw)
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.at_keyword("or") {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.at_keyword("and") {
            self.bump();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Name(n)) if n == "div" => BinOp::Div,
                Some(Token::Name(n)) if n == "mod" => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_union()
        }
    }

    fn parse_union(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_path_expr()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.parse_path_expr()?;
            lhs = Expr::Union(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Does the next token begin a *filter* (non-location-path) primary?
    fn at_filter_primary(&self) -> bool {
        match self.peek() {
            Some(Token::LParen | Token::Literal(_) | Token::Number(_)) => true,
            Some(Token::Name(n)) => {
                // A name followed by '(' is a function call — unless it is a
                // node-type test, which belongs to a location path.
                self.peek2() == Some(&Token::LParen)
                    && !matches!(n.as_str(), "text" | "comment" | "node")
            }
            _ => false,
        }
    }

    fn parse_path_expr(&mut self) -> Result<Expr> {
        if self.at_filter_primary() {
            let primary = self.parse_primary()?;
            // Optional trailing steps: primary '/' relative-path.
            let mut steps = Vec::new();
            loop {
                if self.eat(&Token::DoubleSlash) {
                    steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
                    steps.push(self.parse_step()?);
                } else if self.eat(&Token::Slash) {
                    steps.push(self.parse_step()?);
                } else {
                    break;
                }
            }
            if steps.is_empty() {
                Ok(primary)
            } else {
                Ok(Expr::FilterPath(Box::new(primary), steps))
            }
        } else {
            Ok(Expr::Path(self.parse_location_path()?))
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::LParen) => {
                let e = self.parse_or()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Literal(s)) => Ok(Expr::Literal(s)),
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Name(name)) => {
                self.expect(&Token::LParen)?;
                let mut args = Vec::new();
                if !self.eat(&Token::RParen) {
                    loop {
                        args.push(self.parse_or()?);
                        if self.eat(&Token::RParen) {
                            break;
                        }
                        self.expect(&Token::Comma)?;
                    }
                }
                Ok(Expr::Call(name, args))
            }
            Some(other) => Err(self.err_before(format!(
                "expected a primary expression, found {}",
                other.describe()
            ))),
            None => Err(self.err("expected a primary expression, found end of input")),
        }
    }

    fn parse_location_path(&mut self) -> Result<LocationPath> {
        let mut steps = Vec::new();
        let absolute = if self.eat(&Token::DoubleSlash) {
            steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
            true
        } else if self.eat(&Token::Slash) {
            // Bare "/" selects the document node.
            if self.at_step_start() {
                // fallthrough to parse steps
            } else {
                return Ok(LocationPath {
                    absolute: true,
                    steps,
                });
            }
            true
        } else {
            false
        };
        steps.push(self.parse_step()?);
        loop {
            if self.eat(&Token::DoubleSlash) {
                steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
                steps.push(self.parse_step()?);
            } else if self.eat(&Token::Slash) {
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn at_step_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Name(_) | Token::Star | Token::At | Token::Dot | Token::DotDot)
        )
    }

    fn parse_step(&mut self) -> Result<Step> {
        if self.eat(&Token::Dot) {
            return Ok(Step::new(Axis::SelfAxis, NodeTest::Node));
        }
        if self.eat(&Token::DotDot) {
            return Ok(Step::new(Axis::Parent, NodeTest::Node));
        }
        let axis = if self.eat(&Token::At) {
            Axis::Attribute
        } else if let (Some(Token::Name(n)), Some(Token::ColonColon)) = (self.peek(), self.peek2())
        {
            let axis = Axis::from_name(n).ok_or_else(|| self.err(format!("unknown axis '{n}'")))?;
            self.bump();
            self.bump();
            axis
        } else {
            Axis::Child
        };
        let test = match self.bump() {
            Some(Token::Star) => NodeTest::Any,
            Some(Token::Name(n)) => {
                if self.peek() == Some(&Token::LParen) {
                    match n.as_str() {
                        "text" => {
                            self.bump();
                            self.expect(&Token::RParen)?;
                            NodeTest::Text
                        }
                        "comment" => {
                            self.bump();
                            self.expect(&Token::RParen)?;
                            NodeTest::Comment
                        }
                        "node" => {
                            self.bump();
                            self.expect(&Token::RParen)?;
                            NodeTest::Node
                        }
                        other => {
                            return Err(self.err_before(format!(
                                "function call '{other}(…)' cannot be a step"
                            )))
                        }
                    }
                } else {
                    NodeTest::Name(n)
                }
            }
            Some(other) => {
                return Err(
                    self.err_before(format!("expected a node test, found {}", other.describe()))
                )
            }
            None => return Err(self.err("expected a node test, found end of input")),
        };
        let mut step = Step::new(axis, test);
        while self.eat(&Token::LBracket) {
            let pred = self.parse_or()?;
            self.expect(&Token::RBracket)?;
            step.predicates.push(pred);
        }
        Ok(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(e: &Expr) -> &LocationPath {
        match e {
            Expr::Path(p) => p,
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn simple_absolute_path() {
        let e = parse("/bib/book").unwrap();
        let p = path(&e);
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].test, NodeTest::Name("bib".into()));
        assert_eq!(p.steps[1].axis, Axis::Child);
    }

    #[test]
    fn double_slash_expands() {
        let e = parse("//a").unwrap();
        let p = path(&e);
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::Node);
    }

    #[test]
    fn bare_root() {
        let e = parse("/").unwrap();
        assert!(path(&e).steps.is_empty());
    }

    #[test]
    fn abbreviations() {
        let e = parse("../@id").unwrap();
        let p = path(&e);
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn explicit_axes() {
        let e = parse("ancestor-or-self::book/following-sibling::*").unwrap();
        let p = path(&e);
        assert_eq!(p.steps[0].axis, Axis::AncestorOrSelf);
        assert_eq!(p.steps[1].axis, Axis::FollowingSibling);
        assert_eq!(p.steps[1].test, NodeTest::Any);
    }

    #[test]
    fn predicates_parse() {
        let e = parse("book[@year=1999][2]").unwrap();
        let p = path(&e);
        assert_eq!(p.steps[0].predicates.len(), 2);
        assert_eq!(p.steps[0].predicates[1], Expr::Number(2.0));
    }

    #[test]
    fn the_papers_example() {
        // The hyperlink query from the survey chapter.
        let e = parse(
            "/html/body//a[contains(./text(),\"Xcerpt\") and starts-with(./@href,\"http:\")]",
        )
        .unwrap();
        let p = path(&e);
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[3].predicates.len(), 1);
    }

    #[test]
    fn operator_precedence() {
        let e = parse("1 + 2 * 3 = 7 and true()").unwrap();
        match e {
            Expr::Binary(BinOp::And, lhs, _) => match *lhs {
                Expr::Binary(BinOp::Eq, add, _) => match *add {
                    Expr::Binary(BinOp::Add, _, mul) => {
                        assert!(matches!(*mul, Expr::Binary(BinOp::Mul, _, _)));
                    }
                    other => panic!("expected Add, got {other:?}"),
                },
                other => panic!("expected Eq, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn star_disambiguation() {
        // First * is a wildcard, second is multiplication, third a wildcard.
        let e = parse("count(*) * count(*)").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn div_and_mod_vs_element_names() {
        // Leading "div" is an element name; infix div is the operator.
        let e = parse("div div div").unwrap();
        match e {
            Expr::Binary(BinOp::Div, a, b) => {
                assert!(matches!(*a, Expr::Path(_)));
                assert!(matches!(*b, Expr::Path(_)));
            }
            other => panic!("expected Div, got {other:?}"),
        }
    }

    #[test]
    fn union_of_paths() {
        let e = parse("book | article | //note").unwrap();
        assert!(matches!(e, Expr::Union(_, _)));
    }

    #[test]
    fn function_calls() {
        let e = parse("concat('a', 'b', 'c')").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "concat");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected call, got {other:?}"),
        }
        assert!(matches!(parse("true()").unwrap(), Expr::Call(_, _)));
    }

    #[test]
    fn filter_path() {
        let e = parse("(//book)[1]/title").unwrap_err();
        // Predicates after parenthesised expressions are not in the subset;
        // ensure a clean error rather than a wrong parse.
        assert!(matches!(e, XPathError::Parse { .. }));
        let ok = parse("(//book)/title").unwrap();
        assert!(matches!(ok, Expr::FilterPath(_, _)));
    }

    #[test]
    fn negation() {
        let e = parse("--1").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "",
            "/bib/",
            "book[",
            "book]",
            "foo(",
            "child::",
            "unknown::x",
            "1 1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn node_type_tests() {
        let e = parse("text() | comment() | node()").unwrap();
        fn first_test(e: &Expr) -> &NodeTest {
            &path(e).steps[0].test
        }
        match &e {
            Expr::Union(ab, c) => {
                assert_eq!(first_test(c), &NodeTest::Node);
                match &**ab {
                    Expr::Union(a, b) => {
                        assert_eq!(first_test(a), &NodeTest::Text);
                        assert_eq!(first_test(b), &NodeTest::Comment);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for src in [
            "/bib/book[@year=1999]/title",
            "//a[contains(text(),'x')]",
            "count(//book) > 3 or false()",
            "book | article",
        ] {
            let e1 = parse(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse(&printed).unwrap_or_else(|err| panic!("reparse {printed}: {err}"));
            assert_eq!(e1, e2, "{src} → {printed}");
        }
    }
}
