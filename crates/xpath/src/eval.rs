//! Evaluation of XPath expressions over a [`Document`].

use std::cmp::Ordering;

use gql_guard::Guard;
use gql_ssdm::document::NodeKind;
use gql_ssdm::value::parse_number;
use gql_ssdm::{DocIndex, Document, NodeId};
use gql_trace::Trace;

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::functions;
use crate::{Result, XPathError};

/// A context item: an ordinary node or an attribute pseudo-node (the store
/// keeps attributes in side tables, not as arena nodes, so the attribute
/// axis materialises them as `(owner, index)` pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Item {
    Node(NodeId),
    Attr { owner: NodeId, index: usize },
}

impl Item {
    /// The underlying element node, for items that are nodes.
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Item::Node(n) => Some(n),
            Item::Attr { .. } => None,
        }
    }
}

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum XValue {
    /// Node-set in document order without duplicates.
    Nodes(Vec<Item>),
    Num(f64),
    Str(String),
    Bool(bool),
}

impl XValue {
    pub fn boolean(&self) -> bool {
        match self {
            XValue::Nodes(ns) => !ns.is_empty(),
            XValue::Num(n) => *n != 0.0 && !n.is_nan(),
            XValue::Str(s) => !s.is_empty(),
            XValue::Bool(b) => *b,
        }
    }

    pub fn number(&self, doc: &Document) -> f64 {
        match self {
            XValue::Nodes(_) => parse_number(&self.string(doc)).unwrap_or(f64::NAN),
            XValue::Num(n) => *n,
            XValue::Str(s) => parse_number(s).unwrap_or(f64::NAN),
            XValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    pub fn string(&self, doc: &Document) -> String {
        match self {
            XValue::Nodes(ns) => ns.first().map_or(String::new(), |&i| string_value(doc, i)),
            XValue::Num(n) => gql_ssdm::value::format_number(*n),
            XValue::Str(s) => s.clone(),
            XValue::Bool(b) => b.to_string(),
        }
    }

    /// The node-set, or an evaluation error for non-node values.
    pub fn into_nodes(self) -> Result<Vec<Item>> {
        match self {
            XValue::Nodes(ns) => Ok(ns),
            other => Err(XPathError::Eval {
                msg: format!("expected a node-set, got {other:?}"),
            }),
        }
    }
}

/// XPath string-value of an item.
pub fn string_value(doc: &Document, item: Item) -> String {
    match item {
        Item::Node(n) => match doc.kind(n) {
            NodeKind::Comment | NodeKind::Pi => doc.text(n).unwrap_or("").to_string(),
            _ => doc.text_content(n),
        },
        Item::Attr { owner, index } => doc
            .attrs(owner)
            .nth(index)
            .map(|(_, v)| v.to_string())
            .unwrap_or_default(),
    }
}

/// Document-order key: attributes sort right after their owning element and
/// before its children (approximated by a fractional second component).
fn order_key(doc: &Document, item: Item) -> (u32, u32) {
    match item {
        Item::Node(n) => (doc.order_key(n), 0),
        Item::Attr { owner, index } => (doc.order_key(owner), index as u32 + 1),
    }
}

fn sort_dedup(doc: &Document, items: &mut Vec<Item>) {
    items.sort_by_key(|&i| order_key(doc, i));
    items.dedup();
}

/// Where the per-evaluation [`DocIndex`] comes from: a caller-provided
/// prebuilt index (the `Engine`'s resident cache), or one built lazily the
/// first time an indexed fast path asks for it.
enum IndexSlot<'d> {
    Borrowed(&'d DocIndex),
    Lazy(Box<std::cell::OnceCell<DocIndex>>),
}

/// Per-evaluation caches (built lazily, shared across the expression tree).
pub(crate) struct EvalCaches<'d> {
    /// The ID/IDREF graph used by `id()`; extracting it scans the whole
    /// document, so it is built at most once per evaluation.
    refs: std::cell::OnceCell<gql_ssdm::idref::RefGraph>,
    /// Postings/interval index used for descendant name-test steps.
    idx: IndexSlot<'d>,
    /// Profiling sink, when the caller asked for one ([`evaluate_traced`]).
    trace: Option<&'d Trace>,
    /// Re-entrancy latch: predicates evaluate sub-paths through the same
    /// caches, and per-step spans for those would interleave confusingly
    /// with the outer path's spans. Only the outermost `apply_steps` call
    /// traces; predicate work shows up inside the enclosing step's span.
    in_steps: std::cell::Cell<bool>,
    /// Resource budget, when the caller asked for one
    /// ([`evaluate_guarded`]). `None` costs one branch per probe site.
    guard: Option<&'d Guard>,
    /// Scan-only mode: the index fast paths are disabled and no lazy index
    /// is ever built — the degradation target when an index build fails.
    no_index: bool,
}

impl Default for EvalCaches<'_> {
    fn default() -> Self {
        EvalCaches {
            refs: std::cell::OnceCell::new(),
            idx: IndexSlot::Lazy(Box::new(std::cell::OnceCell::new())),
            trace: None,
            in_steps: std::cell::Cell::new(false),
            guard: None,
            no_index: false,
        }
    }
}

impl<'d> EvalCaches<'d> {
    fn with_index(idx: &'d DocIndex) -> Self {
        EvalCaches {
            idx: IndexSlot::Borrowed(idx),
            ..EvalCaches::default()
        }
    }

    pub(crate) fn refs(&self, doc: &Document) -> &gql_ssdm::idref::RefGraph {
        self.refs
            .get_or_init(|| gql_ssdm::idref::RefGraph::extract(doc))
    }

    /// The document index: the borrowed one, or built at most once.
    fn index(&self, doc: &Document) -> &DocIndex {
        match &self.idx {
            IndexSlot::Borrowed(i) => i,
            IndexSlot::Lazy(cell) => cell.get_or_init(|| DocIndex::build(doc)),
        }
    }
}

/// Evaluation context.
#[derive(Clone, Copy)]
struct Ctx<'d> {
    doc: &'d Document,
    item: Item,
    position: usize,
    size: usize,
    caches: &'d EvalCaches<'d>,
}

/// Evaluate an expression with the document node as the context item.
pub fn evaluate(doc: &Document, expr: &Expr) -> Result<XValue> {
    eval_with_caches(doc, expr, &EvalCaches::default())
}

/// Evaluate against a prebuilt [`DocIndex`] for `doc`: descendant name-test
/// steps use its postings instead of building a fresh index. The result is
/// identical to [`evaluate`]'s.
pub fn evaluate_with_index(doc: &Document, expr: &Expr, idx: &DocIndex) -> Result<XValue> {
    eval_with_caches(doc, expr, &EvalCaches::with_index(idx))
}

/// Evaluate reporting into a [`Trace`]: one `step[i:axis::test]` span per
/// top-level location step (context sizes in and out, items drawn from
/// postings vs axis scans) and a `fusion_hits` counter for each fused
/// `//Name` pair. Sub-paths inside predicates are folded into their
/// enclosing step's span. With `Trace::disabled()` this is exactly
/// [`evaluate`] / [`evaluate_with_index`].
pub fn evaluate_traced(
    doc: &Document,
    expr: &Expr,
    idx: Option<&DocIndex>,
    trace: &Trace,
) -> Result<XValue> {
    let mut caches = match idx {
        Some(idx) => EvalCaches::with_index(idx),
        None => EvalCaches::default(),
    };
    caches.trace = Some(trace);
    eval_with_caches(doc, expr, &caches)
}

/// [`evaluate_traced`] under a resource [`Guard`]: each top-level location
/// step charges one round plus its context size, and every context item
/// expansion inside a step charges its candidate count, so a pathological
/// path trips the budget with a partial-progress report instead of running
/// unbounded. With `Guard::unlimited()` this is exactly `evaluate_traced`.
pub fn evaluate_guarded(
    doc: &Document,
    expr: &Expr,
    idx: Option<&DocIndex>,
    trace: &Trace,
    guard: &Guard,
) -> Result<XValue> {
    let mut caches = match idx {
        Some(idx) => EvalCaches::with_index(idx),
        None => EvalCaches::default(),
    };
    caches.trace = Some(trace);
    caches.guard = guard.is_enabled().then_some(guard);
    eval_with_caches(doc, expr, &caches)
}

/// [`evaluate_guarded`] in forced scan mode: the postings fast paths are
/// disabled and no lazy index is built. This is the degradation target the
/// engine falls back to when an index build fails or its integrity
/// verification rejects it; results are identical to the indexed path's.
pub fn evaluate_scan_guarded(
    doc: &Document,
    expr: &Expr,
    trace: &Trace,
    guard: &Guard,
) -> Result<XValue> {
    let caches = EvalCaches {
        trace: Some(trace),
        guard: guard.is_enabled().then_some(guard),
        no_index: true,
        ..Default::default()
    };
    eval_with_caches(doc, expr, &caches)
}

fn eval_with_caches<'d>(
    doc: &'d Document,
    expr: &Expr,
    caches: &'d EvalCaches<'d>,
) -> Result<XValue> {
    let ctx = Ctx {
        doc,
        item: Item::Node(doc.root()),
        position: 1,
        size: 1,
        caches,
    };
    eval_expr(expr, ctx)
}

/// Parse and evaluate, returning element/text nodes (attribute hits are
/// dropped). The common entry point for tests and benches.
pub fn select(doc: &Document, xpath: &str) -> Result<Vec<NodeId>> {
    let expr = crate::parser::parse(xpath)?;
    let value = evaluate(doc, &expr)?;
    Ok(value
        .into_nodes()?
        .into_iter()
        .filter_map(Item::as_node)
        .collect())
}

/// [`select`] against a prebuilt index.
pub fn select_with_index(doc: &Document, xpath: &str, idx: &DocIndex) -> Result<Vec<NodeId>> {
    let expr = crate::parser::parse(xpath)?;
    let value = evaluate_with_index(doc, &expr, idx)?;
    Ok(value
        .into_nodes()?
        .into_iter()
        .filter_map(Item::as_node)
        .collect())
}

fn eval_expr(expr: &Expr, ctx: Ctx<'_>) -> Result<XValue> {
    match expr {
        Expr::Literal(s) => Ok(XValue::Str(s.clone())),
        Expr::Number(n) => Ok(XValue::Num(*n)),
        Expr::Neg(e) => {
            let v = eval_expr(e, ctx)?;
            Ok(XValue::Num(-v.number(ctx.doc)))
        }
        Expr::Path(p) => eval_path(p, ctx).map(XValue::Nodes),
        Expr::FilterPath(primary, steps) => {
            let start = eval_expr(primary, ctx)?.into_nodes()?;
            apply_steps(steps, start, ctx.doc, ctx.caches).map(XValue::Nodes)
        }
        Expr::Union(a, b) => {
            let mut left = eval_expr(a, ctx)?.into_nodes()?;
            let right = eval_expr(b, ctx)?.into_nodes()?;
            left.extend(right);
            sort_dedup(ctx.doc, &mut left);
            Ok(XValue::Nodes(left))
        }
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, ctx),
        Expr::Call(name, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_expr(a, ctx)?);
            }
            functions::call(
                name,
                values,
                ctx.doc,
                ctx.item,
                ctx.position,
                ctx.size,
                ctx.caches,
            )
        }
    }
}

fn eval_binary(op: BinOp, a: &Expr, b: &Expr, ctx: Ctx<'_>) -> Result<XValue> {
    match op {
        BinOp::Or => {
            // Short-circuit.
            if eval_expr(a, ctx)?.boolean() {
                return Ok(XValue::Bool(true));
            }
            Ok(XValue::Bool(eval_expr(b, ctx)?.boolean()))
        }
        BinOp::And => {
            if !eval_expr(a, ctx)?.boolean() {
                return Ok(XValue::Bool(false));
            }
            Ok(XValue::Bool(eval_expr(b, ctx)?.boolean()))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let x = eval_expr(a, ctx)?.number(ctx.doc);
            let y = eval_expr(b, ctx)?.number(ctx.doc);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!("arithmetic op"),
            };
            Ok(XValue::Num(r))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let va = eval_expr(a, ctx)?;
            let vb = eval_expr(b, ctx)?;
            Ok(XValue::Bool(compare(op, &va, &vb, ctx.doc)))
        }
    }
}

/// XPath 1.0 comparison semantics, including existential node-set rules.
fn compare(op: BinOp, a: &XValue, b: &XValue, doc: &Document) -> bool {
    use XValue::*;
    match (a, b) {
        (Nodes(na), Nodes(nb)) => {
            // Exists x∈A, y∈B with string(x) op string(y) (numbers for
            // relational operators).
            na.iter().any(|&x| {
                let sx = string_value(doc, x);
                nb.iter().any(|&y| {
                    let sy = string_value(doc, y);
                    match op {
                        BinOp::Eq => sx == sy,
                        BinOp::Ne => sx != sy,
                        _ => cmp_numbers(op, num(&sx), num(&sy)),
                    }
                })
            })
        }
        // XPath 1.0 §3.4: when one operand is a boolean, compare
        // boolean(node-set) with it — not the per-node existential rule.
        (Nodes(ns), Bool(v)) | (Bool(v), Nodes(ns)) if matches!(op, BinOp::Eq | BinOp::Ne) => {
            let eq = ns.is_empty() != *v;
            if op == BinOp::Eq {
                eq
            } else {
                !eq
            }
        }
        (Nodes(ns), other) | (other, Nodes(ns)) => {
            let flipped = matches!(b, Nodes(_)) && !matches!(a, Nodes(_));
            ns.iter().any(|&x| {
                let sx = string_value(doc, x);
                let node_val = XValue::Str(sx);
                let (lhs, rhs) = if flipped {
                    (other.clone(), node_val)
                } else {
                    (node_val, other.clone())
                };
                compare_atomic(op, &lhs, &rhs, doc)
            })
        }
        _ => compare_atomic(op, a, b, doc),
    }
}

fn compare_atomic(op: BinOp, a: &XValue, b: &XValue, doc: &Document) -> bool {
    use XValue::*;
    match op {
        BinOp::Eq | BinOp::Ne => {
            let eq = match (a, b) {
                (Bool(_), _) | (_, Bool(_)) => a.boolean() == b.boolean(),
                (Num(_), _) | (_, Num(_)) => a.number(doc) == b.number(doc),
                _ => a.string(doc) == b.string(doc),
            };
            if op == BinOp::Eq {
                eq
            } else {
                !eq
            }
        }
        _ => cmp_numbers(op, a.number(doc), b.number(doc)),
    }
}

fn num(s: &str) -> f64 {
    parse_number(s).unwrap_or(f64::NAN)
}

fn cmp_numbers(op: BinOp, x: f64, y: f64) -> bool {
    match x.partial_cmp(&y) {
        None => false, // NaN involved
        Some(ord) => match op {
            BinOp::Lt => ord == Ordering::Less,
            BinOp::Le => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::Ge => ord != Ordering::Less,
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::Ne => ord != Ordering::Equal,
            _ => unreachable!("comparison op"),
        },
    }
}

fn eval_path(p: &LocationPath, ctx: Ctx<'_>) -> Result<Vec<Item>> {
    let start = if p.absolute {
        vec![Item::Node(ctx.doc.root())]
    } else {
        vec![ctx.item]
    };
    apply_steps(&p.steps, start, ctx.doc, ctx.caches)
}

/// Apply a step sequence, fusing each predicate-free pair of
/// `descendant-or-self::node()` then `child::Name` (the expansion of
/// `//Name`) into one postings lookup instead of enumerating every node
/// of every subtree.
fn apply_steps(
    steps: &[Step],
    start: Vec<Item>,
    doc: &Document,
    caches: &EvalCaches<'_>,
) -> Result<Vec<Item>> {
    // Only the outermost path of a traced evaluation gets per-step spans;
    // sub-paths inside predicates re-enter here with the latch set.
    let trace = caches
        .trace
        .filter(|t| t.is_enabled() && !caches.in_steps.get());
    let Some(trace) = trace else {
        return apply_steps_inner(steps, start, doc, caches, None);
    };
    caches.in_steps.set(true);
    let result = apply_steps_inner(steps, start, doc, caches, Some(trace));
    caches.in_steps.set(false);
    result
}

/// Display form of a node test for step span labels.
fn test_label(test: &NodeTest) -> String {
    match test {
        NodeTest::Name(n) => n.clone(),
        NodeTest::Any => "*".to_string(),
        NodeTest::Text => "text()".to_string(),
        NodeTest::Comment => "comment()".to_string(),
        NodeTest::Node => "node()".to_string(),
    }
}

fn apply_steps_inner(
    steps: &[Step],
    start: Vec<Item>,
    doc: &Document,
    caches: &EvalCaches<'_>,
    trace: Option<&Trace>,
) -> Result<Vec<Item>> {
    let mut current = start;
    let mut i = 0;
    while i < steps.len() {
        // Budget probe: one round per location step plus the context size
        // it is about to expand.
        if let Some(g) = caches.guard {
            g.try_rounds(1).map_err(XPathError::Budget)?;
            g.try_matches(current.len() as u64)
                .map_err(XPathError::Budget)?;
        }
        if let Some(name) = fused_descendant_name(steps, i) {
            let span = trace.map(|t| {
                let s = t.span(&format!("step[{i}:://{name}]"));
                t.count("context_in", current.len() as u64);
                t.count("fusion_hits", 1);
                s
            });
            current = descendant_named(doc, caches, &current, name);
            // Budget probe: the fused lookup skips apply_step, so charge
            // its fan-out here or `//Name` explosions would go unmetered.
            if let Some(g) = caches.guard {
                g.try_matches(current.len() as u64)
                    .map_err(XPathError::Budget)?;
            }
            if let Some(t) = trace {
                t.count("context_out", current.len() as u64);
            }
            drop(span);
            i += 2;
            continue;
        }
        let step = &steps[i];
        let span = trace.map(|t| {
            let s = t.span(&format!(
                "step[{i}:{}::{}]",
                step.axis.name(),
                test_label(&step.test)
            ));
            t.count("context_in", current.len() as u64);
            s
        });
        let mut stats = StepStats::default();
        let stats_ref = if trace.is_some() {
            Some(&mut stats)
        } else {
            None
        };
        current = apply_step(step, &current, doc, caches, stats_ref)?;
        if let Some(t) = trace {
            t.count("context_out", current.len() as u64);
            t.count("indexed_items", stats.indexed_items);
            t.count("scanned_items", stats.scanned_items);
            if !step.predicates.is_empty() {
                t.count("predicates", step.predicates.len() as u64);
            }
        }
        drop(span);
        i += 1;
    }
    Ok(current)
}

/// If `steps[i], steps[i+1]` are a predicate-free
/// `descendant-or-self::node() / child::Name` pair, the name to fuse on.
/// Both steps must be predicate-free: positional predicates are relative to
/// the per-context candidate list, which fusion would regroup.
fn fused_descendant_name(steps: &[Step], i: usize) -> Option<&str> {
    let a = steps.get(i)?;
    let b = steps.get(i + 1)?;
    if a.axis == Axis::DescendantOrSelf
        && a.test == NodeTest::Node
        && a.predicates.is_empty()
        && b.axis == Axis::Child
        && b.predicates.is_empty()
    {
        match &b.test {
            NodeTest::Name(n) => Some(n),
            _ => None,
        }
    } else {
        None
    }
}

/// All proper-descendant elements named `name` under each input node, via
/// the tag postings sliced to each subtree interval (children of any node in
/// `descendant-or-self::node()` = proper descendants). Attribute items have
/// no descendants and contribute nothing, matching the scan semantics.
fn descendant_named(
    doc: &Document,
    caches: &EvalCaches<'_>,
    input: &[Item],
    name: &str,
) -> Vec<Item> {
    if caches.no_index {
        // Scan-only degradation: walk each subtree instead of touching (or
        // lazily building) postings.
        let mut out: Vec<Item> = Vec::new();
        for &item in input {
            let Item::Node(node) = item else { continue };
            out.extend(
                doc.descendants(node)
                    .filter(|&d| doc.kind(d) == NodeKind::Element && doc.name(d) == Some(name))
                    .map(Item::Node),
            );
        }
        sort_dedup(doc, &mut out);
        return out;
    }
    let idx = caches.index(doc);
    let mut out: Vec<Item> = Vec::new();
    let sym = doc.lookup_sym(name);
    for &item in input {
        let Item::Node(node) = item else { continue };
        if idx.pre(node).is_some() {
            if let Some(sym) = sym {
                out.extend(
                    idx.named_in(sym, node, false)
                        .iter()
                        .map(|&n| Item::Node(n)),
                );
            }
        } else {
            // Detached at index build time (cannot happen for root-reachable
            // evaluation, but keep the scan as the unconditional fallback).
            out.extend(
                doc.descendants(node)
                    .filter(|&d| doc.kind(d) == NodeKind::Element && doc.name(d) == Some(name))
                    .map(Item::Node),
            );
        }
    }
    sort_dedup(doc, &mut out);
    out
}

/// Postings-backed candidate enumeration for descendant name-test steps.
/// Returns the same items in the same (document) order as the scan, so
/// positional predicates see identical semantics; `None` means "no fast
/// path, use the scan".
fn indexed_candidates(
    doc: &Document,
    caches: &EvalCaches<'_>,
    item: Item,
    step: &Step,
) -> Option<Vec<Item>> {
    if caches.no_index {
        return None; // scan-only degradation: never touch postings
    }
    let include_self = match step.axis {
        Axis::Descendant => false,
        Axis::DescendantOrSelf => true,
        _ => return None,
    };
    let NodeTest::Name(name) = &step.test else {
        return None;
    };
    let Item::Node(node) = item else { return None };
    let idx = caches.index(doc);
    idx.pre(node)?; // detached at build time: fall back to the scan
    let Some(sym) = doc.lookup_sym(name) else {
        return Some(Vec::new()); // name never interned: no such elements
    };
    Some(
        idx.named_in(sym, node, include_self)
            .iter()
            .map(|&n| Item::Node(n))
            .collect(),
    )
}

/// Per-step profiling counters: how many candidate items came off postings
/// lists vs axis enumeration. Threaded as `Option` so the untraced path
/// costs one branch per context item.
#[derive(Debug, Default, Clone, Copy)]
struct StepStats {
    indexed_items: u64,
    scanned_items: u64,
}

/// Apply one step to a node-set: per context node, enumerate the axis in
/// axis order, filter by node test, run predicates positionally, then merge
/// and normalise to document order.
fn apply_step(
    step: &Step,
    input: &[Item],
    doc: &Document,
    caches: &EvalCaches<'_>,
    mut stats: Option<&mut StepStats>,
) -> Result<Vec<Item>> {
    let mut out: Vec<Item> = Vec::new();
    for &ctx_item in input {
        // Budget probe: per context item (covers deadline/cancellation even
        // inside one huge step).
        if let Some(g) = caches.guard {
            if !g.ok() {
                return Err(XPathError::Budget(
                    g.error().expect("tripped guard has an error"),
                ));
            }
        }
        let mut candidates = match indexed_candidates(doc, caches, ctx_item, step) {
            Some(c) => {
                if let Some(s) = stats.as_deref_mut() {
                    s.indexed_items += c.len() as u64;
                }
                c
            }
            None => {
                let mut c = axis_items(doc, ctx_item, step.axis);
                c.retain(|&x| test_matches(doc, x, step.axis, &step.test));
                if let Some(s) = stats.as_deref_mut() {
                    s.scanned_items += c.len() as u64;
                }
                c
            }
        };
        // Budget probe: this context item's candidate fan-out.
        if let Some(g) = caches.guard {
            g.try_matches(candidates.len() as u64)
                .map_err(XPathError::Budget)?;
        }
        for pred in &step.predicates {
            let size = candidates.len();
            let mut kept = Vec::with_capacity(size);
            for (i, &c) in candidates.iter().enumerate() {
                let pctx = Ctx {
                    doc,
                    item: c,
                    position: i + 1,
                    size,
                    caches,
                };
                let v = eval_expr(pred, pctx)?;
                let keep = match v {
                    // Numeric predicate = positional test.
                    XValue::Num(n) => (i + 1) as f64 == n,
                    other => other.boolean(),
                };
                if keep {
                    kept.push(c);
                }
            }
            candidates = kept;
        }
        out.extend(candidates);
    }
    sort_dedup(doc, &mut out);
    Ok(out)
}

/// Enumerate an axis in axis order (reverse axes run backwards so that
/// positional predicates see XPath semantics).
fn axis_items(doc: &Document, item: Item, axis: Axis) -> Vec<Item> {
    let node = match item {
        Item::Node(n) => n,
        Item::Attr { owner, .. } => {
            // Attribute items navigate relative to their owning element.
            return match axis {
                Axis::SelfAxis => vec![item],
                // The parent of an attribute is its element, exactly.
                Axis::Parent => vec![Item::Node(owner)],
                Axis::Ancestor | Axis::AncestorOrSelf => {
                    let mut v = if axis == Axis::AncestorOrSelf {
                        vec![item]
                    } else {
                        vec![]
                    };
                    v.extend(ancestors(doc, owner, true).into_iter().map(Item::Node));
                    v
                }
                // XPath 1.0: the following axis of an attribute holds every
                // node after it in document order except descendants of the
                // attribute (it has none) — i.e. the owner's descendants
                // plus the owner's following axis.
                Axis::Following => {
                    let mut v: Vec<Item> = doc.descendants(owner).map(Item::Node).collect();
                    v.extend(axis_items(doc, Item::Node(owner), Axis::Following));
                    v
                }
                // And preceding(attr) = preceding(owner): everything before
                // the owner, minus ancestors.
                Axis::Preceding => axis_items(doc, Item::Node(owner), Axis::Preceding),
                _ => Vec::new(),
            };
        }
    };
    match axis {
        Axis::Child => doc.children(node).iter().map(|&c| Item::Node(c)).collect(),
        Axis::Descendant => doc.descendants(node).map(Item::Node).collect(),
        Axis::DescendantOrSelf => doc.descendants_or_self(node).map(Item::Node).collect(),
        Axis::Parent => doc.parent(node).map(Item::Node).into_iter().collect(),
        Axis::Ancestor => ancestors(doc, node, false)
            .into_iter()
            .map(Item::Node)
            .collect(),
        Axis::AncestorOrSelf => {
            let mut v = vec![Item::Node(node)];
            v.extend(ancestors(doc, node, false).into_iter().map(Item::Node));
            v
        }
        Axis::SelfAxis => vec![item],
        Axis::Attribute => (0..doc.attr_count(node))
            .map(|index| Item::Attr { owner: node, index })
            .collect(),
        Axis::FollowingSibling => {
            let mut v = Vec::new();
            let mut cur = doc.next_sibling(node);
            while let Some(s) = cur {
                v.push(Item::Node(s));
                cur = doc.next_sibling(s);
            }
            v
        }
        Axis::PrecedingSibling => {
            let mut v = Vec::new();
            let mut cur = doc.prev_sibling(node);
            while let Some(s) = cur {
                v.push(Item::Node(s));
                cur = doc.prev_sibling(s);
            }
            v
        }
        Axis::Following => {
            // Nodes after `node` in document order, excluding descendants:
            // the subtrees of every following sibling of every
            // ancestor-or-self — O(|result|), no whole-document scan.
            let mut v = Vec::new();
            let mut cur = node;
            loop {
                let mut sib = doc.next_sibling(cur);
                while let Some(s) = sib {
                    v.extend(doc.descendants_or_self(s).map(Item::Node));
                    sib = doc.next_sibling(s);
                }
                match doc.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            v.sort_by_key(|&i| order_key(doc, i));
            v
        }
        Axis::Preceding => {
            // Symmetric: subtrees of preceding siblings along the ancestor
            // chain, reverse document order.
            let mut v = Vec::new();
            let mut cur = node;
            loop {
                let mut sib = doc.prev_sibling(cur);
                while let Some(s) = sib {
                    v.extend(doc.descendants_or_self(s).map(Item::Node));
                    sib = doc.prev_sibling(s);
                }
                match doc.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            v.sort_by_key(|&i| std::cmp::Reverse(order_key(doc, i)));
            v
        }
    }
}

fn ancestors(doc: &Document, node: NodeId, include_start_parent_chain: bool) -> Vec<NodeId> {
    let mut v = Vec::new();
    let mut cur = if include_start_parent_chain {
        Some(node)
    } else {
        doc.parent(node)
    };
    if include_start_parent_chain {
        // For attribute items: the owning element is the parent.
        cur = Some(node);
    }
    while let Some(n) = cur {
        v.push(n);
        cur = doc.parent(n);
    }
    v
}

fn test_matches(doc: &Document, item: Item, axis: Axis, test: &NodeTest) -> bool {
    match item {
        Item::Attr { owner, index } => match test {
            NodeTest::Any | NodeTest::Node => true,
            NodeTest::Name(n) => doc
                .attrs(owner)
                .nth(index)
                .is_some_and(|(name, _)| name == n),
            _ => false,
        },
        Item::Node(node) => {
            let kind = doc.kind(node);
            match test {
                NodeTest::Node => true,
                NodeTest::Text => kind == NodeKind::Text,
                NodeTest::Comment => kind == NodeKind::Comment,
                NodeTest::Any => {
                    // `*` is the principal node type of the axis: elements
                    // everywhere except the attribute axis (handled above).
                    debug_assert!(axis != Axis::Attribute);
                    kind == NodeKind::Element
                }
                NodeTest::Name(n) => {
                    kind == NodeKind::Element && doc.name(node) == Some(n.as_str())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994' isbn='a'>\
                 <title>TCP/IP Illustrated</title>\
                 <author><last>Stevens</last></author>\
                 <price>65.95</price>\
               </book>\
               <book year='2000' isbn='b'>\
                 <title>Data on the Web</title>\
                 <author><last>Abiteboul</last></author>\
                 <author><last>Buneman</last></author>\
                 <author><last>Suciu</last></author>\
                 <price>39.95</price>\
               </book>\
               <article year='2000'><title>XML-GL</title></article>\
             </bib>",
        )
        .unwrap()
    }

    fn texts(d: &Document, xpath: &str) -> Vec<String> {
        select(d, xpath)
            .unwrap()
            .iter()
            .map(|&n| d.text_content(n))
            .collect()
    }

    #[test]
    fn child_paths() {
        let d = doc();
        assert_eq!(select(&d, "/bib/book").unwrap().len(), 2);
        assert_eq!(
            texts(&d, "/bib/book/title"),
            vec!["TCP/IP Illustrated", "Data on the Web"]
        );
    }

    #[test]
    fn descendant_paths() {
        let d = doc();
        assert_eq!(select(&d, "//last").unwrap().len(), 4);
        assert_eq!(select(&d, "//title").unwrap().len(), 3);
        assert_eq!(select(&d, "/bib//author//last").unwrap().len(), 4);
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        assert_eq!(
            texts(&d, "//book[@year='2000']/title"),
            vec!["Data on the Web"]
        );
        assert_eq!(select(&d, "//book[@year > 1995]").unwrap().len(), 1);
        assert_eq!(select(&d, "//*[@year='2000']").unwrap().len(), 2);
        assert_eq!(select(&d, "//book[@missing]").unwrap().len(), 0);
    }

    #[test]
    fn attribute_values_compare_as_strings_and_numbers() {
        let d = doc();
        // string= on the attribute axis value
        assert_eq!(select(&d, "//book[@isbn='a']").unwrap().len(), 1);
        // numeric comparison coerces
        assert_eq!(select(&d, "//book[@year >= 1994]").unwrap().len(), 2);
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        assert_eq!(texts(&d, "/bib/book[1]/title"), vec!["TCP/IP Illustrated"]);
        assert_eq!(texts(&d, "/bib/book[2]/author[3]/last"), vec!["Suciu"]);
        assert_eq!(
            texts(&d, "/bib/book[position()=2]/title"),
            vec!["Data on the Web"]
        );
        assert_eq!(
            texts(&d, "/bib/book[last()]/title"),
            vec!["Data on the Web"]
        );
    }

    #[test]
    fn reverse_axis_positions() {
        let d = doc();
        // The first ancestor of a <last> is <author>, the second <book>.
        assert_eq!(select(&d, "//last/ancestor::*[2]").unwrap().len(), 2); // two books
        let names: Vec<_> = select(&d, "(//last)/ancestor::*[1]")
            .unwrap()
            .iter()
            .map(|&n| d.name(n).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["author", "author", "author", "author"]);
    }

    #[test]
    fn sibling_axes() {
        let d = doc();
        assert_eq!(
            texts(&d, "//title/following-sibling::price"),
            vec!["65.95", "39.95"]
        );
        assert_eq!(
            select(&d, "//price/preceding-sibling::author")
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            texts(&d, "//article/preceding-sibling::book[1]/title"),
            vec!["Data on the Web"]
        );
    }

    #[test]
    fn following_and_preceding() {
        let d = doc();
        // article follows everything in both books.
        assert_eq!(
            select(&d, "/bib/book[1]/following::article").unwrap().len(),
            1
        );
        assert_eq!(select(&d, "//article/preceding::book").unwrap().len(), 2);
        // descendants are not in following
        assert_eq!(
            select(&d, "/bib/book[1]/following::title").unwrap().len(),
            2
        );
    }

    #[test]
    fn dot_and_dotdot() {
        let d = doc();
        assert_eq!(texts(&d, "//last[. = 'Suciu']"), vec!["Suciu"]);
        assert_eq!(select(&d, "//last/../..").unwrap().len(), 2); // books
    }

    #[test]
    fn text_nodes() {
        let d = doc();
        let t = select(&d, "//title/text()").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(d.kind(t[0]), NodeKind::Text);
    }

    #[test]
    fn functions_in_predicates() {
        let d = doc();
        assert_eq!(
            texts(&d, "//book[contains(title, 'Web')]/title"),
            vec!["Data on the Web"]
        );
        assert_eq!(
            texts(&d, "//book[starts-with(title, 'TCP')]/price"),
            vec!["65.95"]
        );
        assert_eq!(
            texts(&d, "//book[count(author) > 1]/title"),
            vec!["Data on the Web"]
        );
        assert_eq!(
            texts(&d, "//book[not(@year='1994')]/title"),
            vec!["Data on the Web"]
        );
    }

    #[test]
    fn top_level_values() {
        let d = doc();
        let expr = crate::parse("count(//book)").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Num(2.0));
        let expr = crate::parse("sum(//price)").unwrap();
        match evaluate(&d, &expr).unwrap() {
            XValue::Num(n) => assert!((n - 105.90).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        let expr = crate::parse("string(//book[1]/title)").unwrap();
        assert_eq!(
            evaluate(&d, &expr).unwrap(),
            XValue::Str("TCP/IP Illustrated".into())
        );
    }

    #[test]
    fn existential_nodeset_comparison() {
        let d = doc();
        // Some author is Suciu — node-set = string is existential.
        let expr = crate::parse("//last = 'Suciu'").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Bool(true));
        // And simultaneously some author is not Suciu.
        let expr = crate::parse("//last != 'Suciu'").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Bool(true));
        // Node-set vs node-set.
        let expr = crate::parse("//book[1]/price < //book[2]/@year").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let d = doc();
        let expr = crate::parse("//book[1]/price * 2 + 1").unwrap();
        match evaluate(&d, &expr).unwrap() {
            XValue::Num(n) => assert!((n - 132.9).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        let expr = crate::parse("7 mod 3").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Num(1.0));
        let expr = crate::parse("1 div 0").unwrap();
        match evaluate(&d, &expr).unwrap() {
            XValue::Num(n) => assert!(n.is_infinite()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_is_document_ordered() {
        let d = doc();
        let hits = select(&d, "//price | //title").unwrap();
        let names: Vec<_> = hits
            .iter()
            .map(|&n| d.name(n).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["title", "price", "title", "price", "title"]);
    }

    #[test]
    fn result_sets_have_no_duplicates() {
        let d = doc();
        // Both steps can reach the same titles.
        let hits = select(&d, "//book/title | /bib/book/title").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn boolean_operators_short_circuit() {
        let d = doc();
        let expr = crate::parse("true() or boolean(1 div 0)").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Bool(true));
        let expr = crate::parse("//book[@year='1994' and count(author)=1]").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap().into_nodes().unwrap().len(), 1);
    }

    #[test]
    fn bare_root_selects_document_node() {
        let d = doc();
        let expr = crate::parse("/").unwrap();
        let ns = evaluate(&d, &expr).unwrap().into_nodes().unwrap();
        assert_eq!(ns, vec![Item::Node(d.root())]);
    }

    #[test]
    fn attribute_selection_returns_values_via_string() {
        let d = doc();
        let expr = crate::parse("string(//book[2]/@isbn)").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Str("b".into()));
        // Attribute node-sets have proper sizes.
        let expr = crate::parse("count(//book/@year)").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Num(2.0));
    }

    #[test]
    fn attribute_axes_follow_the_spec() {
        let d = doc();
        // parent:: of an attribute is exactly the owning element.
        let expr = crate::parse("count(//book[1]/@year/..)").unwrap();
        assert_eq!(evaluate(&d, &expr).unwrap(), XValue::Num(1.0));
        // following:: from an attribute sees the owner's subtree and beyond.
        let hits = select(&d, "//book[1]/@year/following::article").unwrap();
        assert_eq!(hits.len(), 1);
        let titles = select(&d, "//book[1]/@year/following::title").unwrap();
        assert_eq!(titles.len(), 3); // own book's title + book2's + article's
                                     // preceding:: from book2's attribute sees book1's content.
        let prices = select(&d, "//book[2]/@year/preceding::price").unwrap();
        assert_eq!(prices.len(), 1);
    }

    #[test]
    fn nodeset_boolean_comparison_follows_the_spec() {
        let d = doc();
        let t = |src: &str| evaluate(&d, &crate::parse(src).unwrap()).unwrap();
        // Empty node-set = false() is TRUE under §3.4.
        assert_eq!(t("//nonexistent = false()"), XValue::Bool(true));
        assert_eq!(t("//nonexistent != true()"), XValue::Bool(true));
        assert_eq!(t("//book = true()"), XValue::Bool(true));
        assert_eq!(t("//book != true()"), XValue::Bool(false));
    }

    #[test]
    fn deep_documents_evaluate() {
        let d = gql_ssdm::generator::deep_chain(300, 1);
        assert_eq!(select(&d, "//target").unwrap().len(), 1);
        assert_eq!(select(&d, "//level[@n='299']/target").unwrap().len(), 1);
    }

    #[test]
    fn prebuilt_index_gives_identical_results() {
        let d = doc();
        let idx = DocIndex::build(&d);
        // Exercises the fused `//name` pair, descendant steps with
        // predicates (positions must match scan semantics), explicit
        // descendant axes, attribute tests and unknown names.
        for xpath in [
            "//last",
            "//title",
            "/bib//author//last",
            "//book[2]/title",
            "//book[@year='2000']/title",
            "/bib/book[1]/following::article",
            "descendant::title[2]",
            "/bib/descendant-or-self::book",
            "//book/descendant::last[1]",
            "//nonexistent",
            "//price | //title",
            "//book[count(author) > 1]//last",
        ] {
            let plain = select(&d, xpath).unwrap();
            let indexed = select_with_index(&d, xpath, &idx).unwrap();
            assert_eq!(plain, indexed, "{xpath}");
        }
        let expr = crate::parse("count(//author)").unwrap();
        assert_eq!(
            evaluate_with_index(&d, &expr, &idx).unwrap(),
            XValue::Num(4.0)
        );
    }

    #[test]
    fn fusion_requires_predicate_free_steps() {
        let d = doc();
        // `//book[1]` means "every book that is the first child-book of its
        // parent", NOT "the first book in the document" — the child step's
        // predicate must block fusion for this to hold.
        assert_eq!(select(&d, "//book[1]").unwrap().len(), 1);
        assert_eq!(texts(&d, "//book[1]/title"), vec!["TCP/IP Illustrated"]);
        assert_eq!(select(&d, "//author[1]").unwrap().len(), 2);
    }
}
