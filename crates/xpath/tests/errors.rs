//! Error-path coverage for the XPath lexer and parser: malformed
//! predicates, unterminated literals, unknown axes, and truncated input
//! must all produce span-carrying diagnostics (never panics), with the
//! offset pointing at the offending character or token.

use gql_xpath::{parse, XPathError};

fn parse_err(src: &str) -> XPathError {
    parse(src).expect_err(&format!("{src:?} should fail to parse"))
}

#[test]
fn unterminated_literal_carries_quote_offset() {
    match parse_err("'abc") {
        XPathError::Lex { offset, msg } => {
            assert_eq!(offset, 0);
            assert!(msg.contains("unterminated"), "msg: {msg}");
        }
        other => panic!("expected Lex, got {other:?}"),
    }
    match parse_err("book[@title = \"never closed]") {
        XPathError::Lex { offset, .. } => assert_eq!(offset, 14),
        other => panic!("expected Lex, got {other:?}"),
    }
}

#[test]
fn lone_bang_and_lone_colon_point_at_the_character() {
    match parse_err("a ! b") {
        XPathError::Lex { offset, msg } => {
            assert_eq!(offset, 2);
            assert!(msg.contains('!'), "msg: {msg}");
        }
        other => panic!("expected Lex, got {other:?}"),
    }
    match parse_err("ns:name") {
        XPathError::Lex { offset, msg } => {
            assert_eq!(offset, 2);
            assert!(msg.contains("namespace"), "msg: {msg}");
        }
        other => panic!("expected Lex, got {other:?}"),
    }
}

#[test]
fn unknown_axis_points_at_the_axis_name() {
    match parse_err("unknown::x") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 0);
            assert!(msg.contains("unknown axis"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
    // Same axis error mid-expression: offset must track the step, not 0.
    match parse_err("//x/preceeding::y") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 4);
            assert!(msg.contains("preceeding"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn truncated_predicate_reports_end_of_input() {
    // "book[@year >" is 12 chars; the missing operand is reported at the end.
    match parse_err("book[@year >") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 12);
            assert!(msg.contains("end of input"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
    match parse_err("book[") {
        XPathError::Parse { offset, .. } => assert_eq!(offset, 5),
        other => panic!("expected Parse, got {other:?}"),
    }
    match parse_err("child::") {
        XPathError::Parse { offset, .. } => assert_eq!(offset, 7),
        other => panic!("expected Parse, got {other:?}"),
    }
    match parse_err("foo(") {
        XPathError::Parse { offset, .. } => assert_eq!(offset, 4),
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn malformed_predicate_points_at_the_bad_token() {
    // "@" with no name: the ']' at offset 6 is where a node test was expected.
    match parse_err("book[@]") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 6);
            assert!(msg.contains("node test"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
    // Unbalanced close bracket is trailing input at its own offset.
    match parse_err("book]") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 4);
            assert!(msg.contains("trailing"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn function_call_in_step_position_points_at_the_name() {
    match parse_err("/a/substring(1)") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 3);
            assert!(msg.contains("substring"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn trailing_input_points_at_the_extra_token() {
    match parse_err("1 1") {
        XPathError::Parse { offset, msg } => {
            assert_eq!(offset, 2);
            assert!(msg.contains("trailing"), "msg: {msg}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn display_embeds_the_offset() {
    let err = parse_err("book[@year >");
    assert_eq!(
        err.to_string(),
        "parse error at offset 12: expected a node test, found end of input"
    );
    let lex = parse_err("'abc");
    assert!(lex.to_string().starts_with("lex error at offset 0:"));
}

#[test]
fn error_paths_never_panic() {
    // A sweep of malformed inputs: each must return Err, not panic.
    for bad in [
        "",
        "/bib/",
        "book[",
        "book[]",
        "book[@]",
        "book[@year >",
        "book]",
        "foo(",
        "foo(,)",
        "child::",
        "unknown::x",
        "1 1",
        "| a",
        "a |",
        "()",
        "(a",
        "@",
        "//",
        "..[1",
        "a[b[c[d[",
        "---",
        "1 +",
        "= 1",
        "a and",
        "or or",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} should fail");
    }
}
