//! Update operations — the XML-GL extension for modifying documents.
//!
//! The XML-GL literature extends the query rules to *updates*: the extract
//! graph selects targets exactly as in queries, and the right-hand side,
//! instead of constructing a result document, edits the source. Three
//! operations cover the published examples:
//!
//! * [`UpdateOp::Delete`] — remove every element matched by a variable;
//! * [`UpdateOp::InsertUnder`] — instantiate a construct template once per
//!   binding and append it under the matched element;
//! * [`UpdateOp::SetAttr`] — set an attribute on every matched element
//!   (literal value or copied from another binding).
//!
//! Updates are applied to a *clone* of the input ([`apply`] is pure); the
//! binding phase runs entirely before the mutation phase, so an update
//! never observes its own effects (snapshot semantics — the only sane
//! reading of a declarative diagram).

use gql_ssdm::{Document, NodeId};

use crate::ast::{CNodeId, ConstructGraph, QNodeId, Rule};
use crate::eval::{bound_text, match_rule, Binding, Bound};
use crate::{Result, XmlGlError};

/// One update operation, tied to a rule's extract graph.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Delete every element bound to the variable.
    Delete { target: QNodeId },
    /// Instantiate the construct root `template` once per binding and
    /// append it under the element bound to `target`.
    InsertUnder { target: QNodeId, template: CNodeId },
    /// Set `attr` on every element bound to `target`.
    SetAttr {
        target: QNodeId,
        attr: String,
        value: UpdateValue,
    },
}

/// Value source for [`UpdateOp::SetAttr`].
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateValue {
    Literal(String),
    /// The string value of another bound query node.
    Binding(QNodeId),
}

/// An update program: a rule (whose construct side holds any insertion
/// templates) plus the operations to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRule {
    pub rule: Rule,
    pub ops: Vec<UpdateOp>,
}

/// Statistics of one update application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    pub bindings: usize,
    pub deleted: usize,
    pub inserted: usize,
    pub attrs_set: usize,
}

impl UpdateRule {
    /// Validate: operation targets exist; insert templates are construct
    /// roots (elements); delete targets are element nodes.
    pub fn check(&self) -> Result<()> {
        let ill = |msg: String| Err(XmlGlError::IllFormed { msg });
        crate::check::check_rule(&self.rule)?;
        if self.ops.is_empty() {
            return ill("an update rule needs at least one operation".into());
        }
        let q_ok = |id: QNodeId| id.index() < self.rule.extract.nodes.len();
        for op in &self.ops {
            match op {
                UpdateOp::Delete { target } | UpdateOp::SetAttr { target, .. } => {
                    if !q_ok(*target) {
                        return ill("operation targets a missing query node".into());
                    }
                    if !matches!(
                        self.rule.extract.node(*target).kind,
                        crate::ast::QNodeKind::Element(_)
                    ) {
                        return ill("updates target element boxes".into());
                    }
                }
                UpdateOp::InsertUnder { target, template } => {
                    if !q_ok(*target) {
                        return ill("insert targets a missing query node".into());
                    }
                    if !self.rule.construct.roots.contains(template) {
                        return ill("insert templates must be construct roots".into());
                    }
                }
            }
            if let UpdateOp::SetAttr {
                value: UpdateValue::Binding(src),
                ..
            } = op
            {
                if !q_ok(*src) {
                    return ill("attribute value copies a missing query node".into());
                }
            }
        }
        Ok(())
    }

    /// Apply to a document, returning the edited copy and statistics.
    pub fn apply(&self, doc: &Document) -> Result<(Document, UpdateStats)> {
        self.check()?;
        let bindings = match_rule(&self.rule, doc);
        let mut out = doc.clone();
        let mut stats = UpdateStats {
            bindings: bindings.len(),
            ..Default::default()
        };

        for op in &self.ops {
            match op {
                UpdateOp::Delete { target } => {
                    for node in distinct_nodes(&bindings, *target) {
                        // A node may sit inside an already-deleted subtree;
                        // detach is idempotent either way.
                        if out.parent(node).is_some() {
                            out.detach(node)
                                .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                            stats.deleted += 1;
                        }
                    }
                }
                UpdateOp::InsertUnder { target, template } => {
                    for b in &bindings {
                        let Some(Bound::Node(parent)) = b.get(*target) else {
                            continue;
                        };
                        let instance =
                            instantiate_template(&self.rule, *template, doc, b, &mut out)?;
                        out.append_child(*parent, instance)
                            .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                        stats.inserted += 1;
                    }
                }
                UpdateOp::SetAttr {
                    target,
                    attr,
                    value,
                } => {
                    for b in &bindings {
                        let Some(Bound::Node(node)) = b.get(*target) else {
                            continue;
                        };
                        let v = match value {
                            UpdateValue::Literal(s) => s.clone(),
                            UpdateValue::Binding(src) => {
                                let bound = b.get(*src).ok_or_else(|| XmlGlError::Eval {
                                    msg: format!("unbound value source {src:?}"),
                                })?;
                                bound_text(doc, bound)
                            }
                        };
                        out.set_attr(*node, attr, &v)
                            .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                        stats.attrs_set += 1;
                    }
                }
            }
        }
        Ok((out, stats))
    }
}

/// Distinct bound nodes for a query node, in binding order.
fn distinct_nodes(bindings: &[Binding], q: QNodeId) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for b in bindings {
        if let Some(Bound::Node(n)) = b.get(q) {
            if seen.insert(*n) {
                out.push(*n);
            }
        }
    }
    out
}

/// Instantiate a construct template for one binding (single-binding variant
/// of the query construction machinery).
fn instantiate_template(
    rule: &Rule,
    template: CNodeId,
    doc: &Document,
    binding: &Binding,
    out: &mut Document,
) -> Result<NodeId> {
    // Reuse the construction engine with a one-binding group: instantiate
    // into a scratch document, then import the result. The scratch step
    // keeps this module independent of construct-internal APIs.
    let scoped: ConstructGraph = rule.construct.clone();
    let one_rule = Rule {
        extract: rule.extract.clone(),
        construct: scoped,
        span: rule.span,
    };
    let mut scratch = Document::new();
    crate::eval::construct_rule(&one_rule, doc, std::slice::from_ref(binding), &mut scratch)?;
    // The template is a construct root; roots are emitted in order, so find
    // the instance with the template's position.
    let pos = rule
        .construct
        .roots
        .iter()
        .position(|&r| r == template)
        .expect("checked: template is a root");
    let produced: Vec<NodeId> = scratch.children(scratch.root()).to_vec();
    let Some(&instance) = produced.get(pos) else {
        return Err(XmlGlError::Eval {
            msg: "template produced no instance for this binding".into(),
        });
    };
    Ok(out.import_subtree(&scratch, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994'><title>Old</title><price>65.95</price></book>\
               <book year='2001'><title>New</title><price>39.95</price></book>\
               <book year='2005'><title>Newer</title><price>20.00</price></book>\
             </bib>",
        )
        .unwrap()
    }

    fn rule_selecting_old() -> Rule {
        RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").var("y").pred(CmpOp::Lt, "2000")),
            )
            .construct(C::elem("unused"))
            .build()
            .unwrap()
    }

    #[test]
    fn delete_matched_books() {
        let r = rule_selecting_old();
        let target = r.extract.by_var("b").unwrap();
        let u = UpdateRule {
            rule: r,
            ops: vec![UpdateOp::Delete { target }],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.bindings, 1);
        assert_eq!(stats.deleted, 1);
        assert!(!out.to_xml_string().contains("Old"));
        assert!(out.to_xml_string().contains("New"));
        // The input is untouched.
        assert!(doc().to_xml_string().contains("Old"));
    }

    #[test]
    fn insert_under_matched_elements() {
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").var("y").pred(CmpOp::Ge, "2000")),
            )
            .construct(
                C::elem("tag")
                    .child(C::attr_var("since", "y"))
                    .child(C::text("modern")),
            )
            .build()
            .unwrap();
        let target = r.extract.by_var("b").unwrap();
        let template = r.construct.roots[0];
        let u = UpdateRule {
            rule: r,
            ops: vec![UpdateOp::InsertUnder { target, template }],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.inserted, 2);
        let xml = out.to_xml_string();
        assert!(xml.contains("<tag since=\"2001\">modern</tag>"), "{xml}");
        assert!(xml.contains("<tag since=\"2005\">modern</tag>"), "{xml}");
        // The 1994 book is untouched.
        assert_eq!(xml.matches("<tag").count(), 2);
    }

    #[test]
    fn set_attr_literal_and_copied() {
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::elem("price").child(Q::text().var("p").pred(CmpOp::Lt, "40"))),
            )
            .construct(C::elem("unused"))
            .build()
            .unwrap();
        let b = r.extract.by_var("b").unwrap();
        let p = r.extract.by_var("p").unwrap();
        let u = UpdateRule {
            rule: r,
            ops: vec![
                UpdateOp::SetAttr {
                    target: b,
                    attr: "budget".into(),
                    value: UpdateValue::Literal("yes".into()),
                },
                UpdateOp::SetAttr {
                    target: b,
                    attr: "was".into(),
                    value: UpdateValue::Binding(p),
                },
            ],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.attrs_set, 4); // two books × two ops
        let xml = out.to_xml_string();
        assert!(xml.contains("budget=\"yes\""));
        assert!(xml.contains("was=\"39.95\""));
        assert!(xml.contains("was=\"20.00\""));
        assert!(!xml.contains("year=\"1994\" budget"));
    }

    #[test]
    fn snapshot_semantics_insert_does_not_feed_matching() {
        // Insert a <book> under every <book>: with snapshot semantics this
        // adds exactly one child per original book and terminates.
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("book").child(C::text("nested")))
            .build()
            .unwrap();
        let target = r.extract.by_var("b").unwrap();
        let template = r.construct.roots[0];
        let u = UpdateRule {
            rule: r,
            ops: vec![UpdateOp::InsertUnder { target, template }],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.inserted, 3);
        assert_eq!(
            out.to_xml_string().matches("<book>nested</book>").count(),
            3
        );
    }

    #[test]
    fn delete_parent_and_child_together() {
        // Both the book and its title match; deleting both must not error
        // when the title goes down with its parent.
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b").child(Q::elem("title").var("t")))
            .construct(C::elem("unused"))
            .build()
            .unwrap();
        let b = r.extract.by_var("b").unwrap();
        let t = r.extract.by_var("t").unwrap();
        let u = UpdateRule {
            rule: r,
            ops: vec![
                UpdateOp::Delete { target: b },
                UpdateOp::Delete { target: t },
            ],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.deleted, 3 + 3); // detach is per-node; titles detach from detached books
        assert_eq!(out.to_xml_string(), "<bib/>");
    }

    #[test]
    fn validation_errors() {
        let r = rule_selecting_old();
        let bogus = QNodeId(99);
        let u = UpdateRule {
            rule: r.clone(),
            ops: vec![UpdateOp::Delete { target: bogus }],
        };
        assert!(u.apply(&doc()).is_err());
        let u = UpdateRule {
            rule: r.clone(),
            ops: vec![],
        };
        assert!(u.apply(&doc()).is_err());
        // Delete targeting an attribute circle.
        let y = r.extract.by_var("y").unwrap();
        let u = UpdateRule {
            rule: r,
            ops: vec![UpdateOp::Delete { target: y }],
        };
        assert!(u
            .apply(&doc())
            .unwrap_err()
            .to_string()
            .contains("element boxes"));
    }

    #[test]
    fn no_matches_is_a_clean_noop() {
        let r = RuleBuilder::new()
            .extract(Q::elem("pamphlet").var("x"))
            .construct(C::elem("unused"))
            .build()
            .unwrap();
        let target = r.extract.by_var("x").unwrap();
        let u = UpdateRule {
            rule: r,
            ops: vec![UpdateOp::Delete { target }],
        };
        let (out, stats) = u.apply(&doc()).unwrap();
        assert_eq!(stats.bindings, 0);
        assert_eq!(out.to_xml_string(), doc().to_xml_string());
    }
}
