//! The editor simulation: incremental construction of XML-GL diagrams.
//!
//! The paper's system is an *interactive* editor; this reproduction keeps
//! the editor's essence — a diagram being built step by step, kept valid,
//! with undo and with schema-derived affordances — as an explicit API. A
//! GUI would be a thin shell over [`Editor`]:
//!
//! * [`EditOp`] is the vocabulary of mouse gestures (drop a box, draw an
//!   edge, cross an edge out, bind a variable, …);
//! * every operation is validated *in context* before being applied, the
//!   way an editor refuses an illegal gesture;
//! * [`Editor::undo`] rolls back the last operation;
//! * [`Editor::suggest_children`] surfaces what the schema (when one is
//!   loaded) allows under a selected box — the affordance the paper
//!   credits schema-aware editing with;
//! * [`Editor::finish`] produces the checked [`Rule`].

use crate::ast::{
    CNode, CNodeId, CNodeKind, CValue, CmpOp, NameTest, Predicate, QEdge, QNode, QNodeId,
    QNodeKind, Rule,
};
use crate::schema::GlSchema;
use crate::{Result, XmlGlError};

/// One editing gesture.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Drop an element box on the extract side; `parent: None` makes it a
    /// new pattern-tree root.
    AddElement {
        parent: Option<QNodeId>,
        name: String,
        deep: bool,
        negated: bool,
    },
    /// Drop a wildcard box.
    AddWildcard { parent: Option<QNodeId> },
    /// Attach a hollow text circle under an element box.
    AddText { parent: QNodeId },
    /// Attach a filled attribute circle under an element box.
    AddAttr { parent: QNodeId, name: String },
    /// Bind a variable to a query node.
    BindVar { node: QNodeId, var: String },
    /// Write a predicate next to a node (conjoined to existing ones).
    AddPredicate {
        node: QNodeId,
        op: CmpOp,
        value: String,
    },
    /// Mark a box's children as order-sensitive.
    SetOrdered { node: QNodeId },
    /// Draw the join connector between two bound nodes.
    AddJoin { a: QNodeId, b: QNodeId },
    /// Drop a construct element; `parent: None` makes it a construct root.
    AddConstructElement {
        parent: Option<CNodeId>,
        name: String,
    },
    /// Drop a triangle collecting a bound query node.
    AddAll { parent: CNodeId, source: QNodeId },
    /// Drop a copy node.
    AddCopy { parent: CNodeId, source: QNodeId },
    /// Drop an aggregate diamond.
    AddAggregate {
        parent: CNodeId,
        func: crate::ast::AggFunc,
        source: QNodeId,
    },
    /// Attach a constructed attribute with a literal value.
    AddConstructAttr {
        parent: CNodeId,
        name: String,
        value: String,
    },
}

/// An editing session.
#[derive(Debug, Default)]
pub struct Editor {
    rule: Rule,
    /// Undo log: snapshots before each applied operation. Diagrams are tiny
    /// (tens of nodes), so whole-rule snapshots are the honest, simple
    /// choice over operation inverses.
    history: Vec<Rule>,
    schema: Option<GlSchema>,
}

impl Editor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a schema; subsequent element drops are checked against it and
    /// [`Editor::suggest_children`] becomes meaningful.
    pub fn with_schema(mut self, schema: GlSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// The diagram as built so far (possibly incomplete).
    pub fn current(&self) -> &Rule {
        &self.rule
    }

    /// Number of applied (undoable) operations.
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Apply one gesture; on error the diagram is unchanged.
    pub fn apply(&mut self, op: EditOp) -> Result<AppliedId> {
        let snapshot = self.rule.clone();
        match self.try_apply(&op) {
            Ok(id) => {
                self.history.push(snapshot);
                Ok(id)
            }
            Err(e) => {
                self.rule = snapshot;
                Err(e)
            }
        }
    }

    /// Roll back the last applied operation; returns whether anything was
    /// undone.
    pub fn undo(&mut self) -> bool {
        match self.history.pop() {
            Some(prev) => {
                self.rule = prev;
                true
            }
            None => false,
        }
    }

    /// What the schema allows under an element box (with multiplicities) —
    /// the palette the editor would show. Empty when no schema is loaded or
    /// the box is a wildcard.
    pub fn suggest_children(&self, node: QNodeId) -> Vec<(String, String)> {
        let Some(schema) = &self.schema else {
            return Vec::new();
        };
        let Some(qnode) = self.rule.extract.nodes.get(node.index()) else {
            return Vec::new();
        };
        let QNodeKind::Element(NameTest::Name(name)) = &qnode.kind else {
            return Vec::new();
        };
        let Some(decl) = schema.element(name) else {
            return Vec::new();
        };
        let mut out: Vec<(String, String)> = decl
            .children
            .iter()
            .map(|c| (c.child.clone(), format!("element ({})", c.mult.symbol())))
            .collect();
        for (attr, required) in &decl.attrs {
            out.push((
                attr.clone(),
                format!("attribute{}", if *required { " (required)" } else { "" }),
            ));
        }
        if decl.text {
            out.push(("#text".into(), "text content".into()));
        }
        out
    }

    /// Validate and hand out the completed rule.
    pub fn finish(self) -> Result<Rule> {
        crate::check::check_rule(&self.rule)?;
        Ok(self.rule)
    }

    // ------------------------------------------------------------------

    fn ill(msg: impl Into<String>) -> XmlGlError {
        XmlGlError::IllFormed { msg: msg.into() }
    }

    fn qnode_exists(&self, id: QNodeId) -> Result<()> {
        if id.index() < self.rule.extract.nodes.len() {
            Ok(())
        } else {
            Err(Self::ill(format!("no query node {id:?} on the canvas")))
        }
    }

    fn cnode_exists(&self, id: CNodeId) -> Result<()> {
        if id.index() < self.rule.construct.nodes.len() {
            Ok(())
        } else {
            Err(Self::ill(format!("no construct node {id:?} on the canvas")))
        }
    }

    fn require_element(&self, id: QNodeId) -> Result<()> {
        self.qnode_exists(id)?;
        match self.rule.extract.node(id).kind {
            QNodeKind::Element(_) => Ok(()),
            _ => Err(Self::ill("only element boxes take children")),
        }
    }

    /// Schema gate for dropping `child` under `parent_name`.
    fn schema_allows(&self, parent: Option<QNodeId>, child: &str) -> Result<()> {
        let Some(schema) = &self.schema else {
            return Ok(());
        };
        match parent {
            None => {
                if schema.element(child).is_none() {
                    return Err(Self::ill(format!("schema declares no element <{child}>")));
                }
            }
            Some(p) => {
                if let QNodeKind::Element(NameTest::Name(pname)) = &self.rule.extract.node(p).kind {
                    if let Some(decl) = schema.element(pname) {
                        if !decl.children.iter().any(|c| c.child == child) {
                            return Err(Self::ill(format!(
                                "schema does not allow <{child}> inside <{pname}>"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn try_apply(&mut self, op: &EditOp) -> Result<AppliedId> {
        match op {
            EditOp::AddElement {
                parent,
                name,
                deep,
                negated,
            } => {
                if name.is_empty() {
                    return Err(Self::ill("element boxes need a name"));
                }
                if let Some(p) = parent {
                    self.require_element(*p)?;
                } else if *deep || *negated {
                    return Err(Self::ill("roots have no incoming edge to decorate"));
                }
                self.schema_allows(*parent, name)?;
                let id = self
                    .rule
                    .extract
                    .add(QNode::element(NameTest::Name(name.clone())));
                match parent {
                    Some(p) => self.rule.extract.node_mut(*p).children.push(QEdge {
                        target: id,
                        deep: *deep,
                        negated: *negated,
                    }),
                    None => self.rule.extract.roots.push(id),
                }
                Ok(AppliedId::Query(id))
            }
            EditOp::AddWildcard { parent } => {
                if let Some(p) = parent {
                    self.require_element(*p)?;
                }
                let id = self.rule.extract.add(QNode::element(NameTest::Wildcard));
                match parent {
                    Some(p) => self
                        .rule
                        .extract
                        .node_mut(*p)
                        .children
                        .push(QEdge::child(id)),
                    None => self.rule.extract.roots.push(id),
                }
                Ok(AppliedId::Query(id))
            }
            EditOp::AddText { parent } => {
                self.require_element(*parent)?;
                let id = self.rule.extract.add(QNode::text());
                self.rule
                    .extract
                    .node_mut(*parent)
                    .children
                    .push(QEdge::child(id));
                Ok(AppliedId::Query(id))
            }
            EditOp::AddAttr { parent, name } => {
                self.require_element(*parent)?;
                if name.is_empty() {
                    return Err(Self::ill("attribute circles need a name"));
                }
                let id = self.rule.extract.add(QNode::attribute(name.clone()));
                self.rule
                    .extract
                    .node_mut(*parent)
                    .children
                    .push(QEdge::child(id));
                Ok(AppliedId::Query(id))
            }
            EditOp::BindVar { node, var } => {
                self.qnode_exists(*node)?;
                if var.is_empty() {
                    return Err(Self::ill("variables need a name"));
                }
                if self.rule.extract.by_var(var).is_some() {
                    return Err(Self::ill(format!("${var} is already bound")));
                }
                self.rule.extract.node_mut(*node).var = Some(var.clone());
                Ok(AppliedId::Query(*node))
            }
            EditOp::AddPredicate { node, op, value } => {
                self.qnode_exists(*node)?;
                let n = self.rule.extract.node_mut(*node);
                n.predicate = std::mem::replace(&mut n.predicate, Predicate::always())
                    .and(*op, value.clone());
                Ok(AppliedId::Query(*node))
            }
            EditOp::SetOrdered { node } => {
                self.require_element(*node)?;
                self.rule.extract.ordered[node.index()] = true;
                Ok(AppliedId::Query(*node))
            }
            EditOp::AddJoin { a, b } => {
                self.qnode_exists(*a)?;
                self.qnode_exists(*b)?;
                if a == b {
                    return Err(Self::ill("a join connects two distinct nodes"));
                }
                self.rule.extract.joins.push((*a, *b));
                Ok(AppliedId::Query(*a))
            }
            EditOp::AddConstructElement { parent, name } => {
                if name.is_empty() {
                    return Err(Self::ill("constructed elements need a name"));
                }
                if let Some(p) = parent {
                    self.cnode_exists(*p)?;
                    if !matches!(self.rule.construct.node(*p).kind, CNodeKind::Element(_)) {
                        return Err(Self::ill("construct children hang off elements"));
                    }
                }
                let id = self
                    .rule
                    .construct
                    .add(CNode::new(CNodeKind::Element(name.clone())));
                match parent {
                    Some(p) => self.rule.construct.node_mut(*p).children.push(id),
                    None => self.rule.construct.roots.push(id),
                }
                Ok(AppliedId::Construct(id))
            }
            EditOp::AddAll { parent, source } => self.add_construct_leaf(
                *parent,
                CNodeKind::All {
                    source: *source,
                    order: None,
                },
            ),
            EditOp::AddCopy { parent, source } => self.add_construct_leaf(
                *parent,
                CNodeKind::Copy {
                    source: *source,
                    deep: true,
                },
            ),
            EditOp::AddAggregate {
                parent,
                func,
                source,
            } => self.add_construct_leaf(
                *parent,
                CNodeKind::Aggregate {
                    func: *func,
                    source: *source,
                },
            ),
            EditOp::AddConstructAttr {
                parent,
                name,
                value,
            } => self.add_construct_leaf(
                *parent,
                CNodeKind::Attribute {
                    name: name.clone(),
                    value: CValue::Literal(value.clone()),
                },
            ),
        }
    }

    fn add_construct_leaf(&mut self, parent: CNodeId, kind: CNodeKind) -> Result<AppliedId> {
        self.cnode_exists(parent)?;
        if !matches!(self.rule.construct.node(parent).kind, CNodeKind::Element(_)) {
            return Err(Self::ill("construct children hang off elements"));
        }
        // Source references must exist and (for copy/all/aggregate) be
        // bound to *something* drawable: any existing query node works.
        let source = match &kind {
            CNodeKind::All { source, .. }
            | CNodeKind::Copy { source, .. }
            | CNodeKind::Aggregate { source, .. } => Some(*source),
            _ => None,
        };
        if let Some(s) = source {
            self.qnode_exists(s)?;
        }
        let id = self.rule.construct.add(CNode::new(kind));
        self.rule.construct.node_mut(parent).children.push(id);
        Ok(AppliedId::Construct(id))
    }
}

/// Handle returned by [`Editor::apply`]: the canvas object the gesture
/// created or modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedId {
    Query(QNodeId),
    Construct(CNodeId),
}

impl AppliedId {
    pub fn query(self) -> QNodeId {
        match self {
            AppliedId::Query(q) => q,
            AppliedId::Construct(_) => panic!("expected a query node"),
        }
    }

    pub fn construct(self) -> CNodeId {
        match self {
            AppliedId::Construct(c) => c,
            AppliedId::Query(_) => panic!("expected a construct node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggFunc;
    use gql_ssdm::dtd::Dtd;

    /// Build the quickstart query entirely through editor gestures.
    #[test]
    fn build_a_query_by_gestures() {
        let mut ed = Editor::new();
        let book = ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "book".into(),
                deep: false,
                negated: false,
            })
            .unwrap()
            .query();
        ed.apply(EditOp::BindVar {
            node: book,
            var: "b".into(),
        })
        .unwrap();
        let year = ed
            .apply(EditOp::AddAttr {
                parent: book,
                name: "year".into(),
            })
            .unwrap()
            .query();
        ed.apply(EditOp::AddPredicate {
            node: year,
            op: CmpOp::Ge,
            value: "2000".into(),
        })
        .unwrap();
        let result = ed
            .apply(EditOp::AddConstructElement {
                parent: None,
                name: "result".into(),
            })
            .unwrap()
            .construct();
        ed.apply(EditOp::AddAll {
            parent: result,
            source: book,
        })
        .unwrap();
        ed.apply(EditOp::AddAggregate {
            parent: result,
            func: AggFunc::Count,
            source: book,
        })
        .unwrap();
        let rule = ed.finish().unwrap();

        // The edited rule behaves like the parsed one.
        let doc = gql_ssdm::Document::parse_str(
            "<bib><book year='2001'><t>A</t></book><book year='1999'><t>B</t></book></bib>",
        )
        .unwrap();
        let out = crate::eval::run_rule(&rule, &doc).unwrap();
        let xml = out.to_xml_string();
        assert!(xml.contains("<t>A</t>"));
        assert!(!xml.contains("<t>B</t>"));
        assert!(xml.contains('1'));
    }

    #[test]
    fn illegal_gestures_are_refused_and_leave_the_canvas_untouched() {
        let mut ed = Editor::new();
        let book = ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "book".into(),
                deep: false,
                negated: false,
            })
            .unwrap()
            .query();
        let text = ed.apply(EditOp::AddText { parent: book }).unwrap().query();
        let before = ed.current().clone();
        // Children under a text circle.
        assert!(ed.apply(EditOp::AddText { parent: text }).is_err());
        // Unnamed element.
        assert!(ed
            .apply(EditOp::AddElement {
                parent: Some(book),
                name: "".into(),
                deep: false,
                negated: false
            })
            .is_err());
        // Duplicate variable.
        ed.apply(EditOp::BindVar {
            node: book,
            var: "x".into(),
        })
        .unwrap();
        assert!(ed
            .apply(EditOp::BindVar {
                node: text,
                var: "x".into()
            })
            .is_err());
        ed.undo();
        // Decorated root edge.
        assert!(ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "r".into(),
                deep: true,
                negated: false
            })
            .is_err());
        // Self join.
        assert!(ed.apply(EditOp::AddJoin { a: book, b: book }).is_err());
        // Dangling references.
        assert!(ed
            .apply(EditOp::AddText {
                parent: QNodeId(99)
            })
            .is_err());
        assert_eq!(ed.current(), &before);
    }

    #[test]
    fn undo_rolls_back_one_gesture_at_a_time() {
        let mut ed = Editor::new();
        let a = ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "a".into(),
                deep: false,
                negated: false,
            })
            .unwrap()
            .query();
        ed.apply(EditOp::AddText { parent: a }).unwrap();
        assert_eq!(ed.depth(), 2);
        assert_eq!(ed.current().extract.nodes.len(), 2);
        assert!(ed.undo());
        assert_eq!(ed.current().extract.nodes.len(), 1);
        assert!(ed.undo());
        assert_eq!(ed.current().extract.nodes.len(), 0);
        assert!(!ed.undo());
    }

    #[test]
    fn schema_gates_and_suggestions() {
        let dtd = Dtd::parse(
            "<!ELEMENT BOOK (title?,price)>\
             <!ATTLIST BOOK isbn CDATA #REQUIRED>\
             <!ELEMENT title (#PCDATA)>\
             <!ELEMENT price (#PCDATA)>",
        )
        .unwrap();
        let schema = crate::schema::GlSchema::from_dtd(&dtd);
        let mut ed = Editor::new().with_schema(schema);
        // Undeclared root element refused.
        assert!(ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "PAMPHLET".into(),
                deep: false,
                negated: false
            })
            .is_err());
        let book = ed
            .apply(EditOp::AddElement {
                parent: None,
                name: "BOOK".into(),
                deep: false,
                negated: false,
            })
            .unwrap()
            .query();
        // The palette shows what the schema allows.
        let suggestions = ed.suggest_children(book);
        let names: Vec<&str> = suggestions.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"title"));
        assert!(names.contains(&"price"));
        assert!(names.contains(&"isbn"));
        // Disallowed child refused; allowed child accepted.
        assert!(ed
            .apply(EditOp::AddElement {
                parent: Some(book),
                name: "chapter".into(),
                deep: false,
                negated: false
            })
            .is_err());
        assert!(ed
            .apply(EditOp::AddElement {
                parent: Some(book),
                name: "title".into(),
                deep: false,
                negated: false
            })
            .is_ok());
    }

    #[test]
    fn incomplete_diagrams_fail_only_at_finish() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddElement {
            parent: None,
            name: "a".into(),
            deep: false,
            negated: false,
        })
        .unwrap();
        // No construct side yet: the canvas is fine, finish() complains.
        assert!(ed.finish().is_err());
    }

    #[test]
    fn constructed_attribute_via_gesture() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddElement {
            parent: None,
            name: "x".into(),
            deep: false,
            negated: false,
        })
        .unwrap();
        let root = ed
            .apply(EditOp::AddConstructElement {
                parent: None,
                name: "out".into(),
            })
            .unwrap()
            .construct();
        ed.apply(EditOp::AddConstructAttr {
            parent: root,
            name: "version".into(),
            value: "1".into(),
        })
        .unwrap();
        let rule = ed.finish().unwrap();
        let doc = gql_ssdm::Document::parse_str("<x/>").unwrap();
        let out = crate::eval::run_rule(&rule, &doc).unwrap();
        assert_eq!(out.to_xml_string(), "<out version=\"1\"/>");
    }
}
