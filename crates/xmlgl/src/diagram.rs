//! Conversion of XML-GL rules to renderable diagrams.
//!
//! Reproduces the visual form of the paper's figures: the extract graph on
//! the left, the construct graph on the right, and dotted *binding* edges
//! from query nodes to the construct nodes that copy or collect them. The
//! result is a [`gql_layout::Diagram`], ready for the Sugiyama layout and
//! the SVG/ASCII renderers.

use gql_layout::{Diagram, EdgeSpec, EdgeStyle, NodeSpec, Shape};
use gql_vgraph::NodeIx;

use crate::ast::{CNodeKind, CValue, QNodeKind, Rule};

/// Build a diagram of one rule.
pub fn rule_diagram(rule: &Rule) -> Diagram {
    let mut d = Diagram::new();

    // Extract side.
    let qnodes: Vec<NodeIx> = rule
        .extract
        .nodes
        .iter()
        .map(|n| {
            let mut spec = match &n.kind {
                QNodeKind::Element(t) => NodeSpec::new(t.to_string(), Shape::Box),
                QNodeKind::Text => NodeSpec::new("", Shape::Circle),
                QNodeKind::Attribute(a) => NodeSpec::new(a.clone(), Shape::Dot),
            };
            let mut notes = Vec::new();
            if let Some(v) = &n.var {
                notes.push(format!("${v}"));
            }
            if !n.predicate.is_trivial() {
                notes.push(n.predicate.to_string());
            }
            if !notes.is_empty() {
                spec = spec.with_sublabel(notes.join(" "));
            }
            d.add_node(spec)
        })
        .collect();
    for id in rule.extract.ids() {
        for e in &rule.extract.node(id).children {
            let style = if e.negated {
                EdgeStyle::Dashed
            } else {
                EdgeStyle::Solid
            };
            let mut label = String::new();
            if e.deep {
                label.push('*');
            }
            if e.negated {
                label.push('✗');
            }
            let spec = if label.is_empty() {
                EdgeSpec::styled(style)
            } else {
                EdgeSpec::labelled(label, style)
            };
            d.add_edge(qnodes[id.index()], qnodes[e.target.index()], spec);
        }
    }
    // Join edges: undirected dotted connections labelled '='.
    for &(a, b) in &rule.extract.joins {
        d.add_edge(
            qnodes[a.index()],
            qnodes[b.index()],
            EdgeSpec::labelled("=", EdgeStyle::Dotted).undirected(),
        );
    }

    // Construct side.
    let cnodes: Vec<NodeIx> = rule
        .construct
        .nodes
        .iter()
        .map(|n| {
            let spec = match &n.kind {
                CNodeKind::Element(name) => NodeSpec::new(name.clone(), Shape::Box),
                CNodeKind::Text(t) => NodeSpec::new(format!("\"{t}\""), Shape::Circle),
                CNodeKind::Attribute { name, value } => {
                    let v = match value {
                        CValue::Literal(s) => format!("=\"{s}\""),
                        CValue::Binding(_) => "=$".to_string(),
                    };
                    NodeSpec::new(format!("{name}{v}"), Shape::Dot)
                }
                CNodeKind::Copy { deep, .. } => {
                    NodeSpec::new(if *deep { "copy" } else { "copy (shallow)" }, Shape::Box)
                }
                CNodeKind::All { order, .. } => NodeSpec::new(
                    if order.is_some() {
                        "all (sorted)"
                    } else {
                        "all"
                    },
                    Shape::Triangle,
                ),
                CNodeKind::GroupBy { wrapper, .. } => {
                    NodeSpec::new(format!("group→{wrapper}"), Shape::Triangle)
                }
                CNodeKind::Aggregate { func, .. } => NodeSpec::new(func.name(), Shape::Diamond),
            };
            d.add_node(spec)
        })
        .collect();
    for id in rule.construct.ids() {
        for &c in &rule.construct.node(id).children {
            d.add_edge(
                cnodes[id.index()],
                cnodes[c.index()],
                EdgeSpec::styled(EdgeStyle::Thick),
            );
        }
    }

    // Binding edges from query nodes to the construct nodes using them.
    for id in rule.construct.ids() {
        let n = rule.construct.node(id);
        let sources: Vec<crate::ast::QNodeId> = match &n.kind {
            CNodeKind::Copy { source, .. } | CNodeKind::All { source, .. } => vec![*source],
            CNodeKind::GroupBy { source, key, .. } => vec![*source, *key],
            CNodeKind::Aggregate { source, .. } => vec![*source],
            CNodeKind::Attribute {
                value: CValue::Binding(source),
                ..
            } => vec![*source],
            _ => Vec::new(),
        };
        for s in sources {
            d.add_edge(
                qnodes[s.index()],
                cnodes[id.index()],
                EdgeSpec::styled(EdgeStyle::Dotted).undirected(),
            );
        }
    }
    d
}

/// Render a rule straight to SVG with default layout options.
pub fn rule_to_svg(rule: &Rule) -> String {
    let d = rule_diagram(rule);
    let layout = gql_layout::layout(&d, &gql_layout::LayoutOptions::default());
    gql_layout::render::to_svg(&d, &layout)
}

/// Render a rule to ASCII art with default layout options.
pub fn rule_to_ascii(rule: &Rule) -> String {
    let d = rule_diagram(rule);
    let layout = gql_layout::layout(&d, &gql_layout::LayoutOptions::default());
    gql_layout::render::to_ascii(&d, &layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, CmpOp};
    use crate::builder::{RuleBuilder, C, Q};

    fn sample_rule() -> Rule {
        RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").var("y").pred(CmpOp::Ge, "2000"))
                    .deep_child(Q::elem("last").var("l"))
                    .without(Q::elem("errata")),
            )
            .extract(Q::elem("person").child(Q::elem("name").child(Q::text().var("n"))))
            .join("l", "n")
            .construct(
                C::elem("result")
                    .child(C::attr_var("year", "y"))
                    .child(C::all("b"))
                    .child(C::agg(AggFunc::Count, "b")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn diagram_has_all_nodes_and_binding_edges() {
        let rule = sample_rule();
        let d = rule_diagram(&rule);
        // 7 query nodes + 4 construct nodes.
        assert_eq!(d.node_count(), 11);
        // Containment: 3 + 2 = 5 query edges (negated included) + join 1
        // + construct tree edges 3 + bindings (attr y, all b, count b) 3.
        assert_eq!(d.edge_count(), 12);
    }

    #[test]
    fn svg_rendering_contains_labels() {
        let svg = rule_to_svg(&sample_rule());
        assert!(svg.contains("book"));
        assert!(svg.contains("result"));
        assert!(svg.contains("count"));
        assert!(svg.contains("stroke-dasharray")); // dotted binding edges
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn ascii_rendering_shows_shapes() {
        let text = rule_to_ascii(&sample_rule());
        assert!(text.contains("[book]"));
        assert!(text.contains("^all^"));
        assert!(text.contains("<count>"));
    }
}
