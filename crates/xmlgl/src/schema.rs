//! XML-GL as a schema formalism (experiment **F3**).
//!
//! The paper shows that the same graphical vocabulary doubles as a schema
//! language with *more* structural expressive power than DTDs: content is
//! unordered by default (a DTD sequence fixes order), multiplicities label
//! the containment edges, and an **xor arc** across two edges expresses
//! exclusive choice. This module implements:
//!
//! * the schema graph model ([`GlSchema`]);
//! * validation of documents against a schema (multiplicity counting +
//!   xor checking — no automaton needed because content is unordered);
//! * translation DTD → XML-GL schema (loses order, maps `?`/`*`/`+` to
//!   multiplicities, hoists top-level choices to xor groups);
//! * translation XML-GL schema → DTD (re-imposes a canonical order, the
//!   information DTDs cannot avoid fixing — the asymmetry the paper uses
//!   to argue XML-GL's schema power).

use std::collections::HashMap;

use gql_ssdm::document::NodeKind;
use gql_ssdm::dtd::{AttDecl, AttDefault, AttType, ContentModel, Cp, Dtd, Rep};
use gql_ssdm::{Document, NodeId};

/// Edge multiplicity in a schema graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mult {
    /// Exactly one.
    One,
    /// Zero or one (`?`).
    Opt,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
}

impl Mult {
    pub fn accepts(self, count: usize) -> bool {
        match self {
            Mult::One => count == 1,
            Mult::Opt => count <= 1,
            Mult::Star => true,
            Mult::Plus => count >= 1,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Mult::One => "1",
            Mult::Opt => "?",
            Mult::Star => "*",
            Mult::Plus => "+",
        }
    }

    fn from_rep(rep: Rep) -> Mult {
        match rep {
            Rep::One => Mult::One,
            Rep::Opt => Mult::Opt,
            Rep::Star => Mult::Star,
            Rep::Plus => Mult::Plus,
        }
    }

    fn to_rep(self) -> Rep {
        match self {
            Mult::One => Rep::One,
            Mult::Opt => Rep::Opt,
            Mult::Star => Rep::Star,
            Mult::Plus => Rep::Plus,
        }
    }
}

/// One containment edge of the schema graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildDecl {
    pub child: String,
    pub mult: Mult,
}

/// Declaration of one element type.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElemDecl {
    /// Containment edges (unordered).
    pub children: Vec<ChildDecl>,
    /// Whether textual content (a hollow circle) is allowed.
    pub text: bool,
    /// Declared attributes (filled circles); `required` mirrors #REQUIRED.
    pub attrs: Vec<(String, bool)>,
    /// Xor arcs: each group lists indexes into `children`; exactly one
    /// member of the group may be present (with its own multiplicity).
    pub xor_groups: Vec<Vec<usize>>,
}

/// An XML-GL schema: a graph of element declarations.
#[derive(Debug, Clone, Default)]
pub struct GlSchema {
    elements: HashMap<String, ElemDecl>,
    order: Vec<String>,
}

impl GlSchema {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn declare(&mut self, name: &str, decl: ElemDecl) {
        if !self.elements.contains_key(name) {
            self.order.push(name.to_string());
        }
        self.elements.insert(name.to_string(), decl);
    }

    pub fn element(&self, name: &str) -> Option<&ElemDecl> {
        self.elements.get(name)
    }

    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Validate a document; returns violations (empty = valid). Content is
    /// *unordered*: only per-name counts and xor exclusivity are checked —
    /// precisely the relaxation the paper highlights over DTDs.
    pub fn validate(&self, doc: &Document) -> Vec<String> {
        let mut v = Vec::new();
        if let Some(root) = doc.root_element() {
            self.validate_node(doc, root, &mut v);
        } else {
            v.push("document has no root element".into());
        }
        v
    }

    fn validate_node(&self, doc: &Document, node: NodeId, out: &mut Vec<String>) {
        let name = doc.name(node).unwrap_or("").to_string();
        match self.elements.get(&name) {
            None => out.push(format!("element <{name}> is not declared")),
            Some(decl) => {
                // Count children per name.
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for c in doc.child_elements(node) {
                    *counts.entry(doc.name(c).unwrap_or("")).or_default() += 1;
                }
                // Which declared children are exempt via xor groups?
                let in_xor: Vec<bool> = {
                    let mut f = vec![false; decl.children.len()];
                    for g in &decl.xor_groups {
                        for &i in g {
                            if let Some(slot) = f.get_mut(i) {
                                *slot = true;
                            }
                        }
                    }
                    f
                };
                for (i, cd) in decl.children.iter().enumerate() {
                    let count = counts.remove(cd.child.as_str()).unwrap_or(0);
                    if in_xor[i] {
                        // Within an xor group, absence is fine; presence is
                        // checked against the edge multiplicity below via
                        // group accounting.
                        if count > 0 && !cd.mult.accepts(count) {
                            out.push(format!(
                                "<{name}> has {count} <{}> children, multiplicity {}",
                                cd.child,
                                cd.mult.symbol()
                            ));
                        }
                    } else if !cd.mult.accepts(count) {
                        out.push(format!(
                            "<{name}> has {count} <{}> children, multiplicity {}",
                            cd.child,
                            cd.mult.symbol()
                        ));
                    }
                }
                // Xor: exactly one branch present.
                for group in &decl.xor_groups {
                    let present: Vec<&str> = group
                        .iter()
                        .filter_map(|&i| decl.children.get(i))
                        .filter(|cd| {
                            doc.child_elements(node)
                                .any(|c| doc.name(c) == Some(cd.child.as_str()))
                        })
                        .map(|cd| cd.child.as_str())
                        .collect();
                    if present.len() != 1 {
                        out.push(format!(
                            "<{name}> must contain exactly one of an xor group, found {}",
                            if present.is_empty() {
                                "none".to_string()
                            } else {
                                present.join(", ")
                            }
                        ));
                    }
                }
                // Undeclared children.
                for (child, _) in counts {
                    if !child.is_empty() {
                        out.push(format!("<{name}> may not contain <{child}>"));
                    }
                }
                // Text.
                let has_text = doc.children(node).iter().any(|&c| {
                    doc.kind(c) == NodeKind::Text && !doc.text(c).unwrap_or("").trim().is_empty()
                });
                if has_text && !decl.text {
                    out.push(format!("<{name}> may not contain text"));
                }
                // Attributes.
                for (attr, required) in &decl.attrs {
                    if *required && doc.attr(node, attr).is_none() {
                        out.push(format!("required attribute '{attr}' missing on <{name}>"));
                    }
                }
                for (a, _) in doc.attrs(node) {
                    if !decl.attrs.iter().any(|(n, _)| n == a) {
                        out.push(format!("attribute '{a}' on <{name}> is not declared"));
                    }
                }
            }
        }
        for c in doc.child_elements(node) {
            self.validate_node(doc, c, out);
        }
    }

    /// Translate a DTD into an XML-GL schema. Sequences lose their order
    /// (XML-GL content is unordered); two-way and longer top-level choices
    /// become xor groups; nested groups are flattened with the weakest
    /// multiplicity that over-approximates them.
    pub fn from_dtd(dtd: &Dtd) -> GlSchema {
        let mut schema = GlSchema::new();
        for name in dtd.element_names() {
            let model = dtd.element(name).expect("declared element has a model");
            let mut decl = ElemDecl::default();
            match model {
                ContentModel::Empty => {}
                ContentModel::Any => {
                    decl.text = true;
                    // ANY cannot be represented edge-by-edge; an empty decl
                    // with text=true plus "anything goes" marker: approximate
                    // by allowing every declared element as Star child.
                    for other in dtd.element_names() {
                        decl.children.push(ChildDecl {
                            child: other.to_string(),
                            mult: Mult::Star,
                        });
                    }
                }
                ContentModel::Mixed(names) => {
                    decl.text = true;
                    for n in names {
                        decl.children.push(ChildDecl {
                            child: n.clone(),
                            mult: Mult::Star,
                        });
                    }
                }
                ContentModel::Children(cp) => {
                    flatten_cp(cp, Mult::One, &mut decl);
                }
            }
            for att in dtd.attrs_of(name) {
                decl.attrs.push((
                    att.name.clone(),
                    matches!(att.default, AttDefault::Required),
                ));
            }
            schema.declare(name, decl);
        }
        schema
    }

    /// Translate back to a DTD. Children are emitted in declaration order as
    /// a sequence (the canonical order XML-GL must invent); xor groups
    /// become choices.
    pub fn to_dtd(&self) -> Dtd {
        let mut dtd = Dtd::new();
        for name in &self.order {
            let decl = &self.elements[name];
            let in_xor: Vec<bool> = {
                let mut f = vec![false; decl.children.len()];
                for g in &decl.xor_groups {
                    for &i in g {
                        if let Some(s) = f.get_mut(i) {
                            *s = true;
                        }
                    }
                }
                f
            };
            let mut parts: Vec<Cp> = Vec::new();
            for (i, cd) in decl.children.iter().enumerate() {
                if !in_xor[i] {
                    parts.push(Cp::Name(cd.child.clone(), cd.mult.to_rep()));
                }
            }
            for group in &decl.xor_groups {
                let alts: Vec<Cp> = group
                    .iter()
                    .filter_map(|&i| decl.children.get(i))
                    .map(|cd| Cp::Name(cd.child.clone(), cd.mult.to_rep()))
                    .collect();
                if !alts.is_empty() {
                    parts.push(Cp::Choice(alts, Rep::One));
                }
            }
            let model = if decl.text && parts.is_empty() {
                ContentModel::Mixed(Vec::new())
            } else if decl.text {
                ContentModel::Mixed(decl.children.iter().map(|cd| cd.child.clone()).collect())
            } else if parts.is_empty() {
                ContentModel::Empty
            } else if parts.len() == 1 {
                ContentModel::Children(parts.pop().expect("one part"))
            } else {
                ContentModel::Children(Cp::Seq(parts, Rep::One))
            };
            dtd.declare_element(name, model);
            for (attr, required) in &decl.attrs {
                dtd.declare_attr(
                    name,
                    AttDecl {
                        name: attr.clone(),
                        ty: AttType::Cdata,
                        default: if *required {
                            AttDefault::Required
                        } else {
                            AttDefault::Implied
                        },
                    },
                );
            }
        }
        dtd
    }
}

/// Flatten a content particle into unordered child declarations; `outer`
/// weakens multiplicities inherited from enclosing groups.
fn flatten_cp(cp: &Cp, outer: Mult, decl: &mut ElemDecl) {
    let combine = |a: Mult, b: Mult| -> Mult {
        use Mult::*;
        match (a, b) {
            (One, m) | (m, One) => m,
            (Star, _) | (_, Star) => Star,
            (Plus, Plus) => Plus,
            (Opt, Opt) => Opt,
            (Plus, Opt) | (Opt, Plus) => Star,
        }
    };
    match cp {
        Cp::Name(n, rep) => {
            let mult = combine(outer, Mult::from_rep(*rep));
            if let Some(existing) = decl.children.iter_mut().find(|c| &c.child == n) {
                // Repeated occurrence in a sequence ⇒ at least weaken to *.
                existing.mult = Mult::Star;
            } else {
                decl.children.push(ChildDecl {
                    child: n.clone(),
                    mult,
                });
            }
        }
        Cp::Seq(items, rep) => {
            let m = combine(outer, Mult::from_rep(*rep));
            for item in items {
                flatten_cp(item, m, decl);
            }
        }
        Cp::Choice(items, rep) => {
            let m = combine(outer, Mult::from_rep(*rep));
            // A top-level choice of names becomes an xor group; other
            // choices are over-approximated as optional members.
            let all_names = items.iter().all(|i| matches!(i, Cp::Name(..)));
            if all_names && m == Mult::One {
                let start = decl.children.len();
                for item in items {
                    flatten_cp(item, Mult::One, decl);
                }
                decl.xor_groups.push((start..decl.children.len()).collect());
            } else {
                for item in items {
                    flatten_cp(item, combine(m, Mult::Opt), decl);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The BOOK DTD from figure XML-GL-DTD2 of the paper.
    const BOOK_DTD: &str = r#"
        <!ELEMENT BOOK (title?,price,AUTHOR*)>
        <!ATTLIST BOOK isbn CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        <!ELEMENT AUTHOR (first-name,last-name)>
        <!ELEMENT first-name (#PCDATA)>
        <!ELEMENT last-name (#PCDATA)>
    "#;

    fn book_schema() -> GlSchema {
        GlSchema::from_dtd(&Dtd::parse(BOOK_DTD).unwrap())
    }

    #[test]
    fn dtd_to_schema_multiplicities() {
        let s = book_schema();
        let book = s.element("BOOK").unwrap();
        let mult_of = |n: &str| book.children.iter().find(|c| c.child == n).unwrap().mult;
        assert_eq!(mult_of("title"), Mult::Opt);
        assert_eq!(mult_of("price"), Mult::One);
        assert_eq!(mult_of("AUTHOR"), Mult::Star);
        assert_eq!(book.attrs, vec![("isbn".to_string(), true)]);
        assert!(s.element("title").unwrap().text);
    }

    #[test]
    fn unordered_validation_is_the_paper_distinction() {
        let s = book_schema();
        // The DTD rejects price-before-title; the XML-GL schema accepts it.
        let swapped =
            Document::parse_str("<BOOK isbn='1'><price>10</price><title>T</title></BOOK>").unwrap();
        assert!(s.validate(&swapped).is_empty());
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        assert!(!dtd.validate(&swapped).is_empty());
    }

    #[test]
    fn multiplicity_violations() {
        let s = book_schema();
        let missing_price = Document::parse_str("<BOOK isbn='1'><title>T</title></BOOK>").unwrap();
        assert!(s
            .validate(&missing_price)
            .iter()
            .any(|m| m.contains("<price>") && m.contains("multiplicity 1")));
        let two_titles = Document::parse_str(
            "<BOOK isbn='1'><title>A</title><title>B</title><price>1</price></BOOK>",
        )
        .unwrap();
        assert!(s
            .validate(&two_titles)
            .iter()
            .any(|m| m.contains("<title>")));
    }

    #[test]
    fn attribute_checks() {
        let s = book_schema();
        let no_isbn = Document::parse_str("<BOOK><price>1</price></BOOK>").unwrap();
        assert!(s.validate(&no_isbn).iter().any(|m| m.contains("isbn")));
        let stray = Document::parse_str("<BOOK isbn='1' zzz='2'><price>1</price></BOOK>").unwrap();
        assert!(s.validate(&stray).iter().any(|m| m.contains("'zzz'")));
    }

    #[test]
    fn undeclared_elements_and_text() {
        let s = book_schema();
        let stray =
            Document::parse_str("<BOOK isbn='1'><price>1</price><blurb>x</blurb></BOOK>").unwrap();
        let v = s.validate(&stray);
        assert!(v.iter().any(|m| m.contains("<blurb>")), "{v:?}");
        let text_in_book =
            Document::parse_str("<BOOK isbn='1'>hello<price>1</price></BOOK>").unwrap();
        assert!(s.validate(&text_in_book).iter().any(|m| m.contains("text")));
    }

    #[test]
    fn xor_groups() {
        let mut s = GlSchema::new();
        s.declare(
            "payment",
            ElemDecl {
                children: vec![
                    ChildDecl {
                        child: "cash".into(),
                        mult: Mult::One,
                    },
                    ChildDecl {
                        child: "card".into(),
                        mult: Mult::One,
                    },
                ],
                xor_groups: vec![vec![0, 1]],
                ..Default::default()
            },
        );
        s.declare(
            "cash",
            ElemDecl {
                text: true,
                ..Default::default()
            },
        );
        s.declare(
            "card",
            ElemDecl {
                text: true,
                ..Default::default()
            },
        );
        let ok = Document::parse_str("<payment><cash>10</cash></payment>").unwrap();
        assert!(s.validate(&ok).is_empty());
        let both = Document::parse_str("<payment><cash>1</cash><card>2</card></payment>").unwrap();
        assert!(s.validate(&both).iter().any(|m| m.contains("xor")));
        let none = Document::parse_str("<payment/>").unwrap();
        assert!(s.validate(&none).iter().any(|m| m.contains("none")));
    }

    #[test]
    fn choice_dtd_becomes_xor() {
        let dtd = Dtd::parse("<!ELEMENT r (a|b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
        let s = GlSchema::from_dtd(&dtd);
        let r = s.element("r").unwrap();
        assert_eq!(r.xor_groups, vec![vec![0, 1]]);
        let ok = Document::parse_str("<r><a/></r>").unwrap();
        assert!(s.validate(&ok).is_empty());
        let bad = Document::parse_str("<r><a/><b/></r>").unwrap();
        assert!(!s.validate(&bad).is_empty());
    }

    #[test]
    fn schema_to_dtd_roundtrip_validates() {
        let s = book_schema();
        let dtd = s.to_dtd();
        // The regenerated DTD accepts canonical-order documents.
        let doc = Document::parse_str(
            "<BOOK isbn='1'><title>T</title><price>1</price>\
             <AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR></BOOK>",
        )
        .unwrap();
        assert_eq!(dtd.validate(&doc), Vec::<String>::new());
        // And its serialisation parses.
        assert!(Dtd::parse(&dtd.to_dtd_string()).is_ok());
    }

    #[test]
    fn duplicate_names_in_sequence_weaken_to_star() {
        let dtd = Dtd::parse("<!ELEMENT r (a,b,a)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
        let s = GlSchema::from_dtd(&dtd);
        let r = s.element("r").unwrap();
        assert_eq!(
            r.children.iter().find(|c| c.child == "a").unwrap().mult,
            Mult::Star
        );
    }

    #[test]
    fn mixed_and_any() {
        let dtd = Dtd::parse("<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)><!ELEMENT w ANY>")
            .unwrap();
        let s = GlSchema::from_dtd(&dtd);
        assert!(s.element("p").unwrap().text);
        let w = s.element("w").unwrap();
        assert!(w.text);
        assert_eq!(w.children.len(), 3); // p, em, w all allowed
    }
}
