//! Embedding enumeration: matching the extract graph against a document.
//!
//! Two code paths produce identical results:
//!
//! * the **indexed** path ([`match_rule`] / [`match_rule_with`]) resolves
//!   `NameTest`s to interned [`Symbol`]s once per rule, draws root and
//!   deep-edge candidates from a [`DocIndex`]'s postings lists (sliced to
//!   subtree intervals for asterisk edges), joins root binding sets on
//!   memoized 64-bit structural hashes (verifying hash-equal rows against
//!   canonical forms, so a collision can never produce a false join), and
//!   can fan per-root candidate matching across cores;
//! * the **scan** path ([`match_rule_scan`]) is the straightforward
//!   walk-the-whole-document implementation with string join keys, kept as
//!   the differential-testing oracle and benchmark baseline.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use gql_guard::{Guard, LimitKind};
use gql_ssdm::document::NodeKind;
use gql_ssdm::index::canonical;
use gql_ssdm::{DocIndex, Document, NodeId, Symbol};
use gql_trace::Trace;

use crate::ast::{ExtractGraph, NameTest, QEdge, QNodeId, QNodeKind, Rule};

use super::{content_hash, content_key};

/// Below this many root candidates, threads cost more than they save and
/// `MatchMode::Auto` stays sequential.
const PARALLEL_THRESHOLD: usize = 64;

/// The no-op guard the unguarded entry points thread through [`Ctx`].
static UNLIMITED: Guard = Guard::unlimited();

/// What a query node is bound to: a document node (elements) or a string
/// (text content, attribute values). Strings carry the element they were
/// read from, so two occurrences of the same value stay distinct matches —
/// aggregates count and sum per occurrence, not per distinct string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    Node(NodeId),
    Value {
        text: String,
        /// The element the text content / attribute was read from.
        origin: NodeId,
    },
}

impl Bound {
    pub fn value(text: impl Into<String>, origin: NodeId) -> Bound {
        Bound::Value {
            text: text.into(),
            origin,
        }
    }
}

/// One embedding: a partial map from query nodes to bound values. Nodes
/// under negated edges stay unbound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Binding {
    slots: Vec<Option<Bound>>,
}

impl Binding {
    fn with_capacity(n: usize) -> Self {
        Binding {
            slots: vec![None; n],
        }
    }

    pub fn get(&self, q: QNodeId) -> Option<&Bound> {
        self.slots.get(q.index()).and_then(Option::as_ref)
    }

    fn set(&mut self, q: QNodeId, b: Bound) {
        if self.slots.len() <= q.index() {
            self.slots.resize(q.index() + 1, None);
        }
        self.slots[q.index()] = Some(b);
    }

    /// Merge two disjoint bindings (panics on conflicting slots in debug).
    fn merge(&self, other: &Binding) -> Binding {
        let mut out = self.clone();
        for (i, slot) in other.slots.iter().enumerate() {
            if let Some(b) = slot {
                debug_assert!(
                    out.slots.get(i).is_none_or(Option::is_none),
                    "bindings overlap at q{i}"
                );
                out.set(QNodeId(i as u32), b.clone());
            }
        }
        out
    }

    /// Bound query-node ids, ascending.
    pub fn bound_ids(&self) -> impl Iterator<Item = QNodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| QNodeId(i as u32))
    }
}

/// How [`match_rule_with`] schedules per-root candidate matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatchMode {
    /// Parallel when there are enough candidates and more than one core;
    /// sequential otherwise. Output order is deterministic either way.
    #[default]
    Auto,
    /// Never spawn threads.
    Sequential,
    /// Spawn threads even for small candidate sets (used by equivalence
    /// tests; still falls back to sequential on a single-core machine).
    Parallel,
}

/// A rule's element/attribute name tests resolved against the document's
/// interner, once per rule. A name absent from the interner can never match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NameRes {
    Any,
    Sym(Symbol),
    Absent,
}

fn resolve_names(g: &ExtractGraph, doc: &Document) -> Vec<NameRes> {
    g.nodes
        .iter()
        .map(|n| match &n.kind {
            QNodeKind::Element(NameTest::Name(name)) => {
                doc.lookup_sym(name).map_or(NameRes::Absent, NameRes::Sym)
            }
            QNodeKind::Attribute(name) => {
                doc.lookup_sym(name).map_or(NameRes::Absent, NameRes::Sym)
            }
            QNodeKind::Element(NameTest::Wildcard) | QNodeKind::Text => NameRes::Any,
        })
        .collect()
}

/// Everything the recursive matching needs, borrowed once. With `idx: None`
/// the scan fallbacks are used and `names` is ignored.
struct Ctx<'a> {
    g: &'a ExtractGraph,
    doc: &'a Document,
    nslots: usize,
    idx: Option<&'a DocIndex>,
    names: Vec<NameRes>,
    /// Per-query-node candidate counters, allocated only when tracing.
    /// Atomics because parallel workers share them; each `match_edge` call
    /// adds once in bulk, so the counts are deterministic and the untraced
    /// cost is one `Option` branch per edge, never per candidate.
    cand: Option<Vec<AtomicU64>>,
    /// Resource budget. Matching is infallible (`Vec<Binding>` out), so a
    /// tripped guard makes the candidate loops bail early with *truncated*
    /// results; the `Result`-returning caller must `guard.checkpoint()`
    /// afterwards to convert the trip into an error and discard them.
    guard: &'a Guard,
}

impl Ctx<'_> {
    #[inline]
    fn add_candidates(&self, q: QNodeId, n: u64) {
        if let Some(cand) = &self.cand {
            cand[q.index()].fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Human-readable label for a query node, used in candidate counter names.
fn qnode_label(g: &ExtractGraph, q: QNodeId) -> String {
    match &g.node(q).kind {
        QNodeKind::Element(NameTest::Name(name)) => name.clone(),
        QNodeKind::Element(NameTest::Wildcard) => "*".to_string(),
        QNodeKind::Attribute(name) => format!("@{name}"),
        QNodeKind::Text => "text()".to_string(),
    }
}

/// Enumerate all embeddings of a rule's extract graph into `doc`, building
/// a fresh [`DocIndex`] for the document. Callers evaluating several rules
/// against one document should build the index once and use
/// [`match_rule_with`].
pub fn match_rule(rule: &Rule, doc: &Document) -> Vec<Binding> {
    let idx = DocIndex::build(doc);
    match_rule_with(rule, doc, &idx, MatchMode::Auto)
}

/// Enumerate all embeddings using a prebuilt index.
///
/// Roots are matched independently; their binding sets are then combined
/// left-to-right. Whenever a join constraint connects the next root to the
/// already-combined prefix, the combination is a hash join on the 64-bit
/// structural content hash instead of a cartesian product.
pub fn match_rule_with(
    rule: &Rule,
    doc: &Document,
    idx: &DocIndex,
    mode: MatchMode,
) -> Vec<Binding> {
    match_rule_traced(rule, doc, idx, mode, &Trace::disabled())
}

/// [`match_rule_with`] reporting into a [`Trace`]: per-root candidate-set
/// sizes and worker fan-out, per-combine join statistics (probes, matches,
/// hash-collision rejects), residual-filter counts and per-query-node
/// candidate totals. With `Trace::disabled()` this is exactly
/// `match_rule_with` — the counters are never allocated.
pub fn match_rule_traced(
    rule: &Rule,
    doc: &Document,
    idx: &DocIndex,
    mode: MatchMode,
    trace: &Trace,
) -> Vec<Binding> {
    match_rule_guarded(rule, doc, Some(idx), mode, trace, &UNLIMITED)
}

/// [`match_rule_traced`] under a resource [`Guard`], with an *optional*
/// index (`None` selects the scan path — the degradation target when an
/// index build fails). Budget probes fire per root candidate, per
/// alternative expansion in `match_node` and per join/product batch. A
/// tripped guard truncates the returned binding set; the caller must call
/// `guard.checkpoint()` afterwards and discard the output on error. A
/// panicking parallel worker is isolated at the scoped-thread boundary and
/// the root's candidates retried once sequentially (`degraded:
/// sequential_retry` trace note); if the retry panics too, an enabled guard
/// converts it into a `WorkerPanic` trip, an unlimited guard resumes the
/// panic.
pub fn match_rule_guarded(
    rule: &Rule,
    doc: &Document,
    idx: Option<&DocIndex>,
    mode: MatchMode,
    trace: &Trace,
    guard: &Guard,
) -> Vec<Binding> {
    let cx = Ctx {
        g: &rule.extract,
        doc,
        nslots: rule.extract.nodes.len(),
        idx,
        names: if idx.is_some() {
            resolve_names(&rule.extract, doc)
        } else {
            Vec::new()
        },
        cand: trace.is_enabled().then(|| {
            (0..rule.extract.nodes.len())
                .map(|_| AtomicU64::new(0))
                .collect()
        }),
        guard,
    };
    let out = run_match(&cx, mode, trace, None);
    emit_match_counters(&cx, trace, &out);
    out
}

/// Per-query-node candidate totals and the final binding count, emitted on
/// the enclosing span once a match completes (planned and unplanned alike).
fn emit_match_counters(cx: &Ctx, trace: &Trace, out: &[Binding]) {
    if let Some(cand) = &cx.cand {
        for (i, c) in cand.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                let label = qnode_label(cx.g, QNodeId(i as u32));
                trace.count(&format!("candidates[q{i}:{label}]"), n);
            }
        }
        trace.count("bindings", out.len() as u64);
    }
}

/// [`match_rule_guarded`] with a root *combine order* chosen by a planner
/// (e.g. `gql-infer`'s [`plan_root_order`] from summary cardinality bounds).
///
/// `order` is a permutation of root indices in declaration order; combining
/// starts from `order[0]` and hash-joins each next root against the
/// accumulated prefix, so a selective root can shrink the intermediate
/// result before a bulky one multiplies it. The *result is identical* to
/// declaration-order matching — rows carry their per-root provenance and
/// are sorted back into declaration order before bindings are materialised
/// — only the intermediate sizes change. An invalid `order` (wrong length,
/// not a permutation) falls back to declaration order.
///
/// [`plan_root_order`]: https://docs.rs/gql-infer
pub fn match_rule_planned(
    rule: &Rule,
    doc: &Document,
    idx: Option<&DocIndex>,
    mode: MatchMode,
    trace: &Trace,
    guard: &Guard,
    order: &[usize],
) -> Vec<Binding> {
    let cx = Ctx {
        g: &rule.extract,
        doc,
        nslots: rule.extract.nodes.len(),
        idx,
        names: if idx.is_some() {
            resolve_names(&rule.extract, doc)
        } else {
            Vec::new()
        },
        cand: trace.is_enabled().then(|| {
            (0..rule.extract.nodes.len())
                .map(|_| AtomicU64::new(0))
                .collect()
        }),
        guard,
    };
    let plan = valid_plan(order, rule.extract.roots.len()).then_some(order);
    let out = run_match(&cx, mode, trace, plan);
    emit_match_counters(&cx, trace, &out);
    out
}

/// A plan is usable when it is a true permutation of `0..nroots` and
/// actually reorders something.
fn valid_plan(order: &[usize], nroots: usize) -> bool {
    if order.len() != nroots || nroots < 2 {
        return false;
    }
    let mut seen = vec![false; nroots];
    for &ri in order {
        if ri >= nroots || seen[ri] {
            return false;
        }
        seen[ri] = true;
    }
    order.iter().enumerate().any(|(i, &ri)| i != ri)
}

/// Reference implementation: whole-document scans for candidates and string
/// content keys for joins. Kept as the oracle for the indexed path (property
/// tests assert `match_rule_scan ≡ match_rule`) and as the benchmark
/// baseline.
pub fn match_rule_scan(rule: &Rule, doc: &Document) -> Vec<Binding> {
    match_rule_guarded(
        rule,
        doc,
        None,
        MatchMode::Sequential,
        &Trace::disabled(),
        &UNLIMITED,
    )
}

fn norm_pair(a: QNodeId, b: QNodeId) -> (QNodeId, QNodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn run_match(cx: &Ctx, mode: MatchMode, trace: &Trace, plan: Option<&[usize]>) -> Vec<Binding> {
    let g = cx.g;
    if g.roots.is_empty() {
        return Vec::new();
    }
    if trace.is_enabled() {
        trace.note("path", if cx.idx.is_some() { "indexed" } else { "scan" });
    }

    // Per-root binding sets.
    let per_root: Vec<Vec<Binding>> = g
        .roots
        .iter()
        .enumerate()
        .map(|(ri, &root)| {
            let label = if trace.is_enabled() {
                format!("root[{ri}:{}]", qnode_label(g, root))
            } else {
                String::new()
            };
            let _s = trace.span(&label);
            let out = match_root(cx, root, mode, trace);
            trace.count("bindings", out.len() as u64);
            out
        })
        .collect();

    // Which root does each query node belong to?
    let mut owner: Vec<usize> = vec![usize::MAX; g.nodes.len()];
    for (ri, &root) in g.roots.iter().enumerate() {
        let mut stack = vec![root];
        while let Some(q) = stack.pop() {
            owner[q.index()] = ri;
            stack.extend(g.node(q).children.iter().map(|e| e.target));
        }
    }

    // Combine roots, remembering which joins the hash-join pass already
    // enforced (the residual filter can skip them). A planner-supplied
    // order takes the provenance-tracking path; the default is the plain
    // left-to-right declaration-order merge.
    let mut enforced: HashSet<(QNodeId, QNodeId)> = HashSet::new();
    let mut combined: Vec<Binding> = if let Some(order) = plan {
        combine_planned(cx, &per_root, &owner, order, &mut enforced, trace)
    } else {
        combine_declared(cx, &per_root, &owner, &mut enforced, trace)
    };

    // Residual joins within a single root (or spanning more than two) are
    // verified by filtering; hash-enforced pairs are already satisfied.
    let residual: Vec<(QNodeId, QNodeId)> = g
        .joins
        .iter()
        .copied()
        .filter(|&(a, b)| !enforced.contains(&norm_pair(a, b)))
        .collect();
    if !residual.is_empty() {
        let span = trace.span("residual_filter");
        let before = combined.len();
        match cx.idx {
            Some(idx) => {
                let mut cache = KeyCache::new(cx.doc);
                combined.retain(|b| {
                    residual.iter().all(|&(x, y)| match (b.get(x), b.get(y)) {
                        (Some(bx), Some(by)) => {
                            content_hash(cx.doc, idx, bx) == content_hash(cx.doc, idx, by)
                                && cache.content_eq(bx, by)
                        }
                        _ => false,
                    })
                });
            }
            None => {
                combined.retain(|b| {
                    residual.iter().all(|&(x, y)| match (b.get(x), b.get(y)) {
                        (Some(bx), Some(by)) => content_key(cx.doc, bx) == content_key(cx.doc, by),
                        _ => false,
                    })
                });
            }
        }
        if trace.is_enabled() {
            trace.count("joins", residual.len() as u64);
            trace.count("rows_in", before as u64);
            trace.count("rows_out", combined.len() as u64);
        }
        drop(span);
    }
    combined
}

/// Declaration-order combine: fold the per-root binding sets left to
/// right, hash-joining whenever a join constraint connects the next root
/// to the accumulated prefix and taking the cartesian product otherwise.
fn combine_declared(
    cx: &Ctx,
    per_root: &[Vec<Binding>],
    owner: &[usize],
    enforced: &mut HashSet<(QNodeId, QNodeId)>,
    trace: &Trace,
) -> Vec<Binding> {
    let g = cx.g;
    let mut combined: Vec<Binding> = per_root[0].clone();
    for (ri, right) in per_root.iter().enumerate().skip(1) {
        // Joins whose endpoints span the combined prefix and this root.
        let cross_joins: Vec<(QNodeId, QNodeId)> = g
            .joins
            .iter()
            .filter_map(|&(a, b)| {
                let (oa, ob) = (owner[a.index()], owner[b.index()]);
                if oa < ri && ob == ri {
                    Some((a, b))
                } else if ob < ri && oa == ri {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect();
        let label = if trace.is_enabled() {
            format!("combine[{ri}]")
        } else {
            String::new()
        };
        let span = trace.span(&label);
        if trace.is_enabled() {
            trace.count("left_rows", combined.len() as u64);
            trace.count("right_rows", right.len() as u64);
        }
        if !cx.guard.ok() {
            return Vec::new();
        }
        combined = if cross_joins.is_empty() {
            trace.note("kind", "product");
            product(&combined, right, cx.guard)
        } else {
            trace.note("kind", "hash_join");
            enforced.extend(cross_joins.iter().map(|&(a, b)| norm_pair(a, b)));
            let mut stats = JoinStats::default();
            let joined = match cx.idx {
                Some(idx) => hash_join_hashed(
                    cx.doc,
                    &combined,
                    right,
                    &cross_joins,
                    |b| content_hash(cx.doc, idx, b),
                    &mut stats,
                    cx.guard,
                ),
                None => hash_join_strings(cx.doc, &combined, right, &cross_joins, cx.guard),
            };
            if trace.is_enabled() && cx.idx.is_some() {
                trace.count("probes", stats.probes);
                trace.count("hash_matches", stats.hash_matches);
                trace.count("collision_rejects", stats.collision_rejects);
            }
            joined
        };
        trace.count("out_rows", combined.len() as u64);
        drop(span);
        if combined.is_empty() {
            return combined;
        }
    }
    combined
}

/// The join column `c` of an accumulated provenance row `t`: read straight
/// off the owning root's per-root binding, so intermediate rows never clone
/// binding slots.
fn row_col<'a>(
    per_root: &'a [Vec<Binding>],
    owner: &[usize],
    t: &[u32],
    c: QNodeId,
) -> Option<&'a Bound> {
    let o = owner[c.index()];
    per_root[o][t[o] as usize].get(c)
}

/// Planner-order combine: the same relation as [`combine_declared`], with
/// the roots merged in `order` instead of declaration order, so a selective
/// root can shrink the intermediate result before a bulky one multiplies
/// it. Intermediate rows are provenance tuples — one per-root binding index
/// per root — and are sorted back into declaration-order lexicographic
/// sequence before bindings are materialised, which reproduces exactly the
/// binding list the declaration-order combine emits (products and hash
/// joins both emit left-to-right, right-index-ascending): construct output
/// cannot depend on the plan.
fn combine_planned(
    cx: &Ctx,
    per_root: &[Vec<Binding>],
    owner: &[usize],
    order: &[usize],
    enforced: &mut HashSet<(QNodeId, QNodeId)>,
    trace: &Trace,
) -> Vec<Binding> {
    let g = cx.g;
    let nroots = per_root.len();
    let first = order[0];
    if trace.is_enabled() {
        let plan = order
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",");
        trace.note("combine_plan", &plan);
    }
    let mut processed = vec![false; nroots];
    processed[first] = true;
    let mut rows: Vec<Vec<u32>> = (0..per_root[first].len() as u32)
        .map(|i| {
            let mut t = vec![u32::MAX; nroots];
            t[first] = i;
            t
        })
        .collect();
    for (k, &ri) in order.iter().enumerate().skip(1) {
        let right = &per_root[ri];
        // Joins whose endpoints span the processed prefix and this root.
        let cross_joins: Vec<(QNodeId, QNodeId)> = g
            .joins
            .iter()
            .filter_map(|&(a, b)| {
                let (oa, ob) = (owner[a.index()], owner[b.index()]);
                if oa == usize::MAX || ob == usize::MAX {
                    None
                } else if processed[oa] && ob == ri {
                    Some((a, b))
                } else if processed[ob] && oa == ri {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect();
        let label = if trace.is_enabled() {
            format!("combine[{k}:root {ri}]")
        } else {
            String::new()
        };
        let span = trace.span(&label);
        if trace.is_enabled() {
            trace.count("left_rows", rows.len() as u64);
            trace.count("right_rows", right.len() as u64);
        }
        if !cx.guard.ok() {
            return Vec::new();
        }
        let next = if cross_joins.is_empty() {
            trace.note("kind", "product");
            let mut out = Vec::new();
            for t in &rows {
                // Budget probe: one per output batch (this row's fan-out).
                if !cx.guard.charge_matches(right.len() as u64) {
                    break;
                }
                for i in 0..right.len() as u32 {
                    let mut nt = t.clone();
                    nt[ri] = i;
                    out.push(nt);
                }
            }
            out
        } else {
            trace.note("kind", "hash_join");
            enforced.extend(cross_joins.iter().map(|&(a, b)| norm_pair(a, b)));
            let left_cols: Vec<QNodeId> = cross_joins.iter().map(|&(l, _)| l).collect();
            let right_cols: Vec<QNodeId> = cross_joins.iter().map(|&(_, r)| r).collect();
            let mut stats = JoinStats::default();
            let out = match cx.idx {
                Some(idx) => {
                    let hash = |b: &Bound| content_hash(cx.doc, idx, b);
                    let mut table: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
                    for (i, r) in right.iter().enumerate() {
                        let key: Option<Vec<u64>> =
                            right_cols.iter().map(|&c| r.get(c).map(hash)).collect();
                        if let Some(k) = key {
                            table.entry(k).or_default().push(i as u32);
                        }
                    }
                    let mut cache = KeyCache::new(cx.doc);
                    let mut out = Vec::new();
                    for t in &rows {
                        let key: Option<Vec<u64>> = left_cols
                            .iter()
                            .map(|&c| row_col(per_root, owner, t, c).map(hash))
                            .collect();
                        let Some(k) = key else {
                            continue;
                        };
                        stats.probes += 1;
                        let Some(matches) = table.get(&k) else {
                            continue;
                        };
                        // Budget probe: one per hash-probe batch.
                        if !cx.guard.charge_matches(matches.len() as u64) {
                            break;
                        }
                        for &i in matches {
                            stats.hash_matches += 1;
                            let r = &right[i as usize];
                            let verified = cross_joins.iter().all(|&(lc, rc)| {
                                match (row_col(per_root, owner, t, lc), r.get(rc)) {
                                    (Some(a), Some(b)) => cache.content_eq(a, b),
                                    _ => false,
                                }
                            });
                            if verified {
                                let mut nt = t.clone();
                                nt[ri] = i;
                                out.push(nt);
                            } else {
                                stats.collision_rejects += 1;
                            }
                        }
                    }
                    out
                }
                None => {
                    let mut table: HashMap<String, Vec<u32>> = HashMap::new();
                    let key_of = |parts: Vec<Option<String>>| -> Option<String> {
                        let parts: Option<Vec<String>> = parts.into_iter().collect();
                        parts.map(|p| p.join("\u{1}"))
                    };
                    for (i, r) in right.iter().enumerate() {
                        let key = key_of(
                            right_cols
                                .iter()
                                .map(|&c| r.get(c).map(|b| content_key(cx.doc, b)))
                                .collect(),
                        );
                        if let Some(k) = key {
                            table.entry(k).or_default().push(i as u32);
                        }
                    }
                    let mut out = Vec::new();
                    for t in &rows {
                        let key = key_of(
                            left_cols
                                .iter()
                                .map(|&c| {
                                    row_col(per_root, owner, t, c).map(|b| content_key(cx.doc, b))
                                })
                                .collect(),
                        );
                        let Some(k) = key else {
                            continue;
                        };
                        let Some(matches) = table.get(&k) else {
                            continue;
                        };
                        if !cx.guard.charge_matches(matches.len() as u64) {
                            break;
                        }
                        for &i in matches {
                            let mut nt = t.clone();
                            nt[ri] = i;
                            out.push(nt);
                        }
                    }
                    out
                }
            };
            if trace.is_enabled() && cx.idx.is_some() {
                trace.count("probes", stats.probes);
                trace.count("hash_matches", stats.hash_matches);
                trace.count("collision_rejects", stats.collision_rejects);
            }
            out
        };
        rows = next;
        processed[ri] = true;
        trace.count("out_rows", rows.len() as u64);
        drop(span);
        if rows.is_empty() {
            break;
        }
    }

    // Restore declaration order: lexicographic in the provenance tuple is
    // exactly the sequence the declaration-order combine produces.
    rows.sort_unstable();
    rows.into_iter()
        .map(|t| {
            let mut b: Option<Binding> = None;
            for (ro, &i) in t.iter().enumerate() {
                if i == u32::MAX {
                    continue;
                }
                let rb = &per_root[ro][i as usize];
                b = Some(match b {
                    Some(acc) => acc.merge(rb),
                    None => rb.clone(),
                });
            }
            b.unwrap_or_default()
        })
        .collect()
}

fn product(left: &[Binding], right: &[Binding], guard: &Guard) -> Vec<Binding> {
    // Only pre-size when unguarded: a guarded combinatorial product must
    // not allocate `left × right` rows up front only to trip immediately.
    let mut out = if guard.is_enabled() {
        Vec::new()
    } else {
        Vec::with_capacity(left.len() * right.len())
    };
    for l in left {
        // Budget probe: one per output batch (this left row's fan-out).
        if !guard.charge_matches(right.len() as u64) {
            break;
        }
        for r in right {
            out.push(l.merge(r));
        }
    }
    out
}

/// Join two binding sets on string content keys (the scan baseline).
fn hash_join_strings(
    doc: &Document,
    left: &[Binding],
    right: &[Binding],
    joins: &[(QNodeId, QNodeId)],
    guard: &Guard,
) -> Vec<Binding> {
    // Key = tuple of content keys over the join columns.
    let key_of = |b: &Binding, cols: &[QNodeId]| -> Option<String> {
        let mut parts = Vec::with_capacity(cols.len());
        for &c in cols {
            parts.push(content_key(doc, b.get(c)?));
        }
        Some(parts.join("\u{1}"))
    };
    let left_cols: Vec<QNodeId> = joins.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<QNodeId> = joins.iter().map(|&(_, r)| r).collect();
    let mut index: HashMap<String, Vec<&Binding>> = HashMap::new();
    for r in right {
        if let Some(k) = key_of(r, &right_cols) {
            index.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left {
        if let Some(k) = key_of(l, &left_cols) {
            if let Some(matches) = index.get(&k) {
                // Budget probe: one per probe batch.
                if !guard.charge_matches(matches.len() as u64) {
                    break;
                }
                for r in matches {
                    out.push(l.merge(r));
                }
            }
        }
    }
    out
}

/// What one hash join did, reported into the trace when profiling: probe
/// rows offered, hash-equal candidate pairs, and pairs rejected by canonical
/// verification (true hash collisions — expected ≈ 0 with the production
/// hasher, non-zero only under adversarial or test hashers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JoinStats {
    pub probes: u64,
    pub hash_matches: u64,
    pub collision_rejects: u64,
}

/// Join two binding sets on `u64` content hashes. Hash-equal candidate rows
/// are verified with [`KeyCache::content_eq`] (memoized canonical forms), so
/// a hash collision can never produce a false join — correctness does not
/// depend on the hash. The hasher is injectable so tests can force
/// collisions.
#[allow(clippy::too_many_arguments)]
fn hash_join_hashed<F: Fn(&Bound) -> u64>(
    doc: &Document,
    left: &[Binding],
    right: &[Binding],
    joins: &[(QNodeId, QNodeId)],
    hash: F,
    stats: &mut JoinStats,
    guard: &Guard,
) -> Vec<Binding> {
    let left_cols: Vec<QNodeId> = joins.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<QNodeId> = joins.iter().map(|&(_, r)| r).collect();
    let key_of = |b: &Binding, cols: &[QNodeId]| -> Option<Vec<u64>> {
        cols.iter().map(|&c| b.get(c).map(&hash)).collect()
    };
    let mut table: HashMap<Vec<u64>, Vec<&Binding>> = HashMap::new();
    for r in right {
        if let Some(k) = key_of(r, &right_cols) {
            table.entry(k).or_default().push(r);
        }
    }
    let mut cache = KeyCache::new(doc);
    let mut out = Vec::new();
    for l in left {
        let Some(k) = key_of(l, &left_cols) else {
            continue;
        };
        stats.probes += 1;
        let Some(matches) = table.get(&k) else {
            continue;
        };
        // Budget probe: one per hash-probe batch (this key's bucket).
        if !guard.charge_matches(matches.len() as u64) {
            break;
        }
        for r in matches {
            stats.hash_matches += 1;
            let verified = joins.iter().all(|&(lc, rc)| match (l.get(lc), r.get(rc)) {
                (Some(a), Some(b)) => cache.content_eq(a, b),
                _ => false,
            });
            if verified {
                out.push(l.merge(r));
            } else {
                stats.collision_rejects += 1;
            }
        }
    }
    out
}

/// Memoizes canonical forms of nodes compared during one join/filter pass,
/// so collision verification renders each distinct node at most once.
pub(crate) struct KeyCache<'d> {
    doc: &'d Document,
    nodes: HashMap<NodeId, Box<str>>,
}

impl<'d> KeyCache<'d> {
    pub(crate) fn new(doc: &'d Document) -> Self {
        KeyCache {
            doc,
            nodes: HashMap::new(),
        }
    }

    /// Content equality of two bounds — the `content_key` equality relation
    /// without rebuilding strings for nodes already rendered.
    pub(crate) fn content_eq(&mut self, a: &Bound, b: &Bound) -> bool {
        match (a, b) {
            (Bound::Value { text: ta, .. }, Bound::Value { text: tb, .. }) => ta == tb,
            (Bound::Node(na), Bound::Node(nb)) => {
                if na == nb {
                    return true;
                }
                self.ensure(*na);
                self.ensure(*nb);
                self.nodes[na] == self.nodes[nb]
            }
            // A value key ("v:…") never equals a node's canonical form.
            _ => false,
        }
    }

    fn ensure(&mut self, n: NodeId) {
        let doc = self.doc;
        self.nodes
            .entry(n)
            .or_insert_with(|| canonical(doc, n).into_boxed_str());
    }
}

/// All embeddings of the pattern tree rooted at `root` anywhere in the
/// document, optionally fanning candidates across threads. Chunk results are
/// concatenated in candidate order, so output is deterministic regardless of
/// scheduling.
fn match_root(cx: &Ctx, root: QNodeId, mode: MatchMode, trace: &Trace) -> Vec<Binding> {
    let candidates: Vec<NodeId> = match cx.idx {
        Some(idx) => match (&cx.g.node(root).kind, cx.names[root.index()]) {
            (QNodeKind::Element(_), NameRes::Sym(sym)) => idx.elements_named_sym(sym).to_vec(),
            (QNodeKind::Element(_), NameRes::Any) => idx.elements().to_vec(),
            // Absent names cannot match; check.rs guarantees element roots.
            _ => Vec::new(),
        },
        None => match &cx.g.node(root).kind {
            QNodeKind::Element(NameTest::Name(name)) => cx.doc.elements_named(name).collect(),
            QNodeKind::Element(NameTest::Wildcard) => cx
                .doc
                .descendants(cx.doc.root())
                .filter(|&d| cx.doc.kind(d) == NodeKind::Element)
                .collect(),
            _ => Vec::new(),
        },
    };

    cx.add_candidates(root, candidates.len() as u64);

    let threads = cx.guard.cap_workers(match mode {
        MatchMode::Sequential => 1,
        MatchMode::Parallel | MatchMode::Auto => {
            if mode == MatchMode::Auto && candidates.len() < PARALLEL_THRESHOLD {
                1
            } else {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(candidates.len().max(1))
            }
        }
    });
    if trace.is_enabled() {
        trace.count("root_candidates", candidates.len() as u64);
        trace.count("workers", threads as u64);
    }

    let run_range = |range: &[NodeId]| -> Vec<Binding> {
        let mut out = Vec::new();
        for &c in range {
            // Budget probe: one per root candidate (covers deadline and
            // cancellation), plus the bindings it produced.
            if !cx.guard.ok() {
                break;
            }
            let bs = match_node(cx, root, c);
            if !cx.guard.charge_matches(bs.len() as u64) {
                break;
            }
            out.extend(bs);
        }
        out
    };

    if threads <= 1 {
        return run_range(&candidates);
    }
    let chunk_size = candidates.len().div_ceil(threads);
    let mut results: Vec<Vec<Binding>> = Vec::with_capacity(threads);
    let mut worker_panicked = false;
    std::thread::scope(|s| {
        let handles: Vec<_> = candidates
            .chunks(chunk_size)
            .enumerate()
            .map(|(wi, chunk)| {
                let run_range = &run_range;
                s.spawn(move || {
                    if gql_guard::fault::active() {
                        gql_guard::fault::maybe_panic_worker(wi);
                    }
                    run_range(chunk)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                // A panicking worker is contained here; degradation happens
                // after the scope so the remaining workers finish first.
                Err(_) => worker_panicked = true,
            }
        }
    });
    if worker_panicked {
        // Degradation ladder, parallel → sequential: retry the whole
        // candidate set once on this thread. If the retry panics too, an
        // enabled guard converts it into a clean WorkerPanic trip (the
        // caller's checkpoint surfaces it); an unlimited guard propagates
        // the panic as before.
        trace.note("degraded", "sequential_retry");
        let retry =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_range(&candidates)));
        return match retry {
            Ok(r) => r,
            Err(payload) => {
                if cx.guard.is_enabled() {
                    cx.guard.trip_external(LimitKind::WorkerPanic);
                    Vec::new()
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        };
    }
    if trace.is_enabled() {
        // Worker utilisation: how evenly the per-chunk binding production
        // spread. Deterministic (chunking is by candidate order).
        let loads: Vec<String> = results.iter().map(|r| r.len().to_string()).collect();
        trace.note("worker_out", &loads.join("/"));
    }
    results.into_iter().flatten().collect()
}

/// All embeddings of the subtree at `q` assuming it is matched at `data`.
fn match_node(cx: &Ctx, q: QNodeId, data: NodeId) -> Vec<Binding> {
    let (g, doc) = (cx.g, cx.doc);
    let node = g.node(q);
    // Kind/name/predicate check.
    match &node.kind {
        QNodeKind::Element(test) => {
            if doc.kind(data) != NodeKind::Element {
                return Vec::new();
            }
            let name_ok = if cx.idx.is_some() {
                match cx.names[q.index()] {
                    NameRes::Any => true,
                    NameRes::Sym(sym) => doc.name_sym(data) == Some(sym),
                    NameRes::Absent => false,
                }
            } else {
                doc.name(data).is_none_or(|name| test.matches(name))
            };
            if !name_ok {
                return Vec::new();
            }
            if !node.predicate.is_trivial() && !node.predicate.eval(&doc.text_content(data)) {
                return Vec::new();
            }
        }
        // Text/attribute circles are matched by `match_edge` against the
        // parent; reaching here would be a checker bug.
        _ => return Vec::new(),
    }

    let mut partials = vec![{
        let mut b = Binding::with_capacity(cx.nslots);
        b.set(q, Bound::Node(data));
        b
    }];

    let ordered = g.ordered[q.index()];
    for edge in &node.children {
        let alternatives = match_edge(cx, edge, data);
        if edge.negated {
            if !alternatives.is_empty() {
                return Vec::new();
            }
            continue;
        }
        if alternatives.is_empty() {
            return Vec::new();
        }
        // Budget probe: charge the expansion *before* allocating it, so an
        // exploding partials × alternatives product trips instead of
        // allocating.
        if !cx
            .guard
            .charge_matches((partials.len() * alternatives.len()) as u64)
        {
            return Vec::new();
        }
        let mut next = Vec::with_capacity(partials.len() * alternatives.len());
        for p in &partials {
            for a in &alternatives {
                next.push(p.merge(a));
            }
        }
        partials = next;
    }

    if ordered {
        // Direct element children must be bound in sibling order.
        let element_edges: Vec<&QEdge> = node
            .children
            .iter()
            .filter(|e| {
                !e.negated && !e.deep && matches!(g.node(e.target).kind, QNodeKind::Element(_))
            })
            .collect();
        partials.retain(|b| {
            let mut last = -1i64;
            for e in &element_edges {
                if let Some(Bound::Node(n)) = b.get(e.target) {
                    let idx = doc.sibling_index(*n) as i64;
                    if idx < last {
                        return false;
                    }
                    last = idx;
                }
            }
            true
        });
    }

    partials
}

/// Alternatives for one containment edge below a matched element.
fn match_edge(cx: &Ctx, edge: &QEdge, parent: NodeId) -> Vec<Binding> {
    let (g, doc) = (cx.g, cx.doc);
    let target = g.node(edge.target);
    match &target.kind {
        QNodeKind::Attribute(name) => {
            let mut out = Vec::new();
            let mut considered = 0u64;
            let mut consider = |el: NodeId| {
                considered += 1;
                if let Some(v) = doc.attr(el, name) {
                    if target.predicate.eval(v) {
                        let mut b = Binding::with_capacity(cx.nslots);
                        b.set(edge.target, Bound::value(v, el));
                        out.push(b);
                    }
                }
            };
            if edge.deep {
                match cx.idx {
                    Some(idx) => {
                        // Only elements that carry the attribute, restricted
                        // to the subtree interval.
                        if let NameRes::Sym(sym) = cx.names[edge.target.index()] {
                            for &d in idx.with_attr_in(sym, parent, true) {
                                consider(d);
                            }
                        }
                    }
                    None => {
                        for d in doc.descendants_or_self(parent) {
                            if doc.kind(d) == NodeKind::Element {
                                consider(d);
                            }
                        }
                    }
                }
            } else {
                consider(parent);
            }
            cx.add_candidates(edge.target, considered);
            out
        }
        QNodeKind::Text => {
            let mut out = Vec::new();
            let mut considered = 0u64;
            let mut consider = |el: NodeId| {
                considered += 1;
                let has_text = doc
                    .children(el)
                    .iter()
                    .any(|&c| doc.kind(c) == NodeKind::Text);
                if has_text {
                    let v = doc.text_content(el);
                    if target.predicate.eval(&v) {
                        let mut b = Binding::with_capacity(cx.nslots);
                        b.set(edge.target, Bound::value(v, el));
                        out.push(b);
                    }
                }
            };
            if edge.deep {
                match cx.idx {
                    Some(idx) => {
                        for &d in idx.with_text_in(parent, true) {
                            consider(d);
                        }
                    }
                    None => {
                        for d in doc.descendants_or_self(parent) {
                            if doc.kind(d) == NodeKind::Element {
                                consider(d);
                            }
                        }
                    }
                }
            } else {
                consider(parent);
            }
            cx.add_candidates(edge.target, considered);
            out
        }
        QNodeKind::Element(_) => {
            let mut out = Vec::new();
            let mut considered = 0u64;
            if edge.deep {
                match cx.idx {
                    Some(idx) => match cx.names[edge.target.index()] {
                        NameRes::Sym(sym) => {
                            let cands = idx.named_in(sym, parent, false);
                            considered = cands.len() as u64;
                            for &d in cands {
                                out.extend(match_node(cx, edge.target, d));
                            }
                        }
                        NameRes::Any => {
                            let cands = idx.elements_in(parent, false);
                            considered = cands.len() as u64;
                            for &d in cands {
                                out.extend(match_node(cx, edge.target, d));
                            }
                        }
                        NameRes::Absent => {}
                    },
                    None => {
                        for d in doc.descendants(parent) {
                            if doc.kind(d) == NodeKind::Element {
                                considered += 1;
                                out.extend(match_node(cx, edge.target, d));
                            }
                        }
                    }
                }
            } else {
                for c in doc.child_elements(parent) {
                    considered += 1;
                    out.extend(match_node(cx, edge.target, c));
                }
            }
            cx.add_candidates(edge.target, considered);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994'><title>TCP/IP</title><price>65.95</price>\
                 <author><last>Stevens</last></author></book>\
               <book year='2000'><title>Data on the Web</title><price>39.95</price>\
                 <author><last>Abiteboul</last></author>\
                 <author><last>Buneman</last></author></book>\
               <article year='2000'><title>XML-GL</title></article>\
             </bib>",
        )
        .unwrap()
    }

    fn rule(q: Q) -> Rule {
        RuleBuilder::new()
            .extract(q)
            .construct(C::elem("out"))
            .build()
            .unwrap()
    }

    #[test]
    fn root_matches_anywhere() {
        let d = doc();
        assert_eq!(match_rule(&rule(Q::elem("book")), &d).len(), 2);
        assert_eq!(match_rule(&rule(Q::elem("title")), &d).len(), 3);
        assert_eq!(match_rule(&rule(Q::elem("nothing")), &d).len(), 0);
        assert_eq!(match_rule(&rule(Q::any()), &d).len(), 15);
    }

    #[test]
    fn attribute_predicates_filter() {
        let d = doc();
        let r = rule(Q::elem("book").child(Q::attr("year").pred(CmpOp::Ge, "2000")));
        assert_eq!(match_rule(&r, &d).len(), 1);
        let r = rule(Q::elem("book").child(Q::attr("year")));
        assert_eq!(match_rule(&r, &d).len(), 2);
        let r = rule(Q::elem("book").child(Q::attr("isbn")));
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn text_circles_bind_content() {
        let d = doc();
        let r = rule(Q::elem("title").child(Q::text().var("t")));
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 3);
        let q = r.extract.by_var("t").unwrap();
        let texts: Vec<String> = ms
            .iter()
            .map(|m| super::super::bound_text(&d, m.get(q).unwrap()))
            .collect();
        assert!(texts.contains(&"TCP/IP".to_string()));
    }

    #[test]
    fn multiple_children_multiply_embeddings() {
        let d = doc();
        // book with an author: second book has two embeddings.
        let r = rule(Q::elem("book").child(Q::elem("author").var("a")));
        assert_eq!(match_rule(&r, &d).len(), 3);
    }

    #[test]
    fn deep_edges_match_descendants() {
        let d = doc();
        let r = rule(Q::elem("bib").deep_child(Q::elem("last").var("l")));
        assert_eq!(match_rule(&r, &d).len(), 3);
        // Direct edge does not reach them.
        let r = rule(Q::elem("bib").child(Q::elem("last")));
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn negation() {
        let d = doc();
        // Books without an <article> sibling constraint is meaningless;
        // negate a child instead: books with no author → none; articles with
        // no author → one.
        let r = rule(Q::elem("book").without(Q::elem("author")));
        assert_eq!(match_rule(&r, &d).len(), 0);
        let r = rule(Q::elem("article").without(Q::elem("author")));
        assert_eq!(match_rule(&r, &d).len(), 1);
    }

    #[test]
    fn conjunctive_branches() {
        let d = doc();
        let r = rule(
            Q::elem("book")
                .child(Q::attr("year").pred(CmpOp::Eq, "2000"))
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "Web"))),
        );
        assert_eq!(match_rule(&r, &d).len(), 1);
        // Same branches, impossible combination.
        let r = rule(
            Q::elem("book")
                .child(Q::attr("year").pred(CmpOp::Eq, "1994"))
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "Web"))),
        );
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn element_predicate_sees_text_content() {
        let d = doc();
        let r = rule(Q::elem("last").pred(CmpOp::Eq, "Stevens"));
        assert_eq!(match_rule(&r, &d).len(), 1);
    }

    #[test]
    fn cross_tree_join() {
        let d = Document::parse_str(
            "<shop><products>\
               <product><name>apple</name><vendor>Vand</vendor></product>\
               <product><name>pear</name><vendor>Ghost</vendor></product>\
             </products>\
             <vendors><vendor><name>Vand</name><country>nl</country></vendor></vendors></shop>",
        )
        .unwrap();
        let r = RuleBuilder::new()
            .extract(
                Q::elem("product")
                    .var("p")
                    .child(Q::elem("vendor").child(Q::text().var("v1"))),
            )
            .extract(
                Q::elem("vendors")
                    .child(Q::elem("vendor").child(Q::elem("name").child(Q::text().var("v2")))),
            )
            .join("v1", "v2")
            .construct(C::elem("out").child(C::all("p")))
            .build()
            .unwrap();
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 1);
        let p = r.extract.by_var("p").unwrap();
        match ms[0].get(p).unwrap() {
            Bound::Node(n) => {
                assert!(d.text_content(*n).contains("apple"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cartesian_product_without_join() {
        let d = doc();
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .extract(Q::elem("article").var("a"))
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_eq!(match_rule(&r, &d).len(), 2); // 2 books × 1 article
    }

    #[test]
    fn ordered_matching() {
        let d = Document::parse_str("<r><a/><b/></r><!-- -->").unwrap();
        let ok = rule(
            Q::elem("r")
                .ordered()
                .child(Q::elem("a"))
                .child(Q::elem("b")),
        );
        assert_eq!(match_rule(&ok, &d).len(), 1);
        let bad = rule(
            Q::elem("r")
                .ordered()
                .child(Q::elem("b"))
                .child(Q::elem("a")),
        );
        assert_eq!(match_rule(&bad, &d).len(), 0);
        // Unordered succeeds both ways.
        let free = rule(Q::elem("r").child(Q::elem("b")).child(Q::elem("a")));
        assert_eq!(match_rule(&free, &d).len(), 1);
    }

    #[test]
    fn wildcard_with_structure() {
        let d = doc();
        // Any element that has a title child with text containing 'XML'.
        let r = rule(
            Q::any()
                .var("x")
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "XML"))),
        );
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn deep_attribute_edge() {
        let d = doc();
        // bib ~deep~> @year picks up year attributes at any depth.
        let r = rule(Q::elem("bib").deep_child(Q::attr("year").var("y")));
        assert_eq!(match_rule(&r, &d).len(), 3);
    }

    /// Every rule shape exercised above, for the equivalence tests below.
    fn rule_zoo() -> Vec<Rule> {
        vec![
            rule(Q::elem("book")),
            rule(Q::any()),
            rule(Q::elem("book").child(Q::attr("year").pred(CmpOp::Ge, "2000"))),
            rule(Q::elem("bib").deep_child(Q::elem("last").var("l"))),
            rule(Q::elem("bib").deep_child(Q::attr("year").var("y"))),
            rule(Q::elem("title").child(Q::text().var("t"))),
            rule(Q::elem("book").without(Q::elem("author"))),
            rule(
                Q::elem("r")
                    .ordered()
                    .child(Q::elem("a"))
                    .child(Q::elem("b")),
            ),
            RuleBuilder::new()
                .extract(Q::elem("book").var("b").child(Q::elem("title").var("t1")))
                .extract(Q::elem("article").child(Q::elem("title").var("t2")))
                .join("t1", "t2")
                .construct(C::elem("out"))
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn indexed_path_equals_scan_path() {
        let d = doc();
        let idx = DocIndex::build(&d);
        for r in rule_zoo() {
            assert_eq!(
                match_rule_with(&r, &d, &idx, MatchMode::Sequential),
                match_rule_scan(&r, &d),
            );
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let d = doc();
        let idx = DocIndex::build(&d);
        for r in rule_zoo() {
            assert_eq!(
                match_rule_with(&r, &d, &idx, MatchMode::Parallel),
                match_rule_with(&r, &d, &idx, MatchMode::Sequential),
            );
        }
    }

    #[test]
    fn hash_collision_falls_back_to_canonical_verification() {
        let d = doc();
        let idx = DocIndex::build(&d);
        let origin = d.root_element().unwrap();
        let mk = |q: u32, text: &str| {
            let mut b = Binding::with_capacity(2);
            b.set(QNodeId(q), Bound::value(text, origin));
            b
        };
        let left = vec![mk(0, "x"), mk(0, "y")];
        let right = vec![mk(1, "x"), mk(1, "z")];
        let joins = vec![(QNodeId(0), QNodeId(1))];
        // The real hashes of the three values differ, so a constant hasher
        // genuinely forces every row into one colliding bucket.
        let real: Vec<u64> = ["x", "y", "z"]
            .iter()
            .map(|t| content_hash(&d, &idx, &Bound::value(*t, origin)))
            .collect();
        assert!(real[0] != real[1] && real[0] != real[2]);
        let mut stats = JoinStats::default();
        let collided = hash_join_hashed(&d, &left, &right, &joins, |_| 0, &mut stats, &UNLIMITED);
        // Canonical verification must reject the colliding non-matches and
        // keep exactly what the string join produces: the x–x pair.
        let expected = hash_join_strings(&d, &left, &right, &joins, &UNLIMITED);
        assert_eq!(collided, expected);
        assert_eq!(collided.len(), 1);
        assert_eq!(
            collided[0].get(QNodeId(1)),
            Some(&Bound::value("x", origin))
        );
        // The stats expose the collisions: 2 probes, every pair hash-equal
        // under the constant hasher (2×2 = 4), 3 rejected by verification.
        assert_eq!(
            stats,
            JoinStats {
                probes: 2,
                hash_matches: 4,
                collision_rejects: 3,
            }
        );
        // And the production hasher agrees, with zero collisions.
        let mut clean = JoinStats::default();
        let hashed = hash_join_hashed(
            &d,
            &left,
            &right,
            &joins,
            |b| content_hash(&d, &idx, b),
            &mut clean,
            &UNLIMITED,
        );
        assert_eq!(hashed, expected);
        assert_eq!(clean.collision_rejects, 0);
        assert_eq!(clean.hash_matches, 1);
    }

    #[test]
    fn collision_verification_also_covers_nodes() {
        let d = Document::parse_str("<r><a>t</a><a>t</a><b>t</b></r>").unwrap();
        let kids: Vec<NodeId> = d.child_elements(d.root_element().unwrap()).collect();
        let mk = |q: u32, n: NodeId| {
            let mut b = Binding::with_capacity(2);
            b.set(QNodeId(q), Bound::Node(n));
            b
        };
        let left = vec![mk(0, kids[0])];
        let right = vec![mk(1, kids[1]), mk(1, kids[2])];
        let joins = vec![(QNodeId(0), QNodeId(1))];
        // Under a constant hasher <a>t</a> collides with <b>t</b>; only the
        // canonically-equal pair survives.
        let mut stats = JoinStats::default();
        let collided = hash_join_hashed(&d, &left, &right, &joins, |_| 0, &mut stats, &UNLIMITED);
        assert_eq!(stats.collision_rejects, 1);
        assert_eq!(
            collided,
            hash_join_strings(&d, &left, &right, &joins, &UNLIMITED)
        );
        assert_eq!(collided.len(), 1);
        assert_eq!(collided[0].get(QNodeId(1)), Some(&Bound::Node(kids[1])));
    }

    #[test]
    fn planned_combine_reproduces_declaration_order() {
        // Matching titles across books and articles, plus an unjoined
        // author root: exercises both the hash-join and the product stage
        // of the planned combine.
        let d = Document::parse_str(
            "<bib><book><title>A</title></book><book><title>B</title></book>\
             <article><title>A</title></article><article><title>B</title></article>\
             <author>x</author><author>y</author></bib>",
        )
        .unwrap();
        let idx = DocIndex::build(&d);
        let p = crate::dsl::parse(
            r#"rule {
                 extract {
                   book { title { text as $t1 } }
                   article { title { text as $t2 } }
                   author as $a
                   join $t1 == $t2
                 }
                 construct { out { all $a } }
               }"#,
        )
        .unwrap();
        let rule = &p.rules[0];
        let base = match_rule_with(rule, &d, &idx, MatchMode::Sequential);
        assert_eq!(base.len(), 4, "2 joined title pairs × 2 authors");
        for order in [
            vec![1, 0, 2],
            vec![2, 1, 0],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![0, 2, 1],
        ] {
            let planned = match_rule_planned(
                rule,
                &d,
                Some(&idx),
                MatchMode::Sequential,
                &Trace::disabled(),
                &UNLIMITED,
                &order,
            );
            assert_eq!(planned, base, "indexed, order {order:?}");
            let scan = match_rule_planned(
                rule,
                &d,
                None,
                MatchMode::Sequential,
                &Trace::disabled(),
                &UNLIMITED,
                &order,
            );
            assert_eq!(scan, base, "scan, order {order:?}");
        }
        // Invalid plans (wrong length, repeated index) fall back cleanly.
        for bad in [vec![0usize, 0, 1], vec![1, 0], vec![0, 1, 2, 3]] {
            let out = match_rule_planned(
                rule,
                &d,
                Some(&idx),
                MatchMode::Sequential,
                &Trace::disabled(),
                &UNLIMITED,
                &bad,
            );
            assert_eq!(out, base, "fallback for {bad:?}");
        }
    }

    #[test]
    fn planned_combine_respects_multi_span_joins() {
        // A join that spans roots 0 and 2 stays residual in declaration
        // order until root 2 arrives; a plan starting at 2 enforces it in
        // the first combine. Both must agree.
        let d = Document::parse_str("<r><a>k1</a><a>k2</a><b>z</b><c>k1</c><c>k3</c></r>").unwrap();
        let idx = DocIndex::build(&d);
        let p = crate::dsl::parse(
            r#"rule {
                 extract {
                   a { text as $x }
                   b as $m
                   c { text as $y }
                   join $x == $y
                 }
                 construct { out { all $m } }
               }"#,
        )
        .unwrap();
        let rule = &p.rules[0];
        let base = match_rule_with(rule, &d, &idx, MatchMode::Sequential);
        assert_eq!(base.len(), 1, "only k1 joins, times one <b>");
        for order in [vec![2, 0, 1], vec![2, 1, 0], vec![1, 2, 0]] {
            let planned = match_rule_planned(
                rule,
                &d,
                Some(&idx),
                MatchMode::Sequential,
                &Trace::disabled(),
                &UNLIMITED,
                &order,
            );
            assert_eq!(planned, base, "order {order:?}");
        }
    }
}
