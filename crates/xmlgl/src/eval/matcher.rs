//! Embedding enumeration: matching the extract graph against a document.

use std::collections::HashMap;

use gql_ssdm::document::NodeKind;
use gql_ssdm::{Document, NodeId};

use crate::ast::{ExtractGraph, NameTest, QEdge, QNodeId, QNodeKind, Rule};

use super::content_key;

/// What a query node is bound to: a document node (elements) or a string
/// (text content, attribute values). Strings carry the element they were
/// read from, so two occurrences of the same value stay distinct matches —
/// aggregates count and sum per occurrence, not per distinct string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    Node(NodeId),
    Value {
        text: String,
        /// The element the text content / attribute was read from.
        origin: NodeId,
    },
}

impl Bound {
    pub fn value(text: impl Into<String>, origin: NodeId) -> Bound {
        Bound::Value {
            text: text.into(),
            origin,
        }
    }
}

/// One embedding: a partial map from query nodes to bound values. Nodes
/// under negated edges stay unbound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Binding {
    slots: Vec<Option<Bound>>,
}

impl Binding {
    fn with_capacity(n: usize) -> Self {
        Binding {
            slots: vec![None; n],
        }
    }

    pub fn get(&self, q: QNodeId) -> Option<&Bound> {
        self.slots.get(q.index()).and_then(Option::as_ref)
    }

    fn set(&mut self, q: QNodeId, b: Bound) {
        if self.slots.len() <= q.index() {
            self.slots.resize(q.index() + 1, None);
        }
        self.slots[q.index()] = Some(b);
    }

    /// Merge two disjoint bindings (panics on conflicting slots in debug).
    fn merge(&self, other: &Binding) -> Binding {
        let mut out = self.clone();
        for (i, slot) in other.slots.iter().enumerate() {
            if let Some(b) = slot {
                debug_assert!(
                    out.slots.get(i).is_none_or(Option::is_none),
                    "bindings overlap at q{i}"
                );
                out.set(QNodeId(i as u32), b.clone());
            }
        }
        out
    }

    /// Bound query-node ids, ascending.
    pub fn bound_ids(&self) -> impl Iterator<Item = QNodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| QNodeId(i as u32))
    }
}

/// Enumerate all embeddings of a rule's extract graph into `doc`.
///
/// Roots are matched independently; their binding sets are then combined
/// left-to-right. Whenever a join constraint connects the next root to the
/// already-combined prefix, the combination is a hash join on the deep-equal
/// content key instead of a cartesian product.
pub fn match_rule(rule: &Rule, doc: &Document) -> Vec<Binding> {
    let g = &rule.extract;
    let n = g.nodes.len();
    if g.roots.is_empty() {
        return Vec::new();
    }

    // Per-root binding sets.
    let mut per_root: Vec<Vec<Binding>> = Vec::with_capacity(g.roots.len());
    for &root in &g.roots {
        per_root.push(match_root(g, root, doc, n));
    }

    // Which root does each query node belong to?
    let mut owner: Vec<usize> = vec![usize::MAX; n];
    for (ri, &root) in g.roots.iter().enumerate() {
        let mut stack = vec![root];
        while let Some(q) = stack.pop() {
            owner[q.index()] = ri;
            stack.extend(g.node(q).children.iter().map(|e| e.target));
        }
    }

    // Combine roots left to right, remembering which joins the hash-join
    // pass already enforced (the residual filter can skip them).
    let mut enforced: Vec<(QNodeId, QNodeId)> = Vec::new();
    let mut combined: Vec<Binding> = per_root[0].clone();
    for (ri, right) in per_root.iter().enumerate().skip(1) {
        // Joins whose endpoints span the combined prefix and this root.
        let cross_joins: Vec<(QNodeId, QNodeId)> = g
            .joins
            .iter()
            .filter_map(|&(a, b)| {
                let (oa, ob) = (owner[a.index()], owner[b.index()]);
                if oa < ri && ob == ri {
                    Some((a, b))
                } else if ob < ri && oa == ri {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect();
        combined = if cross_joins.is_empty() {
            product(&combined, right)
        } else {
            enforced.extend(cross_joins.iter().copied());
            hash_join(doc, &combined, right, &cross_joins)
        };
        if combined.is_empty() {
            return combined;
        }
    }

    // Residual joins within a single root (or spanning more than two) are
    // verified by filtering; hash-enforced pairs are already satisfied.
    let residual: Vec<(QNodeId, QNodeId)> = g
        .joins
        .iter()
        .copied()
        .filter(|&(a, b)| !enforced.contains(&(a, b)) && !enforced.contains(&(b, a)))
        .collect();
    if !residual.is_empty() {
        combined.retain(|b| {
            residual.iter().all(|&(x, y)| match (b.get(x), b.get(y)) {
                (Some(bx), Some(by)) => content_key(doc, bx) == content_key(doc, by),
                _ => false,
            })
        });
    }
    combined
}

fn product(left: &[Binding], right: &[Binding]) -> Vec<Binding> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.merge(r));
        }
    }
    out
}

fn hash_join(
    doc: &Document,
    left: &[Binding],
    right: &[Binding],
    joins: &[(QNodeId, QNodeId)],
) -> Vec<Binding> {
    // Key = tuple of content keys over the join columns.
    let key_of = |b: &Binding, cols: &[QNodeId]| -> Option<String> {
        let mut parts = Vec::with_capacity(cols.len());
        for &c in cols {
            parts.push(content_key(doc, b.get(c)?));
        }
        Some(parts.join("\u{1}"))
    };
    let left_cols: Vec<QNodeId> = joins.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<QNodeId> = joins.iter().map(|&(_, r)| r).collect();
    let mut index: HashMap<String, Vec<&Binding>> = HashMap::new();
    for r in right {
        if let Some(k) = key_of(r, &right_cols) {
            index.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left {
        if let Some(k) = key_of(l, &left_cols) {
            if let Some(matches) = index.get(&k) {
                for r in matches {
                    out.push(l.merge(r));
                }
            }
        }
    }
    out
}

/// All embeddings of the pattern tree rooted at `root` anywhere in the
/// document.
fn match_root(g: &ExtractGraph, root: QNodeId, doc: &Document, nslots: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    let candidates: Vec<NodeId> = match &g.node(root).kind {
        QNodeKind::Element(NameTest::Name(name)) => doc.elements_named(name).collect(),
        QNodeKind::Element(NameTest::Wildcard) => doc
            .descendants(doc.root())
            .filter(|&d| doc.kind(d) == NodeKind::Element)
            .collect(),
        // check.rs guarantees element roots.
        _ => Vec::new(),
    };
    for c in candidates {
        out.extend(match_node(g, root, doc, c, nslots));
    }
    out
}

/// All embeddings of the subtree at `q` assuming it is matched at `data`.
fn match_node(
    g: &ExtractGraph,
    q: QNodeId,
    doc: &Document,
    data: NodeId,
    nslots: usize,
) -> Vec<Binding> {
    let node = g.node(q);
    // Kind/name/predicate check.
    match &node.kind {
        QNodeKind::Element(test) => {
            if doc.kind(data) != NodeKind::Element {
                return Vec::new();
            }
            if let Some(name) = doc.name(data) {
                if !test.matches(name) {
                    return Vec::new();
                }
            }
            if !node.predicate.is_trivial() && !node.predicate.eval(&doc.text_content(data)) {
                return Vec::new();
            }
        }
        // Text/attribute circles are matched by `match_edge` against the
        // parent; reaching here would be a checker bug.
        _ => return Vec::new(),
    }

    let mut partials = vec![{
        let mut b = Binding::with_capacity(nslots);
        b.set(q, Bound::Node(data));
        b
    }];

    let ordered = g.ordered[q.index()];
    for edge in &node.children {
        let alternatives = match_edge(g, edge, doc, data, nslots);
        if edge.negated {
            if !alternatives.is_empty() {
                return Vec::new();
            }
            continue;
        }
        if alternatives.is_empty() {
            return Vec::new();
        }
        let mut next = Vec::with_capacity(partials.len() * alternatives.len());
        for p in &partials {
            for a in &alternatives {
                next.push(p.merge(a));
            }
        }
        partials = next;
    }

    if ordered {
        // Direct element children must be bound in sibling order.
        let element_edges: Vec<&QEdge> = node
            .children
            .iter()
            .filter(|e| {
                !e.negated && !e.deep && matches!(g.node(e.target).kind, QNodeKind::Element(_))
            })
            .collect();
        partials.retain(|b| {
            let mut last = -1i64;
            for e in &element_edges {
                if let Some(Bound::Node(n)) = b.get(e.target) {
                    let idx = doc.sibling_index(*n) as i64;
                    if idx < last {
                        return false;
                    }
                    last = idx;
                }
            }
            true
        });
    }

    partials
}

/// Alternatives for one containment edge below a matched element.
fn match_edge(
    g: &ExtractGraph,
    edge: &QEdge,
    doc: &Document,
    parent: NodeId,
    nslots: usize,
) -> Vec<Binding> {
    let target = g.node(edge.target);
    match &target.kind {
        QNodeKind::Attribute(name) => {
            let mut out = Vec::new();
            let mut consider = |el: NodeId| {
                if let Some(v) = doc.attr(el, name) {
                    if target.predicate.eval(v) {
                        let mut b = Binding::with_capacity(nslots);
                        b.set(edge.target, Bound::value(v, el));
                        out.push(b);
                    }
                }
            };
            if edge.deep {
                for d in doc.descendants_or_self(parent) {
                    if doc.kind(d) == NodeKind::Element {
                        consider(d);
                    }
                }
            } else {
                consider(parent);
            }
            out
        }
        QNodeKind::Text => {
            let mut out = Vec::new();
            let mut consider = |el: NodeId| {
                let has_text = doc
                    .children(el)
                    .iter()
                    .any(|&c| doc.kind(c) == NodeKind::Text);
                if has_text {
                    let v = doc.text_content(el);
                    if target.predicate.eval(&v) {
                        let mut b = Binding::with_capacity(nslots);
                        b.set(edge.target, Bound::value(v, el));
                        out.push(b);
                    }
                }
            };
            if edge.deep {
                for d in doc.descendants_or_self(parent) {
                    if doc.kind(d) == NodeKind::Element {
                        consider(d);
                    }
                }
            } else {
                consider(parent);
            }
            out
        }
        QNodeKind::Element(_) => {
            let mut out = Vec::new();
            if edge.deep {
                for d in doc.descendants(parent) {
                    if doc.kind(d) == NodeKind::Element {
                        out.extend(match_node(g, edge.target, doc, d, nslots));
                    }
                }
            } else {
                for c in doc.child_elements(parent) {
                    out.extend(match_node(g, edge.target, doc, c, nslots));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994'><title>TCP/IP</title><price>65.95</price>\
                 <author><last>Stevens</last></author></book>\
               <book year='2000'><title>Data on the Web</title><price>39.95</price>\
                 <author><last>Abiteboul</last></author>\
                 <author><last>Buneman</last></author></book>\
               <article year='2000'><title>XML-GL</title></article>\
             </bib>",
        )
        .unwrap()
    }

    fn rule(q: Q) -> Rule {
        RuleBuilder::new()
            .extract(q)
            .construct(C::elem("out"))
            .build()
            .unwrap()
    }

    #[test]
    fn root_matches_anywhere() {
        let d = doc();
        assert_eq!(match_rule(&rule(Q::elem("book")), &d).len(), 2);
        assert_eq!(match_rule(&rule(Q::elem("title")), &d).len(), 3);
        assert_eq!(match_rule(&rule(Q::elem("nothing")), &d).len(), 0);
        assert_eq!(match_rule(&rule(Q::any()), &d).len(), 15);
    }

    #[test]
    fn attribute_predicates_filter() {
        let d = doc();
        let r = rule(Q::elem("book").child(Q::attr("year").pred(CmpOp::Ge, "2000")));
        assert_eq!(match_rule(&r, &d).len(), 1);
        let r = rule(Q::elem("book").child(Q::attr("year")));
        assert_eq!(match_rule(&r, &d).len(), 2);
        let r = rule(Q::elem("book").child(Q::attr("isbn")));
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn text_circles_bind_content() {
        let d = doc();
        let r = rule(Q::elem("title").child(Q::text().var("t")));
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 3);
        let q = r.extract.by_var("t").unwrap();
        let texts: Vec<String> = ms
            .iter()
            .map(|m| super::super::bound_text(&d, m.get(q).unwrap()))
            .collect();
        assert!(texts.contains(&"TCP/IP".to_string()));
    }

    #[test]
    fn multiple_children_multiply_embeddings() {
        let d = doc();
        // book with an author: second book has two embeddings.
        let r = rule(Q::elem("book").child(Q::elem("author").var("a")));
        assert_eq!(match_rule(&r, &d).len(), 3);
    }

    #[test]
    fn deep_edges_match_descendants() {
        let d = doc();
        let r = rule(Q::elem("bib").deep_child(Q::elem("last").var("l")));
        assert_eq!(match_rule(&r, &d).len(), 3);
        // Direct edge does not reach them.
        let r = rule(Q::elem("bib").child(Q::elem("last")));
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn negation() {
        let d = doc();
        // Books without an <article> sibling constraint is meaningless;
        // negate a child instead: books with no author → none; articles with
        // no author → one.
        let r = rule(Q::elem("book").without(Q::elem("author")));
        assert_eq!(match_rule(&r, &d).len(), 0);
        let r = rule(Q::elem("article").without(Q::elem("author")));
        assert_eq!(match_rule(&r, &d).len(), 1);
    }

    #[test]
    fn conjunctive_branches() {
        let d = doc();
        let r = rule(
            Q::elem("book")
                .child(Q::attr("year").pred(CmpOp::Eq, "2000"))
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "Web"))),
        );
        assert_eq!(match_rule(&r, &d).len(), 1);
        // Same branches, impossible combination.
        let r = rule(
            Q::elem("book")
                .child(Q::attr("year").pred(CmpOp::Eq, "1994"))
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "Web"))),
        );
        assert_eq!(match_rule(&r, &d).len(), 0);
    }

    #[test]
    fn element_predicate_sees_text_content() {
        let d = doc();
        let r = rule(Q::elem("last").pred(CmpOp::Eq, "Stevens"));
        assert_eq!(match_rule(&r, &d).len(), 1);
    }

    #[test]
    fn cross_tree_join() {
        let d = Document::parse_str(
            "<shop><products>\
               <product><name>apple</name><vendor>Vand</vendor></product>\
               <product><name>pear</name><vendor>Ghost</vendor></product>\
             </products>\
             <vendors><vendor><name>Vand</name><country>nl</country></vendor></vendors></shop>",
        )
        .unwrap();
        let r = RuleBuilder::new()
            .extract(
                Q::elem("product")
                    .var("p")
                    .child(Q::elem("vendor").child(Q::text().var("v1"))),
            )
            .extract(
                Q::elem("vendors")
                    .child(Q::elem("vendor").child(Q::elem("name").child(Q::text().var("v2")))),
            )
            .join("v1", "v2")
            .construct(C::elem("out").child(C::all("p")))
            .build()
            .unwrap();
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 1);
        let p = r.extract.by_var("p").unwrap();
        match ms[0].get(p).unwrap() {
            Bound::Node(n) => {
                assert!(d.text_content(*n).contains("apple"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cartesian_product_without_join() {
        let d = doc();
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .extract(Q::elem("article").var("a"))
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_eq!(match_rule(&r, &d).len(), 2); // 2 books × 1 article
    }

    #[test]
    fn ordered_matching() {
        let d = Document::parse_str("<r><a/><b/></r><!-- -->").unwrap();
        let ok = rule(
            Q::elem("r")
                .ordered()
                .child(Q::elem("a"))
                .child(Q::elem("b")),
        );
        assert_eq!(match_rule(&ok, &d).len(), 1);
        let bad = rule(
            Q::elem("r")
                .ordered()
                .child(Q::elem("b"))
                .child(Q::elem("a")),
        );
        assert_eq!(match_rule(&bad, &d).len(), 0);
        // Unordered succeeds both ways.
        let free = rule(Q::elem("r").child(Q::elem("b")).child(Q::elem("a")));
        assert_eq!(match_rule(&free, &d).len(), 1);
    }

    #[test]
    fn wildcard_with_structure() {
        let d = doc();
        // Any element that has a title child with text containing 'XML'.
        let r = rule(
            Q::any()
                .var("x")
                .child(Q::elem("title").child(Q::text().pred(CmpOp::Contains, "XML"))),
        );
        let ms = match_rule(&r, &d);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn deep_attribute_edge() {
        let d = doc();
        // bib ~deep~> @year picks up year attributes at any depth.
        let r = rule(Q::elem("bib").deep_child(Q::attr("year").var("y")));
        assert_eq!(match_rule(&r, &d).len(), 3);
    }
}
