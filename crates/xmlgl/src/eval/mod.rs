//! Evaluation of XML-GL programs.
//!
//! Split into the two halves of a rule: [`matcher`] enumerates *bindings*
//! (embeddings of the extract graph into the data) and [`construct`]
//! materialises the result document from those bindings.
//!
//! The semantics implemented here, stated once:
//!
//! * an extract root matches any element occurrence in the document;
//! * containment edges match children (or any descendant for asterisk
//!   edges), unordered by default, order-respecting when the parent box
//!   carries the order stroke;
//! * a crossed-out edge succeeds iff no match for its subtree exists;
//! * join edges require deep-equal bound content;
//! * each construct root is instantiated once per distinct tuple of the
//!   bindings it copies (its *scope*); triangles, list icons and aggregate
//!   nodes collect over all bindings compatible with the instantiation.

pub mod construct;
pub mod matcher;

use gql_ssdm::{DocIndex, Document, NodeId};

use crate::ast::{Program, QNodeId, Rule};
use crate::Result;

use gql_trace::Trace;

use gql_guard::Guard;

pub use construct::{construct_rule, construct_rule_with};
pub use matcher::{
    match_rule, match_rule_guarded, match_rule_planned, match_rule_scan, match_rule_traced,
    match_rule_with, Binding, Bound, MatchMode,
};

/// Per-rule root combine orders chosen by a planner (`gql-infer`'s
/// `plan_root_order` over summary cardinality bounds). `None` for a rule —
/// or a missing entry, or an invalid permutation — means declaration order.
/// Plans never change results, only intermediate join sizes; see
/// [`match_rule_planned`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchPlans {
    pub per_rule: Vec<Option<Vec<usize>>>,
}

impl MatchPlans {
    /// No reordering for any rule.
    pub fn none() -> Self {
        Self::default()
    }

    /// The combine order for rule `i`, if one was planned.
    pub fn plan_for(&self, i: usize) -> Option<&[usize]> {
        self.per_rule.get(i).and_then(|p| p.as_deref())
    }

    pub fn is_empty(&self) -> bool {
        self.per_rule.iter().all(Option::is_none)
    }
}

/// Evaluate a whole program: the outputs of all rules, in rule order, become
/// the children of the result document's root. Builds one [`DocIndex`] for
/// the document; callers holding a prebuilt index (e.g. `gql-core`'s
/// `Engine`) should use [`run_with_index`].
pub fn run(program: &Program, doc: &Document) -> Result<Document> {
    let idx = DocIndex::build(doc);
    run_with_index(program, doc, &idx)
}

/// Evaluate a whole program against a prebuilt document index: rules share
/// the postings/interval/hash index instead of rebuilding it per rule.
pub fn run_with_index(program: &Program, doc: &Document, idx: &DocIndex) -> Result<Document> {
    run_traced(program, doc, idx, &Trace::disabled())
}

/// [`run_with_index`] reporting into a [`Trace`]: one `rule[i]` span per
/// rule with `match` (candidate sets, join statistics, worker fan-out — see
/// [`match_rule_traced`]) and `construct` (nodes materialised) children.
/// With `Trace::disabled()` this is exactly `run_with_index`.
pub fn run_traced(
    program: &Program,
    doc: &Document,
    idx: &DocIndex,
    trace: &Trace,
) -> Result<Document> {
    run_guarded(program, doc, Some(idx), trace, &Guard::unlimited())
}

/// [`run_traced`] under a resource [`Guard`] and with an *optional* index
/// (`None` selects the scan matcher — the degradation target when an index
/// build fails or verification rejects it). The matcher's budget probes
/// truncate its binding set when a limit trips; the `guard.checkpoint()`
/// after each rule's match converts the trip into an
/// [`XmlGlError::Budget`](crate::XmlGlError) and discards the truncated
/// bindings, so partial results are never constructed into an answer. With
/// `Guard::unlimited()` and `Some(idx)` this is exactly `run_traced`.
pub fn run_guarded(
    program: &Program,
    doc: &Document,
    idx: Option<&DocIndex>,
    trace: &Trace,
    guard: &Guard,
) -> Result<Document> {
    run_planned(program, doc, idx, trace, guard, &MatchPlans::none())
}

/// [`run_guarded`] with planner-chosen root combine orders: rules with a
/// plan in `plans` combine their roots in that order (identical results,
/// smaller intermediates — see [`match_rule_planned`]); the rest use
/// declaration order. With `MatchPlans::none()` this is exactly
/// `run_guarded`.
pub fn run_planned(
    program: &Program,
    doc: &Document,
    idx: Option<&DocIndex>,
    trace: &Trace,
    guard: &Guard,
    plans: &MatchPlans,
) -> Result<Document> {
    crate::check::check_program(program)?;
    let mut out = Document::new();
    for (i, rule) in program.rules.iter().enumerate() {
        let label = if trace.is_enabled() {
            format!("rule[{i}]")
        } else {
            String::new()
        };
        let _rule_span = trace.span(&label);
        let bindings = {
            let _s = trace.span("match");
            match plans.plan_for(i) {
                Some(order) => {
                    match_rule_planned(rule, doc, idx, MatchMode::Auto, trace, guard, order)
                }
                None => match_rule_guarded(rule, doc, idx, MatchMode::Auto, trace, guard),
            }
        };
        guard.checkpoint().map_err(crate::XmlGlError::Budget)?;
        {
            let _s = trace.span("construct");
            let before = out.node_count();
            construct_rule_with(rule, doc, idx, &bindings, &mut out)?;
            if trace.is_enabled() {
                trace.count("bindings_in", bindings.len() as u64);
                trace.count("nodes_built", (out.node_count() - before) as u64);
            }
            // Charge the constructed nodes against the node cap.
            guard
                .try_nodes((out.node_count() - before) as u64)
                .map_err(crate::XmlGlError::Budget)?;
        }
    }
    Ok(out)
}

/// Evaluate one rule into an existing output document.
pub fn run_rule_into(rule: &Rule, doc: &Document, out: &mut Document) -> Result<()> {
    let bindings = match_rule(rule, doc);
    construct_rule(rule, doc, &bindings, out)
}

/// Evaluate one rule into a fresh document.
pub fn run_rule(rule: &Rule, doc: &Document) -> Result<Document> {
    let mut out = Document::new();
    run_rule_into(rule, doc, &mut out)?;
    Ok(out)
}

/// Evaluate a pipeline of programs: each stage queries the previous stage's
/// output (the first queries `doc`). This is view composition — the
/// XML-GL analogue of Xcerpt's rule chaining, restricted to an explicit
/// stage order (XML-GL has no fixpoint, so composition must be acyclic by
/// construction).
pub fn run_pipeline(stages: &[Program], doc: &Document) -> Result<Document> {
    if stages.is_empty() {
        return Err(crate::XmlGlError::Eval {
            msg: "empty pipeline".into(),
        });
    }
    let mut current = run(&stages[0], doc)?;
    for stage in &stages[1..] {
        current = run(stage, &current)?;
    }
    Ok(current)
}

/// Canonical string form of a subtree, used for deep-equality joins: tag,
/// sorted attributes, children in order, with text content inline.
///
/// Lives in `gql-ssdm::index` so the [`DocIndex`] structural hashes can be
/// defined as hashes of exactly this string; re-exported here for the
/// existing callers.
pub fn canonical(doc: &Document, node: NodeId) -> String {
    gql_ssdm::index::canonical(doc, node)
}

/// Deep structural equality of two subtrees (same document).
pub fn deep_equal(doc: &Document, a: NodeId, b: NodeId) -> bool {
    a == b || canonical(doc, a) == canonical(doc, b)
}

/// Canonical key of a bound value for joins and deduplication by *content*.
pub fn content_key(doc: &Document, bound: &Bound) -> String {
    match bound {
        Bound::Value { text, .. } => format!("v:{text}"),
        Bound::Node(n) => canonical(doc, *n),
    }
}

/// 64-bit content hash of a bound value, agreeing with [`content_key`]:
/// `content_hash(b) == hash_str(&content_key(doc, b))` for every bound, so
/// equal content keys always hash equal. The converse can fail (collisions);
/// consumers verify hash-equal candidates against the string keys.
pub fn content_hash(doc: &Document, idx: &DocIndex, bound: &Bound) -> u64 {
    match bound {
        Bound::Value { text, .. } => gql_ssdm::index::hash_parts(&["v:", text]),
        Bound::Node(n) => idx.structural_hash(doc, *n),
    }
}

/// Identity key of a bound value — distinguishes distinct occurrences with
/// equal content (used when deduplicating triangle collections).
pub fn identity_key(bound: &Bound) -> String {
    match bound {
        Bound::Value { text, origin } => format!("v:{}:{text}", origin.index()),
        Bound::Node(n) => format!("n:{}", n.index()),
    }
}

/// Identity of a bound value as a compact hashable key — the same relation
/// as [`identity_key`] without building a formatted string per row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum IdKey {
    Node(u32),
    Value(u32, Box<str>),
}

pub(crate) fn id_key(bound: &Bound) -> IdKey {
    match bound {
        Bound::Value { text, origin } => {
            IdKey::Value(origin.index() as u32, text.clone().into_boxed_str())
        }
        Bound::Node(n) => IdKey::Node(n.index() as u32),
    }
}

/// Convenience for tests and the harness: the number of embeddings of a
/// rule's extract side.
pub fn count_matches(rule: &Rule, doc: &Document) -> usize {
    match_rule(rule, doc).len()
}

/// The string value of a binding entry.
pub fn bound_text(doc: &Document, bound: &Bound) -> String {
    match bound {
        Bound::Value { text, .. } => text.clone(),
        Bound::Node(n) => doc.text_content(*n),
    }
}

/// Project a list of bindings onto one query node, deduplicated by identity,
/// preserving order of first occurrence.
pub fn distinct_bound(bindings: &[Binding], q: QNodeId) -> Vec<Bound> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for b in bindings {
        if let Some(v) = b.get(q) {
            if seen.insert(id_key(v)) {
                out.push(v.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_composes_views() {
        let doc = Document::parse_str(
            "<bib><book year='1999'><title>Old</title><price>60</price></book>\
             <book year='2003'><title>A</title><price>50</price></book>\
             <book year='2005'><title>B</title><price>10</price></book></bib>",
        )
        .unwrap();
        // Stage 1: a view of recent books. Stage 2: the cheap ones of those.
        let recent = crate::dsl::parse(
            r#"rule { extract { book as $b { @year as $y >= "2000" } }
                      construct { recent { all $b } } }"#,
        )
        .unwrap();
        let cheap = crate::dsl::parse(
            r#"rule { extract { book as $b { price { text < "20" } } }
                      construct { cheap-recent { all $b } } }"#,
        )
        .unwrap();
        let out = run_pipeline(&[recent, cheap], &doc).unwrap();
        assert_eq!(
            out.to_xml_string(),
            "<cheap-recent><book year=\"2005\"><title>B</title><price>10</price></book></cheap-recent>"
        );
        assert!(run_pipeline(&[], &doc).is_err());
    }

    #[test]
    fn canonical_distinguishes_structure() {
        let d = Document::parse_str("<r><a x='1'>t</a><a x='2'>t</a><a x='1'>t</a></r>").unwrap();
        let r = d.root_element().unwrap();
        let kids: Vec<NodeId> = d.child_elements(r).collect();
        assert!(deep_equal(&d, kids[0], kids[2]));
        assert!(!deep_equal(&d, kids[0], kids[1]));
    }

    #[test]
    fn canonical_sorts_attributes() {
        let d1 = Document::parse_str("<a x='1' y='2'/>").unwrap();
        let d2 = Document::parse_str("<a y='2' x='1'/>").unwrap();
        assert_eq!(
            canonical(&d1, d1.root_element().unwrap()),
            canonical(&d2, d2.root_element().unwrap())
        );
    }

    #[test]
    fn canonical_ignores_comments_and_pis() {
        let d1 = Document::parse_str("<a>x</a>").unwrap();
        let d2 = Document::parse_str("<a>x<!--note--><?pi d?></a>").unwrap();
        assert_eq!(
            canonical(&d1, d1.root_element().unwrap()),
            canonical(&d2, d2.root_element().unwrap())
        );
    }

    #[test]
    fn canonical_respects_child_order() {
        let d1 = Document::parse_str("<a><b/><c/></a>").unwrap();
        let d2 = Document::parse_str("<a><c/><b/></a>").unwrap();
        assert_ne!(
            canonical(&d1, d1.root_element().unwrap()),
            canonical(&d2, d2.root_element().unwrap())
        );
    }

    #[test]
    fn identity_vs_content_keys() {
        let d = Document::parse_str("<r><a>t</a><a>t</a></r>").unwrap();
        let r = d.root_element().unwrap();
        let kids: Vec<NodeId> = d.child_elements(r).collect();
        let (b0, b1) = (Bound::Node(kids[0]), Bound::Node(kids[1]));
        assert_eq!(content_key(&d, &b0), content_key(&d, &b1));
        assert_ne!(identity_key(&b0), identity_key(&b1));
    }
}
