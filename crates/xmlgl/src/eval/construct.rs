//! Result construction from bindings.
//!
//! Each construct root is instantiated once per distinct tuple of its
//! *scope* — the query nodes referenced by `copy` nodes and bound attribute
//! values in its subtree. Collector nodes (triangle `all`, list-icon
//! `group by`, aggregates) range over every binding compatible with the
//! instantiation, so nesting a triangle under a copied element expresses
//! grouping, exactly like the nested construction patterns of the figures.

use std::collections::HashMap;

use gql_ssdm::{DocIndex, Document, NodeId};

use crate::ast::{AggFunc, CNodeId, CNodeKind, CValue, QNodeId, Rule};
use crate::{Result, XmlGlError};

use super::matcher::KeyCache;
use super::{bound_text, content_hash, content_key, distinct_bound, id_key, Binding, Bound, IdKey};

/// Materialise one rule's construct side into `out`, given the bindings of
/// its extract side. Instances are appended under the output document node.
pub fn construct_rule(
    rule: &Rule,
    doc: &Document,
    bindings: &[Binding],
    out: &mut Document,
) -> Result<()> {
    construct_rule_with(rule, doc, None, bindings, out)
}

/// Like [`construct_rule`], but with an optional document index: content
/// grouping (`group by` list icons) then keys on memoized `u64` structural
/// hashes, verifying hash-equal rows against canonical forms.
pub fn construct_rule_with(
    rule: &Rule,
    doc: &Document,
    idx: Option<&DocIndex>,
    bindings: &[Binding],
    out: &mut Document,
) -> Result<()> {
    for &root in &rule.construct.roots {
        let scope = scope_of(rule, root);
        if scope.is_empty() {
            // One static instance.
            let el = instantiate(rule, root, doc, idx, bindings, out)?;
            attach(out, el)?;
        } else {
            for group in group_by_scope(doc, bindings, &scope) {
                let el = instantiate(rule, root, doc, idx, &group, out)?;
                attach(out, el)?;
            }
        }
    }
    Ok(())
}

fn attach(out: &mut Document, el: NodeId) -> Result<()> {
    let root = out.root();
    out.append_child(root, el).map_err(|e| XmlGlError::Eval {
        msg: format!("cannot attach result: {e}"),
    })
}

/// The scope of a construct subtree: query nodes whose binding determines
/// one instance (copy sources and bound attribute values).
fn scope_of(rule: &Rule, root: CNodeId) -> Vec<QNodeId> {
    let g = &rule.construct;
    let mut scope = Vec::new();
    let mut stack = vec![root];
    while let Some(c) = stack.pop() {
        let n = g.node(c);
        match &n.kind {
            CNodeKind::Copy { source, .. } => scope.push(*source),
            CNodeKind::Attribute {
                value: CValue::Binding(source),
                ..
            } => scope.push(*source),
            _ => {}
        }
        stack.extend(n.children.iter().copied());
    }
    scope.sort();
    scope.dedup();
    scope
}

/// Partition bindings into groups with equal scope tuples, preserving the
/// order of first occurrence. Bindings missing a scope slot are dropped.
fn group_by_scope(_doc: &Document, bindings: &[Binding], scope: &[QNodeId]) -> Vec<Vec<Binding>> {
    let mut order: Vec<Vec<IdKey>> = Vec::new();
    let mut groups: HashMap<Vec<IdKey>, Vec<Binding>> = HashMap::new();
    for b in bindings {
        let mut parts = Vec::with_capacity(scope.len());
        let mut complete = true;
        for &q in scope {
            match b.get(q) {
                // Group instances by *identity*: two distinct matched nodes
                // with equal content still yield two instances, matching the
                // "one output per match" reading of the figures.
                Some(v) => parts.push(id_key(v)),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        if !groups.contains_key(&parts) {
            order.push(parts.clone());
        }
        groups.entry(parts).or_default().push(b.clone());
    }
    order
        .into_iter()
        .map(|k| groups.remove(&k).expect("key recorded"))
        .collect()
}

/// Partition `group` by *content* of the binding at `key`, preserving order
/// of first occurrence. With an index, rows are bucketed by `u64` structural
/// hash and only hash-equal rows are compared (via memoized canonical
/// forms); without one, string content keys are used directly.
fn group_by_content(
    doc: &Document,
    idx: Option<&DocIndex>,
    group: &[Binding],
    key: QNodeId,
) -> Vec<Vec<Binding>> {
    // Each group keeps its first bound as the representative for equality.
    let mut out: Vec<(Bound, Vec<Binding>)> = Vec::new();
    match idx {
        Some(idx) => {
            let mut cache = KeyCache::new(doc);
            let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
            for b in group {
                let Some(kv) = b.get(key) else { continue };
                let h = content_hash(doc, idx, kv);
                let slot = buckets.entry(h).or_default();
                let mut found = None;
                for &gi in slot.iter() {
                    if cache.content_eq(&out[gi].0, kv) {
                        found = Some(gi);
                        break;
                    }
                }
                match found {
                    Some(gi) => out[gi].1.push(b.clone()),
                    None => {
                        slot.push(out.len());
                        out.push((kv.clone(), vec![b.clone()]));
                    }
                }
            }
        }
        None => {
            let mut index_of: HashMap<String, usize> = HashMap::new();
            for b in group {
                let Some(kv) = b.get(key) else { continue };
                let k = content_key(doc, kv);
                let gi = *index_of.entry(k).or_insert_with(|| {
                    out.push((kv.clone(), Vec::new()));
                    out.len() - 1
                });
                out[gi].1.push(b.clone());
            }
        }
    }
    out.into_iter().map(|(_, members)| members).collect()
}

/// Build one instance of a construct node; returns the created output node.
fn instantiate(
    rule: &Rule,
    c: CNodeId,
    doc: &Document,
    idx: Option<&DocIndex>,
    group: &[Binding],
    out: &mut Document,
) -> Result<NodeId> {
    let g = &rule.construct;
    let node = g.node(c);
    match &node.kind {
        CNodeKind::Element(name) => {
            let el = out.create_element(name);
            for &child in &node.children {
                match &g.node(child).kind {
                    CNodeKind::Attribute { name, value } => {
                        let v = match value {
                            CValue::Literal(s) => s.clone(),
                            CValue::Binding(q) => first_bound_text(doc, group, *q)?,
                        };
                        out.set_attr(el, name, &v)
                            .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                    }
                    _ => {
                        for produced in instantiate_many(rule, child, doc, idx, group, out)? {
                            out.append_child(el, produced)
                                .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                        }
                    }
                }
            }
            Ok(el)
        }
        other => Err(XmlGlError::Eval {
            msg: format!("internal: instantiate called on non-element {other:?}"),
        }),
    }
}

/// Build the (possibly several) output nodes a non-attribute construct child
/// produces within one instance.
fn instantiate_many(
    rule: &Rule,
    c: CNodeId,
    doc: &Document,
    idx: Option<&DocIndex>,
    group: &[Binding],
    out: &mut Document,
) -> Result<Vec<NodeId>> {
    let g = &rule.construct;
    let node = g.node(c);
    match &node.kind {
        CNodeKind::Element(_) => Ok(vec![instantiate(rule, c, doc, idx, group, out)?]),
        CNodeKind::Text(s) => Ok(vec![out.create_text(s)]),
        CNodeKind::Attribute { .. } => Ok(Vec::new()), // handled by the parent
        CNodeKind::Copy { source, deep } => {
            let bound = first_bound(group, *source)?;
            Ok(vec![copy_bound(doc, &bound, *deep, out)])
        }
        CNodeKind::All { source, order } => {
            let mut bounds = distinct_bound(group, *source);
            if let Some(spec) = order {
                // Sort by the first key value seen with each collected
                // binding; numeric when both keys are numbers.
                let key_of = |bound: &Bound| -> Option<String> {
                    group.iter().find_map(|b| {
                        let src = b.get(*source)?;
                        // `Bound` equality is identity equality: node ids for
                        // nodes, (origin, text) for values.
                        if src == bound {
                            b.get(spec.key).map(|k| bound_text(doc, k))
                        } else {
                            None
                        }
                    })
                };
                let mut keyed: Vec<(Option<String>, Bound)> =
                    bounds.into_iter().map(|b| (key_of(&b), b)).collect();
                keyed.sort_by(|(a, _), (b, _)| compare_sort_keys(a, b));
                if spec.descending {
                    keyed.reverse();
                }
                bounds = keyed.into_iter().map(|(_, b)| b).collect();
            }
            let mut produced = Vec::new();
            for bound in bounds {
                produced.push(copy_bound(doc, &bound, true, out));
            }
            Ok(produced)
        }
        CNodeKind::GroupBy {
            source,
            key,
            wrapper,
        } => {
            // Groups ordered by first occurrence of the key.
            let mut produced = Vec::new();
            for members in group_by_content(doc, idx, group, *key) {
                let wrap = out.create_element(wrapper);
                // Label the group with its key value.
                if let Some(kv) = members[0].get(*key) {
                    let text = bound_text(doc, kv);
                    out.set_attr(wrap, "key", &text)
                        .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                }
                for bound in distinct_bound(&members, *source) {
                    let copied = copy_bound(doc, &bound, true, out);
                    out.append_child(wrap, copied)
                        .map_err(|e| XmlGlError::Eval { msg: e.to_string() })?;
                }
                produced.push(wrap);
            }
            Ok(produced)
        }
        CNodeKind::Aggregate { func, source } => {
            let values = distinct_bound(group, *source);
            let text = aggregate(doc, *func, &values)?;
            Ok(vec![out.create_text(&text)])
        }
    }
}

/// Ordering for sort keys: numbers numerically, otherwise lexicographic;
/// missing keys sort last.
fn compare_sort_keys(a: &Option<String>, b: &Option<String>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (Some(_), None) => std::cmp::Ordering::Less,
        (Some(x), Some(y)) => {
            match (
                gql_ssdm::value::parse_number(x),
                gql_ssdm::value::parse_number(y),
            ) {
                (Some(nx), Some(ny)) => nx.partial_cmp(&ny).unwrap_or(std::cmp::Ordering::Equal),
                _ => x.cmp(y),
            }
        }
    }
}

fn first_bound(group: &[Binding], q: QNodeId) -> Result<Bound> {
    group
        .iter()
        .find_map(|b| b.get(q).cloned())
        .ok_or_else(|| XmlGlError::Eval {
            msg: format!("query node {q:?} is unbound"),
        })
}

fn first_bound_text(doc: &Document, group: &[Binding], q: QNodeId) -> Result<String> {
    Ok(bound_text(doc, &first_bound(group, q)?))
}

/// Copy a bound value into the output document (detached).
fn copy_bound(doc: &Document, bound: &Bound, deep: bool, out: &mut Document) -> NodeId {
    match bound {
        Bound::Value { text, .. } => out.create_text(text),
        Bound::Node(n) => {
            if deep {
                out.import_subtree(doc, *n)
            } else {
                // Shallow: the element shell with its attributes only.
                let el = out.create_element(doc.name(*n).unwrap_or(""));
                let attrs: Vec<(String, String)> = doc
                    .attrs(*n)
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect();
                for (k, v) in attrs {
                    out.set_attr(el, &k, &v)
                        .expect("fresh element accepts attrs");
                }
                el
            }
        }
    }
}

fn aggregate(doc: &Document, func: AggFunc, values: &[Bound]) -> Result<String> {
    if func == AggFunc::Count {
        return Ok(values.len().to_string());
    }
    let nums: Vec<f64> = values
        .iter()
        .map(|v| {
            let t = bound_text(doc, v);
            gql_ssdm::value::parse_number(&t).ok_or_else(|| XmlGlError::Eval {
                msg: format!("{func:?} over non-number {t:?}"),
            })
        })
        .collect::<Result<_>>()?;
    if nums.is_empty() {
        // min/max/avg/sum of nothing: empty string mirrors "no value".
        return Ok(if func == AggFunc::Sum {
            "0".to_string()
        } else {
            String::new()
        });
    }
    let v = match func {
        AggFunc::Sum => nums.iter().sum(),
        AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
        AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggFunc::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
        AggFunc::Count => unreachable!("handled above"),
    };
    // Round away accumulated binary-float noise (sums of prices like 39.95
    // would otherwise print as 145.85000000000002).
    let rounded = (v * 1e9).round() / 1e9;
    Ok(gql_ssdm::value::format_number(rounded))
}

#[cfg(test)]
mod tests {
    use super::super::run_rule;
    use crate::ast::{AggFunc, CmpOp};
    use crate::builder::{RuleBuilder, C, Q};
    use gql_ssdm::Document;

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994'><title>TCP/IP</title><price>65.95</price></book>\
               <book year='2000'><title>Data on the Web</title><price>39.95</price></book>\
               <book year='2000'><title>XML Handbook</title><price>39.95</price></book>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn all_collects_every_match() {
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("result").child(C::all("b")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let root = out.root_element().unwrap();
        assert_eq!(out.name(root), Some("result"));
        assert_eq!(out.child_elements(root).count(), 3);
        // Deep copies: titles present.
        assert!(out.to_xml_string().contains("<title>TCP/IP</title>"));
    }

    #[test]
    fn copy_instantiates_per_binding() {
        let r = RuleBuilder::new()
            .extract(Q::elem("book").child(Q::elem("title").child(Q::text().var("t"))))
            .construct(C::elem("entry").child(C::copy("t")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let entries: Vec<_> = out.child_elements(out.root()).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(out.text_content(entries[0]), "TCP/IP");
    }

    #[test]
    fn shallow_copy_keeps_attrs_only() {
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("shells").child(C::all("b")))
            .build()
            .unwrap();
        // all() is deep; use copy_shallow via scope instead.
        let r2 = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("shell").child(C::copy_shallow("b")))
            .build()
            .unwrap();
        let out = run_rule(&r2, &doc()).unwrap();
        let first = out.child_elements(out.root()).next().unwrap();
        let book = out.child_elements(first).next().unwrap();
        assert_eq!(out.attr(book, "year"), Some("1994"));
        assert_eq!(out.children(book).len(), 0);
        drop(r);
    }

    #[test]
    fn attributes_from_bindings() {
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .child(Q::attr("year").var("y"))
                    .child(Q::elem("title").child(Q::text().var("t"))),
            )
            .construct(
                C::elem("entry")
                    .child(C::attr_var("published", "y"))
                    .child(C::copy("t")),
            )
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let first = out.child_elements(out.root()).next().unwrap();
        assert_eq!(out.attr(first, "published"), Some("1994"));
    }

    #[test]
    fn aggregates() {
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::elem("price").child(Q::text().var("p"))),
            )
            .construct(
                C::elem("stats")
                    .child(C::elem("n").child(C::agg(AggFunc::Count, "b")))
                    .child(C::elem("total").child(C::agg(AggFunc::Sum, "p")))
                    .child(C::elem("cheapest").child(C::agg(AggFunc::Min, "p")))
                    .child(C::elem("dearest").child(C::agg(AggFunc::Max, "p"))),
            )
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let xml = out.to_xml_string();
        assert!(xml.contains("<n>3</n>"), "{xml}");
        assert!(xml.contains("<total>145.85</total>"), "{xml}");
        assert!(xml.contains("<cheapest>39.95</cheapest>"), "{xml}");
        assert!(xml.contains("<dearest>65.95</dearest>"), "{xml}");
    }

    #[test]
    fn count_distinct_is_by_identity_not_value() {
        // Two books share the price 39.95 — count over price text still sees
        // one value per *text occurrence*; values are strings, so identical
        // strings collapse. Counting books (nodes) keeps all three.
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("n").child(C::agg(AggFunc::Count, "b")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        assert!(out.to_xml_string().contains(">3<") || out.to_xml_string().contains("<n>3</n>"));
    }

    #[test]
    fn group_by_emits_one_wrapper_per_key() {
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b").child(Q::attr("year").var("y")))
            .construct(C::elem("by-year").child(C::group_by("b", "y", "year-group")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let root = out.root_element().unwrap();
        let groups: Vec<_> = out.child_elements(root).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(out.attr(groups[0], "key"), Some("1994"));
        assert_eq!(out.child_elements(groups[0]).count(), 1);
        assert_eq!(out.attr(groups[1], "key"), Some("2000"));
        assert_eq!(out.child_elements(groups[1]).count(), 2);
    }

    #[test]
    fn static_construction_without_bindings() {
        let r = RuleBuilder::new()
            .extract(Q::elem("nonexistent").var("x"))
            .construct(C::elem("empty").child(C::all("x")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        assert_eq!(out.to_xml_string(), "<empty/>");
    }

    #[test]
    fn no_instances_when_scope_unmatched() {
        let r = RuleBuilder::new()
            .extract(Q::elem("nonexistent").child(Q::text().var("t")))
            .construct(C::elem("entry").child(C::copy("t")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        assert_eq!(out.to_xml_string(), "");
    }

    #[test]
    fn literal_text_and_attrs() {
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(
                C::elem("report")
                    .child(C::attr("generated-by", "gql"))
                    .child(C::text("books: "))
                    .child(C::elem("list").child(C::all("b"))),
            )
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let xml = out.to_xml_string();
        assert!(
            xml.starts_with("<report generated-by=\"gql\">books: <list>"),
            "{xml}"
        );
    }

    #[test]
    fn restructuring_inverts_nesting() {
        // Q9-style: group titles under their year — nesting inversion.
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .child(Q::attr("year").var("y"))
                    .child(Q::elem("title").var("t")),
            )
            .construct(C::elem("years").child(C::group_by("t", "y", "year")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let xml = out.to_xml_string();
        assert!(xml.contains("<year key=\"2000\"><title>Data on the Web</title><title>XML Handbook</title></year>"), "{xml}");
    }

    #[test]
    fn the_paper_f2_query_shape() {
        // F2: all BOOKs (with their subelements) from the source.
        let r = RuleBuilder::new()
            .extract(Q::elem("book").var("b"))
            .construct(C::elem("result").child(C::all("b")))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        assert_eq!(out.child_elements(out.root_element().unwrap()).count(), 3);
    }

    #[test]
    fn sorted_collection_orders_by_key() {
        use crate::builder::C as CB;
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::elem("price").child(Q::text().var("p"))),
            )
            .construct(C::elem("by-price").child(CB::all_sorted("b", "p", false)))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let root = out.root_element().unwrap();
        let prices: Vec<String> = out
            .child_elements(root)
            .map(|b| gql_ssdm::path::select_text(&out, b, "price").unwrap())
            .collect();
        assert_eq!(prices, vec!["39.95", "39.95", "65.95"]);
        // Descending flips the order.
        let r = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::elem("price").child(Q::text().var("p"))),
            )
            .construct(C::elem("by-price").child(CB::all_sorted("b", "p", true)))
            .build()
            .unwrap();
        let out = run_rule(&r, &doc()).unwrap();
        let root = out.root_element().unwrap();
        let first = out.child_elements(root).next().unwrap();
        assert_eq!(
            gql_ssdm::path::select_text(&out, first, "price").unwrap(),
            "65.95"
        );
    }

    #[test]
    fn sort_keys_numeric_before_lexicographic() {
        // Titles sort lexicographically, prices numerically ("9" < "10").
        let d = gql_ssdm::Document::parse_str(
            "<bib><book><title>b</title><price>10</price></book>\
             <book><title>a</title><price>9</price></book></bib>",
        )
        .unwrap();
        let by_price = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::elem("price").child(Q::text().var("p"))),
            )
            .construct(C::elem("out").child(C::all_sorted("b", "p", false)))
            .build()
            .unwrap();
        let out = run_rule(&by_price, &d).unwrap();
        let root = out.root_element().unwrap();
        let first = out.child_elements(root).next().unwrap();
        assert_eq!(
            gql_ssdm::path::select_text(&out, first, "price").unwrap(),
            "9"
        );
    }

    #[test]
    fn multi_rule_program_concatenates() {
        use crate::ast::Program;
        let r1 = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").pred(CmpOp::Eq, "1994")),
            )
            .construct(C::elem("old").child(C::all("b")))
            .build()
            .unwrap();
        let r2 = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").pred(CmpOp::Eq, "2000")),
            )
            .construct(C::elem("new").child(C::all("b")))
            .build()
            .unwrap();
        let out = super::super::run(
            &Program {
                rules: vec![r1, r2],
            },
            &doc(),
        )
        .unwrap();
        let tops: Vec<_> = out.child_elements(out.root()).collect();
        assert_eq!(tops.len(), 2);
        assert_eq!(out.name(tops[0]), Some("old"));
        assert_eq!(out.name(tops[1]), Some("new"));
        assert_eq!(out.child_elements(tops[1]).count(), 2);
    }
}
