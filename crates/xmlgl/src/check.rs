//! Well-formedness checking of XML-GL diagrams.
//!
//! A drawing can be syntactically assembled and still be meaningless; these
//! are the rules the interactive editor would enforce while drawing, applied
//! to the AST instead:
//!
//! 1. text and attribute circles are leaves;
//! 2. extract roots are element boxes;
//! 3. variable names bind at most one node per rule;
//! 4. negated subtrees bind no variables (nothing inside "does not exist"
//!    can flow to the construct side);
//! 5. join endpoints are distinct nodes;
//! 6. construct roots are element nodes, attribute nodes hang off elements,
//!    and collector/aggregate nodes are leaves.

use std::collections::HashSet;

use crate::ast::{CNodeKind, ExtractGraph, Program, QNodeId, QNodeKind, Rule};
use crate::{Result, XmlGlError};

fn ill(msg: impl Into<String>) -> XmlGlError {
    XmlGlError::IllFormed { msg: msg.into() }
}

/// Check every rule of a program.
pub fn check_program(p: &Program) -> Result<()> {
    if p.rules.is_empty() {
        return Err(ill("a program needs at least one rule"));
    }
    for (i, rule) in p.rules.iter().enumerate() {
        check_rule(rule).map_err(|e| match e {
            XmlGlError::IllFormed { msg } => ill(format!("rule {}: {msg}", i + 1)),
            other => other,
        })?;
    }
    Ok(())
}

/// Check one rule.
pub fn check_rule(rule: &Rule) -> Result<()> {
    check_extract(&rule.extract)?;
    check_construct(rule)?;
    Ok(())
}

fn check_extract(g: &ExtractGraph) -> Result<()> {
    if g.roots.is_empty() {
        return Err(ill("extract graph has no root"));
    }
    // Roots are elements.
    for &r in &g.roots {
        if !matches!(g.node(r).kind, QNodeKind::Element(_)) {
            return Err(ill("extract roots must be element boxes"));
        }
    }
    // Leaf discipline and reachability bookkeeping.
    let mut seen_vars: HashSet<&str> = HashSet::new();
    for id in g.ids() {
        let n = g.node(id);
        match n.kind {
            QNodeKind::Text | QNodeKind::Attribute(_) => {
                if !n.children.is_empty() {
                    return Err(ill("text/attribute circles cannot have children"));
                }
            }
            QNodeKind::Element(_) => {}
        }
        if let Some(v) = &n.var {
            if v.is_empty() {
                return Err(ill("empty variable name"));
            }
            if !seen_vars.insert(v.as_str()) {
                return Err(ill(format!("variable ${v} is bound twice")));
            }
        }
        for e in &n.children {
            if e.target.index() >= g.nodes.len() {
                return Err(ill("dangling containment edge"));
            }
        }
    }
    // Each node has at most one containment parent (tree/forest shape; the
    // shared-node join idiom is represented by `joins`, not by DAG edges).
    let mut parented: HashSet<QNodeId> = HashSet::new();
    for id in g.ids() {
        for e in &g.node(id).children {
            if !parented.insert(e.target) {
                return Err(ill(format!(
                    "node {:?} has two containment parents; use a join instead",
                    e.target
                )));
            }
        }
    }
    for &r in &g.roots {
        if parented.contains(&r) {
            return Err(ill("a root cannot also be a child"));
        }
    }
    // Negated subtrees bind no variables.
    for id in g.ids() {
        for e in &g.node(id).children {
            if e.negated {
                let mut stack = vec![e.target];
                while let Some(t) = stack.pop() {
                    let tn = g.node(t);
                    if tn.var.is_some() {
                        return Err(ill(
                            "variables inside a negated (crossed-out) subtree can never bind",
                        ));
                    }
                    stack.extend(tn.children.iter().map(|c| c.target));
                }
            }
        }
    }
    // Joins connect distinct existing nodes that can actually bind: an
    // endpoint inside a negated subtree is never bound, which would make
    // the join silently unsatisfiable.
    let mut negated_scope: HashSet<QNodeId> = HashSet::new();
    for id in g.ids() {
        for e in &g.node(id).children {
            if e.negated {
                let mut stack = vec![e.target];
                while let Some(t) = stack.pop() {
                    if negated_scope.insert(t) {
                        stack.extend(g.node(t).children.iter().map(|c| c.target));
                    }
                }
            }
        }
    }
    for &(a, b) in &g.joins {
        if a == b {
            return Err(ill("a join must connect two distinct nodes"));
        }
        if a.index() >= g.nodes.len() || b.index() >= g.nodes.len() {
            return Err(ill("join references a missing node"));
        }
        if negated_scope.contains(&a) || negated_scope.contains(&b) {
            return Err(ill(
                "a join endpoint inside a negated subtree can never bind",
            ));
        }
    }
    Ok(())
}

fn check_construct(rule: &Rule) -> Result<()> {
    let g = &rule.construct;
    let q = &rule.extract;
    if g.roots.is_empty() {
        return Err(ill("construct graph has no root"));
    }
    for &r in &g.roots {
        if !matches!(g.node(r).kind, CNodeKind::Element(_)) {
            return Err(ill("construct roots must be element nodes"));
        }
    }
    let valid_q = |id: crate::ast::QNodeId| id.index() < q.nodes.len();
    for id in g.ids() {
        let n = g.node(id);
        match &n.kind {
            CNodeKind::Element(name) => {
                if name.is_empty() {
                    return Err(ill("constructed elements need a tag name"));
                }
            }
            CNodeKind::Text(_) => {
                if !n.children.is_empty() {
                    return Err(ill("text nodes are leaves on the construct side"));
                }
            }
            CNodeKind::Attribute { value, .. } => {
                if !n.children.is_empty() {
                    return Err(ill("attribute nodes are leaves on the construct side"));
                }
                if let crate::ast::CValue::Binding(src) = value {
                    if !valid_q(*src) {
                        return Err(ill("attribute value references a missing query node"));
                    }
                }
            }
            CNodeKind::Copy { source, .. } | CNodeKind::All { source, .. } => {
                if !n.children.is_empty() {
                    return Err(ill("copy/all nodes are leaves on the construct side"));
                }
                if !valid_q(*source) {
                    return Err(ill("binding references a missing query node"));
                }
            }
            CNodeKind::GroupBy {
                source,
                key,
                wrapper,
            } => {
                if !n.children.is_empty() {
                    return Err(ill("group-by nodes are leaves on the construct side"));
                }
                if wrapper.is_empty() {
                    return Err(ill("group-by needs a wrapper element name"));
                }
                if !valid_q(*source) || !valid_q(*key) {
                    return Err(ill("group-by references a missing query node"));
                }
            }
            CNodeKind::Aggregate { source, .. } => {
                if !n.children.is_empty() {
                    return Err(ill("aggregate nodes are leaves on the construct side"));
                }
                if !valid_q(*source) {
                    return Err(ill("aggregate references a missing query node"));
                }
            }
        }
        // Attributes must hang off element nodes.
        for &c in &n.children {
            if matches!(g.node(c).kind, CNodeKind::Attribute { .. })
                && !matches!(n.kind, CNodeKind::Element(_))
            {
                return Err(ill(
                    "attributes can only be attached to constructed elements",
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn minimal_rule() -> Rule {
        let mut extract = ExtractGraph::default();
        let b = extract.add(QNode::element(NameTest::Name("book".into())));
        extract.roots.push(b);
        let mut construct = ConstructGraph::default();
        let out = construct.add(CNode::new(CNodeKind::Element("out".into())));
        construct.roots.push(out);
        Rule { extract, construct }
    }

    #[test]
    fn minimal_rule_is_wellformed() {
        assert!(check_rule(&minimal_rule()).is_ok());
    }

    #[test]
    fn empty_program_rejected() {
        assert!(check_program(&Program::default()).is_err());
    }

    #[test]
    fn program_error_names_the_rule() {
        let mut bad = minimal_rule();
        bad.extract.roots.clear();
        let p = Program {
            rules: vec![minimal_rule(), bad],
        };
        let err = check_program(&p).unwrap_err();
        assert!(err.to_string().contains("rule 2"), "{err}");
    }

    #[test]
    fn text_with_children_rejected() {
        let mut rule = minimal_rule();
        let t = rule.extract.add(QNode::text());
        let c = rule.extract.add(QNode::element(NameTest::Wildcard));
        rule.extract.node_mut(t).children.push(QEdge::child(c));
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).children.push(QEdge::child(t));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("circles"));
    }

    #[test]
    fn text_root_rejected() {
        let mut rule = minimal_rule();
        let t = rule.extract.add(QNode::text());
        rule.extract.roots = vec![t];
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("element boxes"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).var = Some("x".into());
        let mut t = QNode::text();
        t.var = Some("x".into());
        let t = rule.extract.add(t);
        rule.extract.node_mut(root).children.push(QEdge::child(t));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("bound twice"));
    }

    #[test]
    fn two_parents_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let a = rule.extract.add(QNode::element(NameTest::Name("a".into())));
        let shared = rule.extract.add(QNode::text());
        rule.extract.node_mut(root).children.push(QEdge::child(a));
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::child(shared));
        rule.extract.node_mut(a).children.push(QEdge::child(shared));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("join instead"));
    }

    #[test]
    fn variable_in_negation_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let mut neg = QNode::element(NameTest::Name("menu".into()));
        neg.var = Some("m".into());
        let neg = rule.extract.add(neg);
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::negated(neg));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("negated"));
    }

    #[test]
    fn join_into_negated_subtree_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).var = Some("b".into());
        let neg = rule
            .extract
            .add(QNode::element(NameTest::Name("menu".into())));
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::negated(neg));
        rule.extract.joins.push((root, neg));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("negated subtree"));
    }

    #[test]
    fn self_join_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.joins.push((root, root));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("distinct"));
    }

    #[test]
    fn construct_root_must_be_element() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let mut construct = ConstructGraph::default();
        let c = construct.add(CNode::new(CNodeKind::All {
            source: root,
            order: None,
        }));
        construct.roots.push(c);
        rule.construct = construct;
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("construct roots"));
    }

    #[test]
    fn attribute_under_non_element_rejected() {
        let mut rule = minimal_rule();
        let out = rule.construct.roots[0];
        let txt = rule.construct.add(CNode::new(CNodeKind::Text("x".into())));
        let attr = rule.construct.add(CNode::new(CNodeKind::Attribute {
            name: "a".into(),
            value: CValue::Literal("1".into()),
        }));
        rule.construct.node_mut(out).children.push(txt);
        rule.construct.node_mut(txt).children.push(attr);
        let err = check_rule(&rule).unwrap_err().to_string();
        assert!(err.contains("leaves") || err.contains("attached"), "{err}");
    }

    #[test]
    fn missing_query_node_reference_rejected() {
        let mut rule = minimal_rule();
        let out = rule.construct.roots[0];
        let bad = rule.construct.add(CNode::new(CNodeKind::All {
            source: QNodeId(99),
            order: None,
        }));
        rule.construct.node_mut(out).children.push(bad);
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("missing query node"));
    }
}
