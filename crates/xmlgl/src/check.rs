//! Well-formedness and safety checking of XML-GL diagrams, reported as
//! structured diagnostics.
//!
//! A drawing can be syntactically assembled and still be meaningless; these
//! are the rules the interactive editor would enforce while drawing, applied
//! to the AST instead:
//!
//! 1. text and attribute circles are leaves;
//! 2. extract roots are element boxes;
//! 3. variable names bind at most one node per rule;
//! 4. negated subtrees bind no variables (nothing inside "does not exist"
//!    can flow to the construct side);
//! 5. join endpoints are distinct nodes outside negated scope;
//! 6. construct roots are element nodes, attribute nodes hang off elements,
//!    and collector/aggregate nodes are leaves;
//! 7. **safety / range restriction**: every query node the construct side
//!    references is positively bound — a reference into a negated subtree
//!    can never produce a binding.
//!
//! The primary interface is [`diagnostics`], which reports *every* problem
//! as a [`Diagnostic`] with a stable code, severity, source span and the
//! offending rule's label. [`check_program`]/[`check_rule`] are the
//! original fail-fast API, kept as a shim over the first Error-level
//! diagnostic.

use std::collections::HashSet;

use gql_ssdm::diag::{Code, Diagnostic};

use crate::ast::{CNodeKind, CValue, ExtractGraph, Program, QNodeId, QNodeKind, Rule};
use crate::{Result, XmlGlError};

/// Human label for a rule: 1-based index plus the first extract root's
/// element name, e.g. `rule 2 (book)`.
pub fn rule_label(rule: &Rule, index: usize) -> String {
    match rule
        .extract
        .roots
        .first()
        .map(|&r| &rule.extract.node(r).kind)
    {
        Some(QNodeKind::Element(t)) => format!("rule {} ({t})", index + 1),
        _ => format!("rule {}", index + 1),
    }
}

/// All well-formedness/safety diagnostics for a program, each tagged with
/// the offending rule's label and source span.
pub fn diagnostics(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if p.rules.is_empty() {
        out.push(Diagnostic::new(
            Code::XmlGlIllFormed,
            "a program needs at least one rule",
        ));
        return out;
    }
    for (i, rule) in p.rules.iter().enumerate() {
        let label = rule_label(rule, i);
        for mut d in rule_diagnostics(rule) {
            if d.span.is_none() {
                d.span = rule.span;
            }
            out.push(d.with_rule(label.clone()));
        }
    }
    out
}

/// All diagnostics for a single rule (no rule label attached).
pub fn rule_diagnostics(rule: &Rule) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    extract_diagnostics(&rule.extract, &mut out);
    construct_diagnostics(rule, &mut out);
    out
}

/// Check every rule of a program; fails with the first Error-level
/// diagnostic, its message prefixed by the rule's label.
pub fn check_program(p: &Program) -> Result<()> {
    match diagnostics(p).into_iter().find(Diagnostic::is_error) {
        Some(d) => Err(XmlGlError::IllFormed {
            msg: match &d.rule {
                Some(label) => format!("{label}: {}", d.message),
                None => d.message,
            },
        }),
        None => Ok(()),
    }
}

/// Check one rule; fails with the first Error-level diagnostic.
pub fn check_rule(rule: &Rule) -> Result<()> {
    match rule_diagnostics(rule)
        .into_iter()
        .find(Diagnostic::is_error)
    {
        Some(d) => Err(XmlGlError::IllFormed { msg: d.message }),
        None => Ok(()),
    }
}

/// Query nodes reachable through a negated (crossed-out) edge: nothing in
/// here ever produces a binding.
pub fn negated_scope(g: &ExtractGraph) -> HashSet<QNodeId> {
    let mut scope: HashSet<QNodeId> = HashSet::new();
    for id in g.ids() {
        for e in &g.node(id).children {
            if e.negated && e.target.index() < g.nodes.len() {
                let mut stack = vec![e.target];
                while let Some(t) = stack.pop() {
                    if scope.insert(t) {
                        stack.extend(
                            g.node(t)
                                .children
                                .iter()
                                .map(|c| c.target)
                                .filter(|c| c.index() < g.nodes.len()),
                        );
                    }
                }
            }
        }
    }
    scope
}

fn extract_diagnostics(g: &ExtractGraph, out: &mut Vec<Diagnostic>) {
    if g.roots.is_empty() {
        out.push(Diagnostic::new(
            Code::XmlGlIllFormed,
            "extract graph has no root",
        ));
    }
    // Roots are elements.
    for &r in &g.roots {
        if !matches!(g.node(r).kind, QNodeKind::Element(_)) {
            out.push(
                Diagnostic::new(Code::XmlGlIllFormed, "extract roots must be element boxes")
                    .with_span(g.node(r).span),
            );
        }
    }
    // Leaf discipline, variable discipline, dangling edges.
    let mut seen_vars: HashSet<&str> = HashSet::new();
    for id in g.ids() {
        let n = g.node(id);
        match n.kind {
            QNodeKind::Text | QNodeKind::Attribute(_) => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "text/attribute circles cannot have children",
                        )
                        .with_span(n.span),
                    );
                }
            }
            QNodeKind::Element(_) => {}
        }
        if let Some(v) = &n.var {
            if v.is_empty() {
                out.push(
                    Diagnostic::new(Code::XmlGlIllFormed, "empty variable name").with_span(n.span),
                );
            } else if !seen_vars.insert(v.as_str()) {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateVariable,
                        format!("variable ${v} is bound twice"),
                    )
                    .with_span(n.span)
                    .with_help(format!(
                        "rename one occurrence, or use `join ${v} == $other` \
                         to express that two nodes bind equal data"
                    )),
                );
            }
        }
        for e in &n.children {
            if e.target.index() >= g.nodes.len() {
                out.push(
                    Diagnostic::new(Code::XmlGlIllFormed, "dangling containment edge")
                        .with_span(n.span),
                );
            }
        }
    }
    // Each node has at most one containment parent (tree/forest shape; the
    // shared-node join idiom is represented by `joins`, not by DAG edges).
    let mut parented: HashSet<QNodeId> = HashSet::new();
    for id in g.ids() {
        for e in &g.node(id).children {
            if e.target.index() < g.nodes.len() && !parented.insert(e.target) {
                out.push(
                    Diagnostic::new(
                        Code::XmlGlIllFormed,
                        format!(
                            "node {:?} has two containment parents; use a join instead",
                            e.target
                        ),
                    )
                    .with_span(g.node(e.target).span),
                );
            }
        }
    }
    for &r in &g.roots {
        if parented.contains(&r) {
            out.push(
                Diagnostic::new(Code::XmlGlIllFormed, "a root cannot also be a child")
                    .with_span(g.node(r).span),
            );
        }
    }
    // Negated subtrees bind no variables.
    let scope = negated_scope(g);
    for &t in &scope {
        if g.node(t).var.is_some() {
            out.push(
                Diagnostic::new(
                    Code::NegationScope,
                    "variables inside a negated (crossed-out) subtree can never bind",
                )
                .with_span(g.node(t).span)
                .with_help(
                    "negation asserts absence; move the binding outside the \
                     crossed-out edge or drop the variable",
                ),
            );
        }
    }
    // Joins connect distinct existing nodes that can actually bind: an
    // endpoint inside a negated subtree is never bound, which would make
    // the join silently unsatisfiable.
    for &(a, b) in &g.joins {
        if a == b {
            out.push(
                Diagnostic::new(
                    Code::XmlGlIllFormed,
                    "a join must connect two distinct nodes",
                )
                .with_span(if a.index() < g.nodes.len() {
                    g.node(a).span
                } else {
                    Default::default()
                }),
            );
            continue;
        }
        if a.index() >= g.nodes.len() || b.index() >= g.nodes.len() {
            out.push(Diagnostic::new(
                Code::XmlGlIllFormed,
                "join references a missing node",
            ));
            continue;
        }
        if scope.contains(&a) || scope.contains(&b) {
            out.push(
                Diagnostic::new(
                    Code::NegationScope,
                    "a join endpoint inside a negated subtree can never bind",
                )
                .with_span(g.node(a).span),
            );
        }
    }
}

fn construct_diagnostics(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let g = &rule.construct;
    let q = &rule.extract;
    if g.roots.is_empty() {
        out.push(Diagnostic::new(
            Code::XmlGlIllFormed,
            "construct graph has no root",
        ));
    }
    for &r in &g.roots {
        if !matches!(g.node(r).kind, CNodeKind::Element(_)) {
            out.push(
                Diagnostic::new(
                    Code::XmlGlIllFormed,
                    "construct roots must be element nodes",
                )
                .with_span(g.node(r).span),
            );
        }
    }
    // Safety / range restriction: construct references must point at query
    // nodes that exist AND are positively bound (outside negated scope).
    let neg = negated_scope(q);
    let valid_q = |id: QNodeId| id.index() < q.nodes.len();
    let check_ref = |what: &str, src: QNodeId, span: gql_ssdm::Span, out: &mut Vec<Diagnostic>| {
        if !valid_q(src) {
            out.push(
                Diagnostic::new(
                    Code::XmlGlIllFormed,
                    format!("{what} references a missing query node"),
                )
                .with_span(span),
            );
        } else if neg.contains(&src) {
            let name = q
                .node(src)
                .var
                .as_ref()
                .map(|v| format!("${v}"))
                .unwrap_or_else(|| format!("query node {}", src.0));
            out.push(
                Diagnostic::new(
                    Code::UnsafeConstruct,
                    format!(
                        "unsafe construct part: {what} references {name} inside a \
                         negated subtree, which can never bind"
                    ),
                )
                .with_span(span)
                .with_help(
                    "every construct-side reference must be positively bound \
                     on the extract side (range restriction)",
                ),
            );
        }
    };
    for id in g.ids() {
        let n = g.node(id);
        match &n.kind {
            CNodeKind::Element(name) => {
                if name.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "constructed elements need a tag name",
                        )
                        .with_span(n.span),
                    );
                }
            }
            CNodeKind::Text(_) => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "text nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
            }
            CNodeKind::Attribute { value, .. } => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "attribute nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
                if let CValue::Binding(src) = value {
                    check_ref("attribute value", *src, n.span, out);
                }
            }
            CNodeKind::Copy { source, .. } => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "copy/all nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
                check_ref("copy", *source, n.span, out);
            }
            CNodeKind::All { source, order } => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "copy/all nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
                check_ref("binding", *source, n.span, out);
                if let Some(spec) = order {
                    check_ref("order-by key", spec.key, n.span, out);
                }
            }
            CNodeKind::GroupBy {
                source,
                key,
                wrapper,
            } => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "group-by nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
                if wrapper.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "group-by needs a wrapper element name",
                        )
                        .with_span(n.span),
                    );
                }
                if !valid_q(*source) || !valid_q(*key) {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "group-by references a missing query node",
                        )
                        .with_span(n.span),
                    );
                } else {
                    check_ref("group-by source", *source, n.span, out);
                    check_ref("group-by key", *key, n.span, out);
                }
            }
            CNodeKind::Aggregate { source, .. } => {
                if !n.children.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "aggregate nodes are leaves on the construct side",
                        )
                        .with_span(n.span),
                    );
                }
                if !valid_q(*source) {
                    out.push(
                        Diagnostic::new(
                            Code::XmlGlIllFormed,
                            "aggregate references a missing query node",
                        )
                        .with_span(n.span),
                    );
                } else {
                    check_ref("aggregate", *source, n.span, out);
                }
            }
        }
        // Attributes must hang off element nodes.
        for &c in &n.children {
            if matches!(g.node(c).kind, CNodeKind::Attribute { .. })
                && !matches!(n.kind, CNodeKind::Element(_))
            {
                out.push(
                    Diagnostic::new(
                        Code::XmlGlIllFormed,
                        "attributes can only be attached to constructed elements",
                    )
                    .with_span(g.node(c).span),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use gql_ssdm::Severity;

    fn minimal_rule() -> Rule {
        let mut extract = ExtractGraph::default();
        let b = extract.add(QNode::element(NameTest::Name("book".into())));
        extract.roots.push(b);
        let mut construct = ConstructGraph::default();
        let out = construct.add(CNode::new(CNodeKind::Element("out".into())));
        construct.roots.push(out);
        Rule {
            extract,
            construct,
            span: Span::none(),
        }
    }

    #[test]
    fn minimal_rule_is_wellformed() {
        assert!(check_rule(&minimal_rule()).is_ok());
        assert!(rule_diagnostics(&minimal_rule()).is_empty());
    }

    #[test]
    fn empty_program_rejected() {
        assert!(check_program(&Program::default()).is_err());
    }

    #[test]
    fn program_error_names_the_rule_and_root_label() {
        let mut bad = minimal_rule();
        bad.extract.roots.clear();
        let p = Program {
            rules: vec![minimal_rule(), bad],
        };
        let err = check_program(&p).unwrap_err();
        assert!(err.to_string().contains("rule 2"), "{err}");
        // A rule that still has a root is labelled with its element name.
        let mut dup = minimal_rule();
        let root = dup.extract.roots[0];
        dup.extract.node_mut(root).var = Some("x".into());
        let mut t = QNode::text();
        t.var = Some("x".into());
        let t = dup.extract.add(t);
        dup.extract.node_mut(root).children.push(QEdge::child(t));
        let p = Program {
            rules: vec![minimal_rule(), dup],
        };
        let err = check_program(&p).unwrap_err().to_string();
        assert!(err.contains("rule 2 (book)"), "{err}");
    }

    #[test]
    fn diagnostics_carry_codes_and_spans() {
        let src = "rule {\n  extract {\n    book as $b {\n      not menu as $m\n    }\n  }\n  construct { out { all $b } }\n}";
        let p = crate::dsl::parse_unchecked(src).unwrap();
        let ds = diagnostics(&p);
        assert_eq!(ds.len(), 1, "{ds:?}");
        let d = &ds[0];
        assert_eq!(d.code, Code::NegationScope);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.rule.as_deref(), Some("rule 1 (book)"));
        assert_eq!((d.span.line, d.span.col), (4, 11)); // the `menu` box
    }

    #[test]
    fn unsafe_construct_reference_is_gql004() {
        // Builder-style assembly: construct references a node under a
        // negated edge without binding a variable inside it.
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let neg = rule
            .extract
            .add(QNode::element(NameTest::Name("menu".into())));
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::negated(neg));
        let out = rule.construct.roots[0];
        let bad = rule.construct.add(CNode::new(CNodeKind::Copy {
            source: neg,
            deep: true,
        }));
        rule.construct.node_mut(out).children.push(bad);
        let ds = rule_diagnostics(&rule);
        assert!(ds.iter().any(|d| d.code == Code::UnsafeConstruct), "{ds:?}");
        assert!(check_rule(&rule).is_err());
    }

    #[test]
    fn text_with_children_rejected() {
        let mut rule = minimal_rule();
        let t = rule.extract.add(QNode::text());
        let c = rule.extract.add(QNode::element(NameTest::Wildcard));
        rule.extract.node_mut(t).children.push(QEdge::child(c));
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).children.push(QEdge::child(t));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("circles"));
    }

    #[test]
    fn text_root_rejected() {
        let mut rule = minimal_rule();
        let t = rule.extract.add(QNode::text());
        rule.extract.roots = vec![t];
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("element boxes"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).var = Some("x".into());
        let mut t = QNode::text();
        t.var = Some("x".into());
        let t = rule.extract.add(t);
        rule.extract.node_mut(root).children.push(QEdge::child(t));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("bound twice"));
        assert_eq!(rule_diagnostics(&rule)[0].code, Code::DuplicateVariable);
    }

    #[test]
    fn two_parents_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let a = rule.extract.add(QNode::element(NameTest::Name("a".into())));
        let shared = rule.extract.add(QNode::text());
        rule.extract.node_mut(root).children.push(QEdge::child(a));
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::child(shared));
        rule.extract.node_mut(a).children.push(QEdge::child(shared));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("join instead"));
    }

    #[test]
    fn variable_in_negation_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let mut neg = QNode::element(NameTest::Name("menu".into()));
        neg.var = Some("m".into());
        let neg = rule.extract.add(neg);
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::negated(neg));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("negated"));
        assert_eq!(rule_diagnostics(&rule)[0].code, Code::NegationScope);
    }

    #[test]
    fn join_into_negated_subtree_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.node_mut(root).var = Some("b".into());
        let neg = rule
            .extract
            .add(QNode::element(NameTest::Name("menu".into())));
        rule.extract
            .node_mut(root)
            .children
            .push(QEdge::negated(neg));
        rule.extract.joins.push((root, neg));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("negated subtree"));
    }

    #[test]
    fn self_join_rejected() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        rule.extract.joins.push((root, root));
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("distinct"));
    }

    #[test]
    fn construct_root_must_be_element() {
        let mut rule = minimal_rule();
        let root = rule.extract.roots[0];
        let mut construct = ConstructGraph::default();
        let c = construct.add(CNode::new(CNodeKind::All {
            source: root,
            order: None,
        }));
        construct.roots.push(c);
        rule.construct = construct;
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("construct roots"));
    }

    #[test]
    fn attribute_under_non_element_rejected() {
        let mut rule = minimal_rule();
        let out = rule.construct.roots[0];
        let txt = rule.construct.add(CNode::new(CNodeKind::Text("x".into())));
        let attr = rule.construct.add(CNode::new(CNodeKind::Attribute {
            name: "a".into(),
            value: CValue::Literal("1".into()),
        }));
        rule.construct.node_mut(out).children.push(txt);
        rule.construct.node_mut(txt).children.push(attr);
        let err = check_rule(&rule).unwrap_err().to_string();
        assert!(err.contains("leaves") || err.contains("attached"), "{err}");
    }

    #[test]
    fn missing_query_node_reference_rejected() {
        let mut rule = minimal_rule();
        let out = rule.construct.roots[0];
        let bad = rule.construct.add(CNode::new(CNodeKind::All {
            source: QNodeId(99),
            order: None,
        }));
        rule.construct.node_mut(out).children.push(bad);
        assert!(check_rule(&rule)
            .unwrap_err()
            .to_string()
            .contains("missing query node"));
    }
}
