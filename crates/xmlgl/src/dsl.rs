//! The GQL DSL — a textual concrete syntax for XML-GL diagrams.
//!
//! Since this reproduction replaces the interactive diagram editor with a
//! programmatic model, the DSL is the human-writable projection of a
//! diagram; it round-trips losslessly ([`parse`] ∘ [`print()`](fn@print) = id up to
//! formatting). Shape of the syntax:
//!
//! ```text
//! rule {
//!   extract {
//!     book as $b {                      # element box, bound to $b
//!       @year as $y >= "2000"           # filled circle (attribute) + predicate
//!       title { text as $t }            # box + hollow circle (content)
//!       deep section                    # asterisk edge (any depth)
//!       not errata                      # crossed-out edge (negation)
//!     }
//!     person as $p [ first last ]       # [ ] = ordered containment
//!     join $t == $p                     # shared node (deep-equal join)
//!   }
//!   construct {
//!     result {
//!       all $b                          # triangle
//!       all $b group by $y as year-group  # list icon
//!       count($b) "books"               # aggregate + literal text
//!       @source = "bib.xml"             # constructed attribute
//!       copy $t                         # one instance per binding
//!     }
//!   }
//! }
//! ```
//!
//! `#` starts a line comment. Predicates chain with `and`/`or`
//! (`text >= "16" and <= "20"`, `text = "a" or = "b"`). The identifier
//! `text` is reserved for content circles; query elements named literally
//! `text` can be matched with a wildcard box plus predicates.

use crate::ast::{
    AggFunc, CNode, CNodeId, CNodeKind, CValue, CmpOp, ConstructGraph, ExtractGraph, NameTest,
    Predicate, Program, QEdge, QNode, QNodeId, QNodeKind, Rule, Span,
};
use crate::{Result, XmlGlError};

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    At,
    Assign,
    EqEq,
    Op(CmpOp),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Var(v) => format!("${v}"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::LBrace => "'{'".into(),
            Tok::RBrace => "'}'".into(),
            Tok::LBracket => "'['".into(),
            Tok::RBracket => "']'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::At => "'@'".into(),
            Tok::Assign => "'='".into(),
            Tok::EqEq => "'=='".into(),
            Tok::Op(op) => format!("'{}'", op.symbol()),
        }
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '*' || c == '.'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '*' | ':')
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> XmlGlError {
        XmlGlError::Syntax {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, u32, u32)>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace, separators and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() || c == ';' || c == ',' => {
                        self.bump();
                    }
                    Some('#') => {
                        while matches!(self.peek(), Some(c) if c != '\n') {
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                '{' => {
                    self.bump();
                    Tok::LBrace
                }
                '}' => {
                    self.bump();
                    Tok::RBrace
                }
                '[' => {
                    self.bump();
                    Tok::LBracket
                }
                ']' => {
                    self.bump();
                    Tok::RBracket
                }
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                '@' => {
                    self.bump();
                    Tok::At
                }
                '$' => {
                    self.bump();
                    let mut name = String::new();
                    while matches!(self.peek(), Some(c) if is_ident_char(c)) {
                        name.push(self.bump().expect("peeked"));
                    }
                    if name.is_empty() {
                        return Err(self.err("expected a variable name after '$'"));
                    }
                    Tok::Var(name)
                }
                '"' | '\'' => {
                    let quote = c;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(c) if c == quote => break,
                            Some('\\') => match self.bump() {
                                Some(e @ ('"' | '\'' | '\\')) => s.push(e),
                                Some('n') => s.push('\n'),
                                Some(other) => {
                                    return Err(self.err(format!("bad escape '\\{other}'")))
                                }
                                None => return Err(self.err("unterminated string")),
                            },
                            Some(c) => s.push(c),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    Tok::Str(s)
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        Tok::Assign
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.err("lone '!'"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Op(CmpOp::Le)
                    } else {
                        Tok::Op(CmpOp::Lt)
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                c if is_ident_start(c) => {
                    let mut s = String::new();
                    while matches!(self.peek(), Some(c) if is_ident_char(c)) {
                        s.push(self.bump().expect("peeked"));
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character '{other}'"))),
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// Parse a GQL DSL program and run the well-formedness checks.
pub fn parse(src: &str) -> Result<Program> {
    let program = parse_unchecked(src)?;
    crate::check::check_program(&program)?;
    Ok(program)
}

/// Parse without running the well-formedness checks. This is the static
/// analyzer's entry point: it wants the AST of ill-formed programs so it
/// can report *all* their problems as structured diagnostics, not just the
/// first one as a parse failure.
pub fn parse_unchecked(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.eof() {
        rules.push(p.parse_rule()?);
    }
    if rules.is_empty() {
        return Err(XmlGlError::Syntax {
            line: 1,
            col: 1,
            msg: "empty program".into(),
        });
    }
    Ok(Program { rules })
}

/// Parse a single rule (must be exactly one).
pub fn parse_rule(src: &str) -> Result<Rule> {
    let mut program = parse(src)?;
    if program.rules.len() != 1 {
        return Err(XmlGlError::Syntax {
            line: 1,
            col: 1,
            msg: format!("expected exactly one rule, found {}", program.rules.len()),
        });
    }
    Ok(program.rules.remove(0))
}

struct Parser {
    tokens: Vec<(Tok, u32, u32)>,
    pos: usize,
}

impl Parser {
    fn eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Source position of the token about to be consumed.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map_or(Span::none(), |(_, l, c)| Span::new(*l, *c))
    }

    fn err_here(&self, msg: impl Into<String>) -> XmlGlError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map_or((0, 0), |(_, l, c)| (*l, *c));
        XmlGlError::Syntax {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                t.describe(),
                self.peek().map_or("end of input".into(), Tok::describe)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected '{kw}', found {}",
                self.peek().map_or("end of input".into(), Tok::describe)
            )))
        }
    }

    fn expect_var(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Var(v)) => {
                let v = v.clone();
                self.pos += 1;
                Ok(v)
            }
            other => Err(self.err_here(format!(
                "expected a $variable, found {}",
                other.map_or("end of input".into(), |t| t.describe())
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err_here(format!(
                "expected a name, found {}",
                other.map_or("end of input".into(), |t| t.describe())
            ))),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule> {
        let span = self.here();
        self.expect_keyword("rule")?;
        self.expect(&Tok::LBrace)?;
        self.expect_keyword("extract")?;
        self.expect(&Tok::LBrace)?;
        let mut extract = ExtractGraph::default();
        let mut joins: Vec<(String, String)> = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.eat_keyword("join") {
                let a = self.expect_var()?;
                self.expect(&Tok::EqEq)?;
                let b = self.expect_var()?;
                joins.push((a, b));
            } else {
                let root = self.parse_qnode(&mut extract)?;
                extract.roots.push(root);
            }
        }
        for (a, b) in joins {
            let qa = extract
                .by_var(&a)
                .ok_or_else(|| self.err_here(format!("join references unknown variable ${a}")))?;
            let qb = extract
                .by_var(&b)
                .ok_or_else(|| self.err_here(format!("join references unknown variable ${b}")))?;
            extract.joins.push((qa, qb));
        }
        self.expect_keyword("construct")?;
        self.expect(&Tok::LBrace)?;
        let mut construct = ConstructGraph::default();
        while !self.eat(&Tok::RBrace) {
            let root = self.parse_cnode(&mut construct, &extract)?;
            construct.roots.push(root);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Rule {
            extract,
            construct,
            span,
        })
    }

    /// Parse one query node (with optional binding, predicate, body).
    fn parse_qnode(&mut self, g: &mut ExtractGraph) -> Result<QNodeId> {
        let span = self.here();
        let kind = if self.eat(&Tok::At) {
            QNodeKind::Attribute(self.expect_ident()?)
        } else {
            match self.bump() {
                Some(Tok::Ident(s)) if s == "text" => QNodeKind::Text,
                Some(Tok::Ident(s)) if s == "*" => QNodeKind::Element(NameTest::Wildcard),
                Some(Tok::Ident(s)) => QNodeKind::Element(NameTest::Name(s)),
                other => {
                    return Err(self.err_here(format!(
                        "expected an element name, '@attr' or 'text', found {}",
                        other.map_or("end of input".into(), |t| t.describe())
                    )))
                }
            }
        };
        let var = if self.eat_keyword("as") {
            Some(self.expect_var()?)
        } else {
            None
        };
        let predicate = self.parse_predicate()?;
        let id = g.add(QNode {
            kind,
            var,
            predicate,
            children: Vec::new(),
            span,
        });
        // Body.
        let (open, close, ordered) = if self.peek() == Some(&Tok::LBrace) {
            (Tok::LBrace, Tok::RBrace, false)
        } else if self.peek() == Some(&Tok::LBracket) {
            (Tok::LBracket, Tok::RBracket, true)
        } else {
            return Ok(id);
        };
        self.expect(&open)?;
        g.ordered[id.index()] = ordered;
        let mut edges = Vec::new();
        while !self.eat(&close) {
            let mut deep = false;
            let mut negated = false;
            loop {
                if self.eat_keyword("deep") {
                    deep = true;
                } else if self.eat_keyword("not") {
                    negated = true;
                } else {
                    break;
                }
            }
            let child = self.parse_qnode(g)?;
            edges.push(QEdge {
                target: child,
                deep,
                negated,
            });
        }
        g.node_mut(id).children = edges;
        Ok(id)
    }

    /// Optional predicate chain: `op value (('and'|'or') op value)*`.
    fn parse_predicate(&mut self) -> Result<Predicate> {
        let mut pred = Predicate::always();
        let Some(first) = self.try_parse_cmp()? else {
            return Ok(pred);
        };
        pred = pred.and(first.0, first.1);
        loop {
            if self.eat_keyword("and") {
                let (op, v) = self.require_cmp()?;
                pred = pred.and(op, v);
            } else if self.eat_keyword("or") {
                let (op, v) = self.require_cmp()?;
                pred = pred.or(op, v);
            } else {
                return Ok(pred);
            }
        }
    }

    fn try_parse_cmp(&mut self) -> Result<Option<(CmpOp, String)>> {
        let op = match self.peek() {
            Some(Tok::Op(op)) => {
                let op = *op;
                self.bump();
                op
            }
            Some(Tok::Assign) => {
                self.bump();
                CmpOp::Eq
            }
            Some(Tok::Ident(s)) if s == "contains" => {
                self.bump();
                CmpOp::Contains
            }
            Some(Tok::Ident(s)) if s == "starts-with" => {
                self.bump();
                CmpOp::StartsWith
            }
            _ => return Ok(None),
        };
        let value = match self.bump() {
            Some(Tok::Str(s)) => s,
            Some(Tok::Ident(s)) if s.chars().all(|c| c.is_ascii_digit() || c == '.') => s,
            other => {
                return Err(self.err_here(format!(
                    "expected a string or number after comparison, found {}",
                    other.map_or("end of input".into(), |t| t.describe())
                )))
            }
        };
        Ok(Some((op, value)))
    }

    fn require_cmp(&mut self) -> Result<(CmpOp, String)> {
        self.try_parse_cmp()?
            .ok_or_else(|| self.err_here("expected a comparison after 'and'/'or'"))
    }

    /// Parse one construct node, stamping its source position.
    fn parse_cnode(&mut self, g: &mut ConstructGraph, q: &ExtractGraph) -> Result<CNodeId> {
        let span = self.here();
        let id = self.parse_cnode_inner(g, q)?;
        g.node_mut(id).span = span;
        Ok(id)
    }

    fn parse_cnode_inner(&mut self, g: &mut ConstructGraph, q: &ExtractGraph) -> Result<CNodeId> {
        let resolve = |p: &Parser, var: &str| -> Result<QNodeId> {
            q.by_var(var)
                .ok_or_else(|| p.err_here(format!("unknown variable ${var} on construct side")))
        };
        // Literal text.
        if let Some(Tok::Str(_)) = self.peek() {
            let Some(Tok::Str(s)) = self.bump() else {
                unreachable!("peeked a string")
            };
            return Ok(g.add(CNode::new(CNodeKind::Text(s))));
        }
        // Attribute: @name = value.
        if self.eat(&Tok::At) {
            let name = self.expect_ident()?;
            self.expect(&Tok::Assign)?;
            let value = match self.bump() {
                Some(Tok::Str(s)) => CValue::Literal(s),
                Some(Tok::Var(v)) => CValue::Binding(resolve(self, &v)?),
                other => {
                    return Err(self.err_here(format!(
                        "expected a string or $variable for the attribute value, found {}",
                        other.map_or("end of input".into(), |t| t.describe())
                    )))
                }
            };
            return Ok(g.add(CNode::new(CNodeKind::Attribute { name, value })));
        }
        let ident = self.expect_ident()?;
        // Aggregates: count($v) etc.
        if let Some(func) = AggFunc::from_name(&ident) {
            if self.peek() == Some(&Tok::LParen) {
                self.bump();
                let v = self.expect_var()?;
                self.expect(&Tok::RParen)?;
                return Ok(g.add(CNode::new(CNodeKind::Aggregate {
                    func,
                    source: resolve(self, &v)?,
                })));
            }
        }
        match ident.as_str() {
            "copy" => {
                let v = self.expect_var()?;
                Ok(g.add(CNode::new(CNodeKind::Copy {
                    source: resolve(self, &v)?,
                    deep: true,
                })))
            }
            "shallow-copy" => {
                let v = self.expect_var()?;
                Ok(g.add(CNode::new(CNodeKind::Copy {
                    source: resolve(self, &v)?,
                    deep: false,
                })))
            }
            "all" => {
                let v = self.expect_var()?;
                let source = resolve(self, &v)?;
                if self.eat_keyword("group") {
                    self.expect_keyword("by")?;
                    let k = self.expect_var()?;
                    self.expect_keyword("as")?;
                    let wrapper = self.expect_ident()?;
                    Ok(g.add(CNode::new(CNodeKind::GroupBy {
                        source,
                        key: resolve(self, &k)?,
                        wrapper,
                    })))
                } else if self.eat_keyword("order") {
                    self.expect_keyword("by")?;
                    let k = self.expect_var()?;
                    let descending = self.eat_keyword("desc");
                    Ok(g.add(CNode::new(CNodeKind::All {
                        source,
                        order: Some(crate::ast::SortSpec {
                            key: resolve(self, &k)?,
                            descending,
                        }),
                    })))
                } else {
                    Ok(g.add(CNode::new(CNodeKind::All {
                        source,
                        order: None,
                    })))
                }
            }
            name => {
                // An element with optional body.
                let id = g.add(CNode::new(CNodeKind::Element(name.to_string())));
                if self.eat(&Tok::LBrace) {
                    let mut kids = Vec::new();
                    while !self.eat(&Tok::RBrace) {
                        kids.push(self.parse_cnode(g, q)?);
                    }
                    g.node_mut(id).children = kids;
                }
                Ok(id)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Printer
// ----------------------------------------------------------------------

/// Print a program back to DSL text (canonical formatting).
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    for rule in &program.rules {
        print_rule(rule, &mut out);
    }
    out
}

fn print_rule(rule: &Rule, out: &mut String) {
    out.push_str("rule {\n  extract {\n");
    for &root in &rule.extract.roots {
        print_qnode(&rule.extract, root, 2, out);
    }
    for &(a, b) in &rule.extract.joins {
        let name = |q: QNodeId| {
            rule.extract
                .node(q)
                .var
                .clone()
                .unwrap_or_else(|| format!("q{}", q.0))
        };
        out.push_str(&format!("    join ${} == ${}\n", name(a), name(b)));
    }
    out.push_str("  }\n  construct {\n");
    for &root in &rule.construct.roots {
        print_cnode(rule, root, 2, out);
    }
    out.push_str("  }\n}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level + 1 {
        out.push_str("  ");
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn print_qnode(g: &ExtractGraph, id: QNodeId, level: usize, out: &mut String) {
    let n = g.node(id);
    indent(out, level);
    match &n.kind {
        QNodeKind::Element(t) => out.push_str(&t.to_string()),
        QNodeKind::Text => out.push_str("text"),
        QNodeKind::Attribute(a) => {
            out.push('@');
            out.push_str(a);
        }
    }
    if let Some(v) = &n.var {
        out.push_str(&format!(" as ${v}"));
    }
    if !n.predicate.is_trivial() {
        for (i, clause) in n.predicate.clauses.iter().enumerate() {
            for (j, (op, val)) in clause.iter().enumerate() {
                if i > 0 && j == 0 {
                    out.push_str(" and");
                } else if j > 0 {
                    out.push_str(" or");
                }
                out.push_str(&format!(" {} {}", op.symbol(), quote(val)));
            }
        }
    }
    if n.children.is_empty() {
        out.push('\n');
        return;
    }
    let ordered = g.ordered[id.index()];
    out.push_str(if ordered { " [\n" } else { " {\n" });
    for e in &n.children {
        if e.deep || e.negated {
            indent(out, level + 1);
            if e.deep {
                out.push_str("deep ");
            }
            if e.negated {
                out.push_str("not ");
            }
            // Print the child node without its own indentation.
            let mut tmp = String::new();
            print_qnode(g, e.target, 0, &mut tmp);
            out.push_str(tmp.trim_start());
        } else {
            print_qnode(g, e.target, level + 1, out);
        }
    }
    indent(out, level);
    out.push_str(if ordered { "]\n" } else { "}\n" });
}

fn print_cnode(rule: &Rule, id: CNodeId, level: usize, out: &mut String) {
    let g = &rule.construct;
    let n = g.node(id);
    let var_of = |q: QNodeId| -> String {
        rule.extract
            .node(q)
            .var
            .clone()
            .unwrap_or_else(|| format!("q{}", q.0))
    };
    indent(out, level);
    match &n.kind {
        CNodeKind::Element(name) => {
            out.push_str(name);
            if !n.children.is_empty() {
                out.push_str(" {\n");
                for &c in &n.children {
                    print_cnode(rule, c, level + 1, out);
                }
                indent(out, level);
                out.push('}');
            }
        }
        CNodeKind::Text(s) => out.push_str(&quote(s)),
        CNodeKind::Attribute { name, value } => {
            out.push('@');
            out.push_str(name);
            out.push_str(" = ");
            match value {
                CValue::Literal(s) => out.push_str(&quote(s)),
                CValue::Binding(q) => out.push_str(&format!("${}", var_of(*q))),
            }
        }
        CNodeKind::Copy { source, deep } => {
            out.push_str(if *deep { "copy $" } else { "shallow-copy $" });
            out.push_str(&var_of(*source));
        }
        CNodeKind::All { source, order } => {
            out.push_str(&format!("all ${}", var_of(*source)));
            if let Some(spec) = order {
                out.push_str(&format!(" order by ${}", var_of(spec.key)));
                if spec.descending {
                    out.push_str(" desc");
                }
            }
        }
        CNodeKind::GroupBy {
            source,
            key,
            wrapper,
        } => {
            out.push_str(&format!(
                "all ${} group by ${} as {wrapper}",
                var_of(*source),
                var_of(*key)
            ));
        }
        CNodeKind::Aggregate { func, source } => {
            out.push_str(&format!("{}(${})", func.name(), var_of(*source)));
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run;
    use gql_ssdm::Document;

    const SAMPLE: &str = r#"
        # paper query F2: all recent books
        rule {
          extract {
            book as $b {
              @year as $y >= "2000"
              title { text as $t }
            }
          }
          construct {
            result {
              all $b
              count($b)
            }
          }
        }
    "#;

    #[test]
    fn parses_sample() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.extract.nodes.len(), 4);
        assert_eq!(r.construct.nodes.len(), 3);
        assert!(r.extract.by_var("b").is_some());
        assert!(r.extract.by_var("t").is_some());
    }

    #[test]
    fn runs_parsed_query() {
        let doc = Document::parse_str(
            "<bib><book year='2001'><title>A</title></book>\
             <book year='1999'><title>B</title></book></bib>",
        )
        .unwrap();
        let p = parse(SAMPLE).unwrap();
        let out = run(&p, &doc).unwrap();
        let xml = out.to_xml_string();
        assert!(xml.contains("<title>A</title>"));
        assert!(!xml.contains("<title>B</title>"));
        assert!(xml.ends_with("1</result>"), "{xml}");
    }

    #[test]
    fn ordered_bodies() {
        let p =
            parse("rule { extract { seq as $s [ a b ] } construct { out { all $s } } }").unwrap();
        let r = &p.rules[0];
        assert!(r.extract.ordered[r.extract.roots[0].index()]);
    }

    #[test]
    fn joins_and_multiple_roots() {
        let p = parse(
            r#"rule {
                 extract {
                   product as $p { vendor { text as $v1 } }
                   vendor { name { text as $v2 } }
                   join $v1 == $v2
                 }
                 construct { out { all $p } }
               }"#,
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.extract.roots.len(), 2);
        assert_eq!(r.extract.joins.len(), 1);
    }

    #[test]
    fn deep_and_not_modifiers() {
        let p =
            parse("rule { extract { r { deep x as $x  not y } } construct { out { all $x } } }")
                .unwrap();
        let root = p.rules[0].extract.roots[0];
        let edges = &p.rules[0].extract.node(root).children;
        assert!(edges[0].deep);
        assert!(edges[1].negated);
    }

    #[test]
    fn predicates_with_and_or() {
        let p = parse(
            r#"rule { extract { person { age as $a >= "16" and <= "20" or = "99" } }
                      construct { out { copy $a } } }"#,
        )
        .unwrap();
        let g = &p.rules[0].extract;
        let a = g.by_var("a").unwrap();
        let pred = &g.node(a).predicate;
        assert_eq!(pred.clauses.len(), 2);
        assert_eq!(pred.clauses[1].len(), 2);
        assert!(pred.eval("18"));
        assert!(pred.eval("99"));
        assert!(!pred.eval("25"));
    }

    #[test]
    fn group_by_and_attrs() {
        let p = parse(
            r#"rule {
                 extract { book as $b { @year as $y } }
                 construct {
                   index {
                     @source = "bib"
                     all $b group by $y as year
                   }
                 }
               }"#,
        )
        .unwrap();
        let c = &p.rules[0].construct;
        assert_eq!(c.nodes.len(), 3);
    }

    #[test]
    fn wildcard_and_contains() {
        let p = parse(
            r#"rule { extract { * as $x contains "Xcerpt" } construct { hits { all $x } } }"#,
        )
        .unwrap();
        let g = &p.rules[0].extract;
        assert!(matches!(
            g.node(g.roots[0]).kind,
            QNodeKind::Element(NameTest::Wildcard)
        ));
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse("rule {\n  extract { book as }\n construct { out } }").unwrap_err();
        match err {
            XmlGlError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_programs_rejected() {
        for bad in [
            "",
            "rule { }",
            "rule { extract { } construct { out } }",
            "rule { extract { b as $b } construct { } }",
            "rule { extract { b } construct { out { all $ghost } } }",
            "rule { extract { b as $x { text as $x } } construct { out } }",
            "rule { extract { b as $b join $b == $b } construct { out } }",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrip_through_printer() {
        for src in [
            SAMPLE,
            "rule { extract { r [ a b ] } construct { o { \"lit\" } } }",
            r#"rule {
                 extract {
                   product as $p { vendor { text as $v1 } price { text as $m > "3" } }
                   vendor as $w { name { text as $v2 } }
                   join $v1 == $v2
                 }
                 construct {
                   out { @n = $m all $p group by $v1 as g copy $w min($m) }
                 }
               }"#,
            "rule { extract { r { deep x as $x not y @a as $q } } construct { out { shallow-copy $x } } }",
        ] {
            let p1 = parse(src).unwrap_or_else(|e| panic!("parse {src}: {e}"));
            let printed = print(&p1);
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
            assert_eq!(p1, p2, "roundtrip failed for:\n{printed}");
        }
    }

    #[test]
    fn order_by_parses_and_roundtrips() {
        let src = r#"rule {
             extract { book as $b { price { text as $p } } }
             construct { out { all $b order by $p desc } }
           }"#;
        let p1 = parse(src).unwrap();
        match &p1.rules[0].construct.nodes[1].kind {
            CNodeKind::All {
                order: Some(spec), ..
            } => assert!(spec.descending),
            other => panic!("unexpected {other:?}"),
        }
        let p2 = parse(&print(&p1)).unwrap();
        assert_eq!(p1, p2);
        // Ascending without 'desc'.
        let asc = parse(
            "rule { extract { b as $b { text as $t } } construct { o { all $b order by $t } } }",
        )
        .unwrap();
        match &asc.rules[0].construct.nodes[1].kind {
            CNodeKind::All {
                order: Some(spec), ..
            } => assert!(!spec.descending),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_separators_are_noise() {
        let p = parse(
            "rule { extract { a as $a; b as $b, } # trailing\n construct { out { all $a; all $b } } }",
        )
        .unwrap();
        assert_eq!(p.rules[0].extract.roots.len(), 2);
    }
}
