//! Fluent builders for XML-GL rules.
//!
//! Diagrams are trees drawn top-down; the builder mirrors that: construct a
//! [`Q`] / [`C`] tree value, then attach it to a rule. The intermediate
//! trees are flattened into the arena-based [`ExtractGraph`] /
//! [`ConstructGraph`] on attachment.
//!
//! ```
//! use gql_xmlgl::builder::{Q, C, RuleBuilder};
//! use gql_xmlgl::ast::{CmpOp, AggFunc};
//!
//! let rule = RuleBuilder::new()
//!     .extract(
//!         Q::elem("book").var("b")
//!             .child(Q::attr("year").pred(CmpOp::Ge, "2000"))
//!             .child(Q::elem("title").child(Q::text().var("t"))),
//!     )
//!     .construct(C::elem("result").child(C::all("b")).child(C::agg(AggFunc::Count, "b")))
//!     .build()
//!     .unwrap();
//! assert_eq!(rule.extract.roots.len(), 1);
//! ```

use crate::ast::{
    AggFunc, CNode, CNodeId, CNodeKind, CValue, CmpOp, ConstructGraph, ExtractGraph, NameTest,
    Predicate, Program, QEdge, QNode, QNodeId, QNodeKind, Rule,
};
use crate::{Result, XmlGlError};

/// Builder tree for the extract side.
#[derive(Debug, Clone)]
pub struct Q {
    kind: QNodeKind,
    var: Option<String>,
    predicate: Predicate,
    ordered: bool,
    children: Vec<(Q, bool, bool)>, // (subtree, deep, negated)
}

impl Q {
    pub fn elem(name: impl Into<String>) -> Q {
        Q {
            kind: QNodeKind::Element(NameTest::Name(name.into())),
            var: None,
            predicate: Predicate::always(),
            ordered: false,
            children: Vec::new(),
        }
    }

    /// The `*` wildcard box.
    pub fn any() -> Q {
        Q {
            kind: QNodeKind::Element(NameTest::Wildcard),
            var: None,
            predicate: Predicate::always(),
            ordered: false,
            children: Vec::new(),
        }
    }

    /// A hollow text-content circle.
    pub fn text() -> Q {
        Q {
            kind: QNodeKind::Text,
            var: None,
            predicate: Predicate::always(),
            ordered: false,
            children: Vec::new(),
        }
    }

    /// A filled attribute circle.
    pub fn attr(name: impl Into<String>) -> Q {
        Q {
            kind: QNodeKind::Attribute(name.into()),
            var: None,
            predicate: Predicate::always(),
            ordered: false,
            children: Vec::new(),
        }
    }

    /// Bind the node to a variable name.
    pub fn var(mut self, name: impl Into<String>) -> Q {
        self.var = Some(name.into());
        self
    }

    /// Add a comparison to the node's predicate (conjunction).
    pub fn pred(mut self, op: CmpOp, value: impl Into<String>) -> Q {
        self.predicate = self.predicate.and(op, value);
        self
    }

    /// Add an alternative to the last predicate clause (disjunction).
    pub fn or_pred(mut self, op: CmpOp, value: impl Into<String>) -> Q {
        self.predicate = self.predicate.or(op, value);
        self
    }

    /// Require children to match in document order.
    pub fn ordered(mut self) -> Q {
        self.ordered = true;
        self
    }

    /// Direct containment edge.
    pub fn child(mut self, q: Q) -> Q {
        self.children.push((q, false, false));
        self
    }

    /// Asterisk (arbitrary-depth) edge.
    pub fn deep_child(mut self, q: Q) -> Q {
        self.children.push((q, true, false));
        self
    }

    /// Crossed-out (negated) edge.
    pub fn without(mut self, q: Q) -> Q {
        self.children.push((q, false, true));
        self
    }

    fn flatten(self, g: &mut ExtractGraph) -> QNodeId {
        let id = g.add(QNode {
            kind: self.kind,
            var: self.var,
            predicate: self.predicate,
            children: Vec::new(),
            span: crate::ast::Span::none(),
        });
        g.ordered[id.index()] = self.ordered;
        let mut edges = Vec::with_capacity(self.children.len());
        for (sub, deep, negated) in self.children {
            let child = sub.flatten(g);
            edges.push(QEdge {
                target: child,
                deep,
                negated,
            });
        }
        g.node_mut(id).children = edges;
        id
    }
}

/// Builder tree for the construct side.
#[derive(Debug, Clone)]
pub struct C {
    kind: CKind,
    children: Vec<C>,
}

#[derive(Debug, Clone)]
enum CKind {
    Element(String),
    Text(String),
    AttrLit(String, String),
    AttrVar(String, String),
    Copy(String, bool),
    All(String, Option<(String, bool)>),
    GroupBy {
        source: String,
        key: String,
        wrapper: String,
    },
    Agg(AggFunc, String),
}

impl C {
    pub fn elem(name: impl Into<String>) -> C {
        C {
            kind: CKind::Element(name.into()),
            children: Vec::new(),
        }
    }

    pub fn text(value: impl Into<String>) -> C {
        C {
            kind: CKind::Text(value.into()),
            children: Vec::new(),
        }
    }

    /// Attribute with a literal value.
    pub fn attr(name: impl Into<String>, value: impl Into<String>) -> C {
        C {
            kind: CKind::AttrLit(name.into(), value.into()),
            children: Vec::new(),
        }
    }

    /// Attribute whose value is the string value of a bound query node.
    pub fn attr_var(name: impl Into<String>, var: impl Into<String>) -> C {
        C {
            kind: CKind::AttrVar(name.into(), var.into()),
            children: Vec::new(),
        }
    }

    /// Copy the binding of a variable (deep).
    pub fn copy(var: impl Into<String>) -> C {
        C {
            kind: CKind::Copy(var.into(), true),
            children: Vec::new(),
        }
    }

    /// Copy only the element shell (no children) — the figure without `*`.
    pub fn copy_shallow(var: impl Into<String>) -> C {
        C {
            kind: CKind::Copy(var.into(), false),
            children: Vec::new(),
        }
    }

    /// The triangle: all matches of the variable.
    pub fn all(var: impl Into<String>) -> C {
        C {
            kind: CKind::All(var.into(), None),
            children: Vec::new(),
        }
    }

    /// The triangle with the `order by` extension: all matches of `var`,
    /// sorted by the bound value of `key` (ascending unless `descending`).
    pub fn all_sorted(var: impl Into<String>, key: impl Into<String>, descending: bool) -> C {
        C {
            kind: CKind::All(var.into(), Some((key.into(), descending))),
            children: Vec::new(),
        }
    }

    /// The list icon: all matches of `source`, grouped by the value of
    /// `key`; each group wrapped in a `wrapper` element.
    pub fn group_by(
        source: impl Into<String>,
        key: impl Into<String>,
        wrapper: impl Into<String>,
    ) -> C {
        C {
            kind: CKind::GroupBy {
                source: source.into(),
                key: key.into(),
                wrapper: wrapper.into(),
            },
            children: Vec::new(),
        }
    }

    /// An aggregate function node.
    pub fn agg(func: AggFunc, var: impl Into<String>) -> C {
        C {
            kind: CKind::Agg(func, var.into()),
            children: Vec::new(),
        }
    }

    pub fn child(mut self, c: C) -> C {
        self.children.push(c);
        self
    }

    pub fn children(mut self, cs: impl IntoIterator<Item = C>) -> C {
        self.children.extend(cs);
        self
    }

    fn flatten(self, g: &mut ConstructGraph, extract: &ExtractGraph) -> Result<CNodeId> {
        let resolve = |var: &str| -> Result<QNodeId> {
            extract.by_var(var).ok_or_else(|| XmlGlError::IllFormed {
                msg: format!("construct side references unknown variable ${var}"),
            })
        };
        let kind = match &self.kind {
            CKind::Element(n) => CNodeKind::Element(n.clone()),
            CKind::Text(t) => CNodeKind::Text(t.clone()),
            CKind::AttrLit(n, v) => CNodeKind::Attribute {
                name: n.clone(),
                value: CValue::Literal(v.clone()),
            },
            CKind::AttrVar(n, v) => CNodeKind::Attribute {
                name: n.clone(),
                value: CValue::Binding(resolve(v)?),
            },
            CKind::Copy(v, deep) => CNodeKind::Copy {
                source: resolve(v)?,
                deep: *deep,
            },
            CKind::All(v, order) => CNodeKind::All {
                source: resolve(v)?,
                order: match order {
                    None => None,
                    Some((key, descending)) => Some(crate::ast::SortSpec {
                        key: resolve(key)?,
                        descending: *descending,
                    }),
                },
            },
            CKind::GroupBy {
                source,
                key,
                wrapper,
            } => CNodeKind::GroupBy {
                source: resolve(source)?,
                key: resolve(key)?,
                wrapper: wrapper.clone(),
            },
            CKind::Agg(f, v) => CNodeKind::Aggregate {
                func: *f,
                source: resolve(v)?,
            },
        };
        let id = g.add(CNode::new(kind));
        let mut kids = Vec::with_capacity(self.children.len());
        for c in self.children {
            kids.push(c.flatten(g, extract)?);
        }
        g.node_mut(id).children = kids;
        Ok(id)
    }
}

/// Assembles a [`Rule`] from builder trees.
#[derive(Debug, Default)]
pub struct RuleBuilder {
    extract_trees: Vec<Q>,
    construct_trees: Vec<C>,
    joins: Vec<(String, String)>,
}

impl RuleBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one extract-forest tree.
    pub fn extract(mut self, q: Q) -> Self {
        self.extract_trees.push(q);
        self
    }

    /// Add one construct-forest tree.
    pub fn construct(mut self, c: C) -> Self {
        self.construct_trees.push(c);
        self
    }

    /// Join two bound query nodes on deep-equal content (the shared-node
    /// idiom of the diagrams).
    pub fn join(mut self, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.joins.push((a.into(), b.into()));
        self
    }

    pub fn build(self) -> Result<Rule> {
        let mut extract = ExtractGraph::default();
        for tree in self.extract_trees {
            let root = tree.flatten(&mut extract);
            extract.roots.push(root);
        }
        for (a, b) in self.joins {
            let qa = extract.by_var(&a).ok_or_else(|| XmlGlError::IllFormed {
                msg: format!("join references unknown variable ${a}"),
            })?;
            let qb = extract.by_var(&b).ok_or_else(|| XmlGlError::IllFormed {
                msg: format!("join references unknown variable ${b}"),
            })?;
            extract.joins.push((qa, qb));
        }
        let mut construct = ConstructGraph::default();
        for tree in self.construct_trees {
            let root = tree.flatten(&mut construct, &extract)?;
            construct.roots.push(root);
        }
        let rule = Rule {
            extract,
            construct,
            span: crate::ast::Span::none(),
        };
        crate::check::check_rule(&rule)?;
        Ok(rule)
    }

    /// Build a single-rule program.
    pub fn build_program(self) -> Result<Program> {
        Ok(Program::single(self.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_rule() {
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(Q::attr("year").pred(CmpOp::Ge, "2000")),
            )
            .construct(C::elem("recent").child(C::all("b")))
            .build()
            .unwrap();
        assert_eq!(rule.extract.nodes.len(), 2);
        assert_eq!(rule.construct.nodes.len(), 2);
        assert_eq!(rule.extract.roots.len(), 1);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let err = RuleBuilder::new()
            .extract(Q::elem("book"))
            .construct(C::elem("out").child(C::all("nope")))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("$nope"));
    }

    #[test]
    fn join_resolution() {
        let rule = RuleBuilder::new()
            .extract(Q::elem("product").child(Q::elem("vendor").child(Q::text().var("v1"))))
            .extract(Q::elem("vendor").child(Q::elem("name").child(Q::text().var("v2"))))
            .join("v1", "v2")
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_eq!(rule.extract.joins.len(), 1);
        assert_eq!(rule.extract.roots.len(), 2);
    }

    #[test]
    fn unknown_join_variable_is_rejected() {
        let err = RuleBuilder::new()
            .extract(Q::elem("a").child(Q::text().var("x")))
            .join("x", "ghost")
            .construct(C::elem("out"))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("$ghost"));
    }

    #[test]
    fn edge_flags_flatten() {
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("r")
                    .deep_child(Q::elem("x").var("x"))
                    .without(Q::elem("y")),
            )
            .construct(C::elem("out").child(C::copy("x")))
            .build()
            .unwrap();
        let root = rule.extract.roots[0];
        let edges = &rule.extract.node(root).children;
        assert!(edges[0].deep && !edges[0].negated);
        assert!(!edges[1].deep && edges[1].negated);
    }

    #[test]
    fn ordered_flag() {
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("seq")
                    .ordered()
                    .child(Q::elem("a"))
                    .child(Q::elem("b")),
            )
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert!(rule.extract.ordered[rule.extract.roots[0].index()]);
    }
}
