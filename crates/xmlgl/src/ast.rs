//! Typed abstract syntax of XML-GL diagrams.
//!
//! Extract and construct graphs are stored as flat node arenas with child
//! index lists — the same index-based style as the document store, so query
//! nodes are cheap to reference from bindings (`QNodeId`) and construction
//! templates (`CNodeId`).

use std::fmt;

pub use gql_ssdm::Span;

/// Index of a node in a rule's extract graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QNodeId(pub u32);

/// Index of a node in a rule's construct graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CNodeId(pub u32);

impl QNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Element name test: concrete name or the `*` wildcard box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    Name(String),
    Wildcard,
}

impl NameTest {
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NameTest::Name(n) => n == name,
            NameTest::Wildcard => true,
        }
    }
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Name(n) => write!(f, "{n}"),
            NameTest::Wildcard => write!(f, "*"),
        }
    }
}

/// Comparison operators usable in predicates on text/attribute nodes —
/// the workspace-shared operator set.
pub use gql_ssdm::CmpOp;

/// A predicate drawn next to a text or attribute node. Disjunction is a set
/// of alternatives; the whole predicate is a conjunction of those sets
/// (conjunctive normal form, which covers everything the figures draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Conjunction of disjunctions: every clause must have one alternative
    /// hold.
    pub clauses: Vec<Vec<(CmpOp, String)>>,
}

impl Predicate {
    /// A single-comparison predicate.
    pub fn cmp(op: CmpOp, value: impl Into<String>) -> Self {
        Predicate {
            clauses: vec![vec![(op, value.into())]],
        }
    }

    /// No constraint.
    pub fn always() -> Self {
        Predicate {
            clauses: Vec::new(),
        }
    }

    pub fn is_trivial(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Conjoin another clause.
    pub fn and(mut self, op: CmpOp, value: impl Into<String>) -> Self {
        self.clauses.push(vec![(op, value.into())]);
        self
    }

    /// Add an alternative to the last clause (disjunction).
    pub fn or(mut self, op: CmpOp, value: impl Into<String>) -> Self {
        match self.clauses.last_mut() {
            Some(last) => last.push((op, value.into())),
            None => self.clauses.push(vec![(op, value.into())]),
        }
        self
    }

    pub fn eval(&self, data: &str) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|(op, constant)| op.eval(data, constant)))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            for (j, (op, v)) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " or ")?;
                }
                write!(f, "{} \"{v}\"", op.symbol())?;
            }
        }
        Ok(())
    }
}

/// Kinds of extract-graph nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum QNodeKind {
    /// A labelled box.
    Element(NameTest),
    /// A hollow circle — the textual content of the parent element.
    Text,
    /// A filled circle — an attribute of the parent element.
    Attribute(String),
}

/// One extract-graph node.
#[derive(Debug, Clone, PartialEq)]
pub struct QNode {
    pub kind: QNodeKind,
    /// Variable name when the node is referenced from the construct side
    /// or a join (purely presentational in diagrams — the reference *is*
    /// the shared node — but needed by the textual syntax).
    pub var: Option<String>,
    /// Predicate on the node's string value (text/attribute nodes, or the
    /// full text content for elements).
    pub predicate: Predicate,
    /// Containment edges to child query nodes.
    pub children: Vec<QEdge>,
    /// Source position of the node in DSL text ([`Span::none`] for
    /// programs assembled via the builder). Metadata only — ignored by
    /// equality (see [`Span`]).
    pub span: Span,
}

impl QNode {
    pub fn element(test: NameTest) -> Self {
        QNode {
            kind: QNodeKind::Element(test),
            var: None,
            predicate: Predicate::always(),
            children: Vec::new(),
            span: Span::none(),
        }
    }

    pub fn text() -> Self {
        QNode {
            kind: QNodeKind::Text,
            var: None,
            predicate: Predicate::always(),
            children: Vec::new(),
            span: Span::none(),
        }
    }

    pub fn attribute(name: impl Into<String>) -> Self {
        QNode {
            kind: QNodeKind::Attribute(name.into()),
            var: None,
            predicate: Predicate::always(),
            children: Vec::new(),
            span: Span::none(),
        }
    }
}

/// A containment edge in the extract graph.
#[derive(Debug, Clone, PartialEq)]
pub struct QEdge {
    pub target: QNodeId,
    /// Asterisk edge: match at any depth below the parent.
    pub deep: bool,
    /// Crossed-out edge: the parent matches only if *no* such child exists.
    pub negated: bool,
}

impl QEdge {
    pub fn child(target: QNodeId) -> Self {
        QEdge {
            target,
            deep: false,
            negated: false,
        }
    }

    pub fn deep(target: QNodeId) -> Self {
        QEdge {
            target,
            deep: true,
            negated: false,
        }
    }

    pub fn negated(target: QNodeId) -> Self {
        QEdge {
            target,
            deep: false,
            negated: true,
        }
    }
}

/// The extract (query) side of a rule: a forest plus join constraints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractGraph {
    pub nodes: Vec<QNode>,
    /// Roots of the pattern forest.
    pub roots: Vec<QNodeId>,
    /// Join edges: the two query nodes must bind deep-equal data. In the
    /// diagram this is one node with two containment parents; the AST keeps
    /// both occurrences and links them.
    pub joins: Vec<(QNodeId, QNodeId)>,
    /// Whether children of each node must match in document order
    /// (the "crossed first edge" marker); indexed parallel to `nodes`.
    pub ordered: Vec<bool>,
}

impl ExtractGraph {
    pub fn add(&mut self, node: QNode) -> QNodeId {
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.ordered.push(false);
        id
    }

    pub fn node(&self, id: QNodeId) -> &QNode {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: QNodeId) -> &mut QNode {
        &mut self.nodes[id.index()]
    }

    /// Find the query node bound to a variable name.
    pub fn by_var(&self, var: &str) -> Option<QNodeId> {
        self.nodes
            .iter()
            .position(|n| n.var.as_deref() == Some(var))
            .map(|i| QNodeId(i as u32))
    }

    /// All node ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.nodes.len() as u32).map(QNodeId)
    }
}

/// Aggregation functions available on the construct side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// Kinds of construct-graph nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum CNodeKind {
    /// Create an element with this tag.
    Element(String),
    /// Literal text.
    Text(String),
    /// Set an attribute on the enclosing element; the value is a literal or
    /// the string value of a query node.
    Attribute { name: String, value: CValue },
    /// Copy the match of a query node (deep copy of the element, or a text
    /// node with the value for text/attribute query nodes). Instantiated
    /// once per binding in scope.
    Copy { source: QNodeId, deep: bool },
    /// The triangle: collect *all* matches of `source` compatible with the
    /// enclosing instantiation, optionally sorted by the value of another
    /// query node (the `order by` extension of the XML-GL literature).
    All {
        source: QNodeId,
        order: Option<SortSpec>,
    },
    /// The list icon: like [`CNodeKind::All`] but grouped by the value of
    /// another query node; one `wrapper` element is emitted per group.
    GroupBy {
        source: QNodeId,
        key: QNodeId,
        wrapper: String,
    },
    /// Aggregate function over the matches of a query node.
    Aggregate { func: AggFunc, source: QNodeId },
}

/// One construct-graph node.
#[derive(Debug, Clone, PartialEq)]
pub struct CNode {
    pub kind: CNodeKind,
    pub children: Vec<CNodeId>,
    /// Source position (metadata only — ignored by equality, see [`Span`]).
    pub span: Span,
}

impl CNode {
    pub fn new(kind: CNodeKind) -> Self {
        CNode {
            kind,
            children: Vec::new(),
            span: Span::none(),
        }
    }
}

/// Sort specification for ordered collections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortSpec {
    /// Query node whose bound value keys the sort.
    pub key: QNodeId,
    /// Descending instead of ascending.
    pub descending: bool,
}

/// Attribute value on the construct side.
#[derive(Debug, Clone, PartialEq)]
pub enum CValue {
    Literal(String),
    Binding(QNodeId),
}

/// The construct side of a rule: a forest of templates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstructGraph {
    pub nodes: Vec<CNode>,
    pub roots: Vec<CNodeId>,
}

impl ConstructGraph {
    pub fn add(&mut self, node: CNode) -> CNodeId {
        let id = CNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub fn node(&self, id: CNodeId) -> &CNode {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: CNodeId) -> &mut CNode {
        &mut self.nodes[id.index()]
    }

    pub fn ids(&self) -> impl Iterator<Item = CNodeId> {
        (0..self.nodes.len() as u32).map(CNodeId)
    }
}

/// One XML-GL rule: an extract graph and a construct graph drawn side by
/// side, separated by the vertical line in the figures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rule {
    pub extract: ExtractGraph,
    pub construct: ConstructGraph,
    /// Position of the rule's opening keyword in DSL text (metadata only).
    pub span: Span,
}

/// An XML-GL program is a set of rules; their outputs are concatenated
/// under one result document in rule order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub rules: Vec<Rule>,
}

impl Program {
    pub fn single(rule: Rule) -> Self {
        Program { rules: vec![rule] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_test() {
        assert!(NameTest::Name("book".into()).matches("book"));
        assert!(!NameTest::Name("book".into()).matches("article"));
        assert!(NameTest::Wildcard.matches("anything"));
        assert_eq!(NameTest::Wildcard.to_string(), "*");
    }

    #[test]
    fn cmp_op_numeric_coercion() {
        assert!(CmpOp::Gt.eval("20", "9"));
        assert!(!CmpOp::Gt.eval("20", "90"));
        assert!(CmpOp::Eq.eval("20.0", "20"));
        assert!(CmpOp::Lt.eval("apple", "banana")); // lexicographic fallback
        assert!(CmpOp::Contains.eval("Data on the Web", "Web"));
        assert!(CmpOp::StartsWith.eval("http://x", "http:"));
        assert!(CmpOp::Ne.eval("a", "b"));
    }

    #[test]
    fn predicate_cnf() {
        // (= Smith or > 16) and (< 20)
        let p = Predicate::cmp(CmpOp::Eq, "Smith")
            .or(CmpOp::Gt, "16")
            .and(CmpOp::Lt, "20");
        // "Smith" passes the first clause but "< 20" is undefined for a
        // string-vs-number comparison, so the conjunction fails.
        assert!(!p.eval("Smith"));
        assert!(p.eval("18"));
        assert!(!p.eval("25"));
        assert!(Predicate::always().eval("whatever"));
    }

    #[test]
    fn predicate_display() {
        let p = Predicate::cmp(CmpOp::Ge, "16")
            .or(CmpOp::Eq, "x")
            .and(CmpOp::Lt, "20");
        assert_eq!(p.to_string(), ">= \"16\" or = \"x\" and < \"20\"");
    }

    #[test]
    fn extract_graph_vars() {
        let mut g = ExtractGraph::default();
        let mut n = QNode::element(NameTest::Name("book".into()));
        n.var = Some("b".into());
        let id = g.add(n);
        g.roots.push(id);
        assert_eq!(g.by_var("b"), Some(id));
        assert_eq!(g.by_var("zzz"), None);
    }

    #[test]
    fn agg_func_names_roundtrip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
