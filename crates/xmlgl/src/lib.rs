//! # gql-xmlgl — the XML-GL graphical query language
//!
//! XML-GL is one of the two languages the paper presents: a schema-optional
//! graphical query and restructuring language for XML. A query is a set of
//! **rules**; each rule is a pair of graphs drawn side by side — the
//! *extract* graph (left) matched against the data, and the *construct*
//! graph (right) describing the result. The visual vocabulary:
//!
//! * labelled boxes — elements (label `*` = wildcard);
//! * hollow circles — textual content;
//! * filled circles — attributes;
//! * an asterisk on a containment edge — match at arbitrary depth;
//! * a crossed-out edge — negation ("has no such child");
//! * a node with two containment parents — an equi-join on deep-equal
//!   content;
//! * on the construct side: triangles collect *all* matches, list icons
//!   group them, function nodes aggregate (`count`, `sum`, `min`, `max`,
//!   `avg`).
//!
//! Because this reproduction replaces the interactive editor with a
//! programmatic diagram model, the crate provides three equivalent ways to
//! produce a query: the typed AST ([`ast`]), a fluent builder ([`builder`])
//! and a textual concrete syntax, the **GQL DSL** ([`dsl`]), which
//! round-trips to diagrams and is what the examples and harness use.
//!
//! ```
//! use gql_ssdm::Document;
//! use gql_xmlgl::{dsl, eval};
//!
//! let doc = Document::parse_str(
//!     "<bib><book year='2000'><title>Data on the Web</title></book>\
//!      <book year='1994'><title>TCP/IP</title></book></bib>").unwrap();
//! let program = dsl::parse(r#"
//!     rule {
//!       extract { book as $b { @year as $y >= "2000" } }
//!       construct { recent { all $b } }
//!     }
//! "#).unwrap();
//! let out = eval::run(&program, &doc).unwrap();
//! assert_eq!(out.to_xml_string(),
//!     "<recent><book year=\"2000\"><title>Data on the Web</title></book></recent>");
//! ```

pub mod ast;
pub mod builder;
pub mod check;
pub mod diagram;
pub mod dsl;
pub mod editor;
pub mod eval;
pub mod schema;
pub mod update;

pub use ast::{Program, Rule};
pub use check::check_program;
pub use eval::run;

/// Errors shared by the XML-GL front- and back-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlGlError {
    /// DSL syntax error (line, column, message).
    Syntax { line: u32, col: u32, msg: String },
    /// The diagram violates a well-formedness rule.
    IllFormed { msg: String },
    /// Evaluation failed (unbound variable, type misuse, …).
    Eval { msg: String },
    /// A resource budget tripped during evaluation (carries the partial
    /// progress report).
    Budget(gql_guard::GuardError),
}

impl std::fmt::Display for XmlGlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlGlError::Syntax { line, col, msg } => {
                write!(f, "XML-GL syntax error at {line}:{col}: {msg}")
            }
            XmlGlError::IllFormed { msg } => write!(f, "ill-formed XML-GL diagram: {msg}"),
            XmlGlError::Eval { msg } => write!(f, "XML-GL evaluation error: {msg}"),
            XmlGlError::Budget(e) => write!(f, "XML-GL {e}"),
        }
    }
}

impl std::error::Error for XmlGlError {}

pub type Result<T> = std::result::Result<T, XmlGlError>;
