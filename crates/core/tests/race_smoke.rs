//! Concurrency smoke tests: hammer the parallel matcher and the guard/
//! trace atomics from many threads at once. These are the tier-1 stand-ins
//! for a sanitizer pass — CI additionally runs the guard and trace suites
//! under miri (nightly) for data-race/UB detection; this file covers the
//! parallel matcher, which is too heavy to interpret there.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use gql_guard::{Budget, CancelToken, Guard};
use gql_ssdm::{generator, DocIndex};
use gql_trace::Trace;
use gql_xmlgl::ast::Rule;
use gql_xmlgl::eval::{match_rule_guarded, match_rule_scan, match_rule_with, MatchMode};

fn join_rule() -> Rule {
    gql_xmlgl::dsl::parse(
        "rule { extract { restaurant as $r { name { text as $n } } } \
         construct { out { all $r } } }",
    )
    .unwrap()
    .rules
    .remove(0)
}

#[test]
fn parallel_matcher_agrees_with_scan_under_thread_storm() {
    let doc = generator::cityguide(Default::default());
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let baseline = match_rule_scan(&rule, &doc);
    assert!(!baseline.is_empty(), "storm baseline must not be vacuous");
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..16 {
                    let got = match_rule_with(&rule, &doc, &idx, MatchMode::Parallel);
                    assert!(got == baseline, "parallel bindings diverged from scan");
                }
            });
        }
    });
}

#[test]
fn contended_guard_admits_exactly_the_budget() {
    const CAP: u64 = 10_000;
    let guard = Guard::new(Budget::unlimited().with_max_matches(CAP));
    let admitted = AtomicU64::new(0);
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                let mut local = 0u64;
                while guard.charge_matches(1) {
                    local += 1;
                }
                admitted.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    // Every unit charge claims a unique running total, so exactly CAP of
    // them land at or under the cap — racing threads may both observe an
    // over-cap total, but neither gets a success for it.
    assert_eq!(admitted.load(Ordering::Relaxed), CAP);
    assert!(!guard.ok(), "guard must stay tripped after exhaustion");
}

#[test]
fn trace_counters_accumulate_exactly_under_contention() {
    let trace = Trace::profiling();
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..1_000 {
                    trace.count("hits", 1);
                }
            });
        }
    });
    let profile = trace.finish().expect("profiling trace yields a profile");
    assert_eq!(
        profile.find("(toplevel)").and_then(|n| n.counter("hits")),
        Some(8_000)
    );
}

#[test]
fn cancellation_mid_parallel_match_is_clean() {
    let doc = generator::cityguide(Default::default());
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let baseline = match_rule_scan(&rule, &doc);
    // Cancel at increasing delays: from "before the run starts" to "long
    // after it finished". Every variant must return without panicking or
    // deadlocking, and can only ever see a truncated result.
    for delay in [0u64, 50, 500, 5_000] {
        let cancel = CancelToken::new();
        let guard = Guard::with_cancel(Budget::unlimited(), cancel.clone());
        let trace = Trace::disabled();
        let got = thread::scope(|s| {
            let canceller = cancel.clone();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay));
                canceller.cancel();
            });
            match_rule_guarded(&rule, &doc, Some(&idx), MatchMode::Parallel, &trace, &guard)
        });
        assert!(
            got.len() <= baseline.len(),
            "cancelled run invented bindings ({} > {})",
            got.len(),
            baseline.len()
        );
    }
}
