//! Concurrency smoke tests: hammer the parallel matcher and the guard/
//! trace atomics from many threads at once. These are the tier-1 stand-ins
//! for a sanitizer pass — CI additionally runs the guard and trace suites
//! under miri (nightly) for data-race/UB detection; this file covers the
//! parallel matcher, which is too heavy to interpret there.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use gql_core::{Engine, QueryKind};
use gql_guard::{Budget, CancelToken, Guard};
use gql_ssdm::{generator, DocIndex};
use gql_trace::Trace;
use gql_xmlgl::ast::Rule;
use gql_xmlgl::eval::{match_rule_guarded, match_rule_scan, match_rule_with, MatchMode};

fn join_rule() -> Rule {
    gql_xmlgl::dsl::parse(
        "rule { extract { restaurant as $r { name { text as $n } } } \
         construct { out { all $r } } }",
    )
    .unwrap()
    .rules
    .remove(0)
}

#[test]
fn parallel_matcher_agrees_with_scan_under_thread_storm() {
    let doc = generator::cityguide(Default::default());
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let baseline = match_rule_scan(&rule, &doc);
    assert!(!baseline.is_empty(), "storm baseline must not be vacuous");
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..16 {
                    let got = match_rule_with(&rule, &doc, &idx, MatchMode::Parallel);
                    assert!(got == baseline, "parallel bindings diverged from scan");
                }
            });
        }
    });
}

#[test]
fn contended_guard_admits_exactly_the_budget() {
    const CAP: u64 = 10_000;
    let guard = Guard::new(Budget::unlimited().with_max_matches(CAP));
    let admitted = AtomicU64::new(0);
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                let mut local = 0u64;
                while guard.charge_matches(1) {
                    local += 1;
                }
                admitted.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    // Every unit charge claims a unique running total, so exactly CAP of
    // them land at or under the cap — racing threads may both observe an
    // over-cap total, but neither gets a success for it.
    assert_eq!(admitted.load(Ordering::Relaxed), CAP);
    assert!(!guard.ok(), "guard must stay tripped after exhaustion");
}

#[test]
fn trace_counters_accumulate_exactly_under_contention() {
    let trace = Trace::profiling();
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..1_000 {
                    trace.count("hits", 1);
                }
            });
        }
    });
    let profile = trace.finish().expect("profiling trace yields a profile");
    assert_eq!(
        profile.find("(toplevel)").and_then(|n| n.counter("hits")),
        Some(8_000)
    );
}

/// Regression for the shared-use `plan_cache_stats()` fix: a shared engine
/// hammered by querying threads while other threads continuously snapshot
/// the counters. Every snapshot must satisfy the seqlock invariant
/// (`lookups == hits + misses`) and be monotonic — a torn read (hits from
/// after a probe, misses from before) would violate both.
#[test]
fn shared_engine_stats_snapshots_are_consistent_under_storm() {
    let doc = generator::cityguide(Default::default());
    let engine = Arc::new(Engine::new());
    let queries = [
        "/city/restaurant/name",
        "//restaurant",
        "/city/hotel/name",
        "//name",
    ];
    let done = AtomicBool::new(false);
    thread::scope(|s| {
        // Readers: snapshot continuously while the storm runs.
        for _ in 0..2 {
            s.spawn(|| {
                let mut last_lookups = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let stats = engine.plan_cache_stats();
                    assert!(
                        stats.is_consistent(),
                        "torn stats snapshot: hits={} misses={} lookups={}",
                        stats.hits,
                        stats.misses,
                        stats.lookups
                    );
                    assert!(stats.lookups >= last_lookups, "lookups went backwards");
                    last_lookups = stats.lookups;
                }
            });
        }
        // Writers: concurrent queries through one shared engine, mixing
        // warm hits and (via distinct queries) cold misses.
        let storm: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let doc = &doc;
                s.spawn(move || {
                    for i in 0..24 {
                        let q = QueryKind::XPath(queries[(t + i) % queries.len()].to_string());
                        engine.run(&q, doc).expect("storm query must succeed");
                    }
                })
            })
            .collect();
        for h in storm {
            h.join().expect("storm thread panicked");
        }
        done.store(true, Ordering::Relaxed);
    });
    let stats = engine.plan_cache_stats();
    assert!(stats.is_consistent());
    assert_eq!(
        stats.lookups,
        4 * 24,
        "every run probes the cache exactly once"
    );
    // Probe and insert are separate critical sections, so two threads can
    // race the same cold key and both miss — but never fewer misses than
    // distinct queries, and the storm is warm-heavy so hits dominate.
    assert!(
        stats.misses >= queries.len() as u64,
        "each distinct query plans cold at least once"
    );
    assert!(stats.hits > stats.misses, "warm storm must be hit-heavy");
}

#[test]
fn cancellation_mid_parallel_match_is_clean() {
    let doc = generator::cityguide(Default::default());
    let idx = DocIndex::build(&doc);
    let rule = join_rule();
    let baseline = match_rule_scan(&rule, &doc);
    // Cancel at increasing delays: from "before the run starts" to "long
    // after it finished". Every variant must return without panicking or
    // deadlocking, and can only ever see a truncated result.
    for delay in [0u64, 50, 500, 5_000] {
        let cancel = CancelToken::new();
        let guard = Guard::with_cancel(Budget::unlimited(), cancel.clone());
        let trace = Trace::disabled();
        let got = thread::scope(|s| {
            let canceller = cancel.clone();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay));
                canceller.cancel();
            });
            match_rule_guarded(&rule, &doc, Some(&idx), MatchMode::Parallel, &trace, &guard)
        });
        assert!(
            got.len() <= baseline.len(),
            "cancelled run invented bindings ({} > {})",
            got.len(),
            baseline.len()
        );
    }
}
