//! The common logical algebra over binding tables.
//!
//! Extract graphs of either language denote sets of variable bindings; this
//! module gives those sets an explicit relational form — a [`Table`] of
//! [`Cell`]s — and a small operator algebra ([`Plan`]) with an interpreter
//! and a rule-based optimizer. Having the algebra separate from the
//! languages is what makes the optimizer ablation (experiment **T5**)
//! meaningful: the same diagram compiles to an unoptimized and an optimized
//! plan whose outputs must be identical.
//!
//! Operators: typed scans, child/descendant/attribute/text navigation,
//! predicate filters, products, hash and nested-loop joins, anti-joins
//! (negation), projection, distinct and grouped aggregation.

use std::collections::HashMap;
use std::fmt;

use gql_ssdm::document::NodeKind;
use gql_ssdm::{Document, NodeId};
use gql_xmlgl::ast::{AggFunc, Predicate};

use crate::{CoreError, Result};

/// One value in a binding table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Node(NodeId),
    Text(String),
    Num(f64),
}

impl Cell {
    /// String form used by predicates and join keys.
    pub fn text(&self, doc: &Document) -> String {
        match self {
            Cell::Node(n) => doc.text_content(*n),
            Cell::Text(s) => s.clone(),
            Cell::Num(n) => gql_ssdm::value::format_number(*n),
        }
    }

    /// Join/distinct key: node identity for nodes, content for values.
    pub fn key(&self, _doc: &Document) -> String {
        match self {
            Cell::Node(n) => format!("n:{}", n.index()),
            Cell::Text(s) => format!("t:{s}"),
            Cell::Num(n) => format!("f:{n}"),
        }
    }

    /// Content-based key (used by value joins: a node joins via its text).
    pub fn content_key(&self, doc: &Document) -> String {
        format!("c:{}", self.text(doc))
    }
}

/// A binding table: named columns, row-major.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    pub cols: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    pub fn new(cols: Vec<String>) -> Self {
        Table {
            cols,
            rows: Vec::new(),
        }
    }

    pub fn col_index(&self, name: &str) -> Result<usize> {
        self.cols
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| CoreError::Algebra {
                msg: format!("unknown column '{name}' (have: {})", self.cols.join(", ")),
            })
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Logical/physical plan nodes. The same enum serves both roles; the
/// optimizer rewrites within it (e.g. `Product`+`Filter` → `HashJoin`).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// All elements with a tag (None = every element), as column `out`.
    Scan { name: Option<String>, out: String },
    /// Children (or descendants when `deep`) of `col` matching `test`.
    Child {
        input: Box<Plan>,
        col: String,
        test: Option<String>,
        deep: bool,
        out: String,
    },
    /// Attribute value of `col` (rows without the attribute are dropped).
    Attr {
        input: Box<Plan>,
        col: String,
        attr: String,
        out: String,
    },
    /// Text content of `col` (rows whose element has no text child drop).
    Text {
        input: Box<Plan>,
        col: String,
        out: String,
    },
    /// Keep rows where `pred` holds on the string value of `col`.
    Filter {
        input: Box<Plan>,
        col: String,
        pred: Predicate,
    },
    /// Keep rows of `input` whose `col` element has no child matching
    /// `test` (single-level negation).
    NotExistsChild {
        input: Box<Plan>,
        col: String,
        test: String,
    },
    /// Cartesian product.
    Product { left: Box<Plan>, right: Box<Plan> },
    /// Equi-join on content keys.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        lcol: String,
        rcol: String,
    },
    /// The same join computed by nested loops (ablation baseline).
    NestedLoopJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        lcol: String,
        rcol: String,
    },
    /// Keep a subset of columns.
    Project { input: Box<Plan>, cols: Vec<String> },
    /// Drop duplicate rows (by identity keys).
    Distinct { input: Box<Plan> },
    /// Group by `keys`, aggregate `func` over `col` into column `out`
    /// (count works on any cells; the numeric functions coerce).
    Aggregate {
        input: Box<Plan>,
        keys: Vec<String>,
        func: AggFunc,
        col: String,
        out: String,
    },
}

impl Plan {
    /// Column names this plan produces, in order.
    pub fn columns(&self) -> Vec<String> {
        match self {
            Plan::Scan { out, .. } => vec![out.clone()],
            Plan::Child { input, out, .. }
            | Plan::Attr { input, out, .. }
            | Plan::Text { input, out, .. } => {
                let mut c = input.columns();
                c.push(out.clone());
                c
            }
            Plan::Filter { input, .. }
            | Plan::NotExistsChild { input, .. }
            | Plan::Distinct { input } => input.columns(),
            Plan::Product { left, right }
            | Plan::HashJoin { left, right, .. }
            | Plan::NestedLoopJoin { left, right, .. } => {
                let mut c = left.columns();
                c.extend(right.columns());
                c
            }
            Plan::Project { cols, .. } => cols.clone(),
            Plan::Aggregate { keys, out, .. } => {
                let mut c = keys.clone();
                c.push(out.clone());
                c
            }
        }
    }

    /// Number of operators (plan size metric for the harness).
    pub fn size(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Child { input, .. }
            | Plan::Attr { input, .. }
            | Plan::Text { input, .. }
            | Plan::Filter { input, .. }
            | Plan::NotExistsChild { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. } => input.size(),
            Plan::Product { left, right }
            | Plan::HashJoin { left, right, .. }
            | Plan::NestedLoopJoin { left, right, .. } => left.size() + right.size(),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for _ in 0..indent {
                write!(f, "  ")?;
            }
            match p {
                Plan::Scan { name, out } => {
                    writeln!(f, "Scan[{}→{out}]", name.as_deref().unwrap_or("*"))
                }
                Plan::Child {
                    input,
                    col,
                    test,
                    deep,
                    out,
                } => {
                    writeln!(
                        f,
                        "{}[{col}/{}→{out}]",
                        if *deep { "Desc" } else { "Child" },
                        test.as_deref().unwrap_or("*")
                    )?;
                    go(input, indent + 1, f)
                }
                Plan::Attr {
                    input,
                    col,
                    attr,
                    out,
                } => {
                    writeln!(f, "Attr[{col}@{attr}→{out}]")?;
                    go(input, indent + 1, f)
                }
                Plan::Text { input, col, out } => {
                    writeln!(f, "Text[{col}→{out}]")?;
                    go(input, indent + 1, f)
                }
                Plan::Filter { input, col, pred } => {
                    writeln!(f, "Filter[{col} {pred}]")?;
                    go(input, indent + 1, f)
                }
                Plan::NotExistsChild { input, col, test } => {
                    writeln!(f, "NotExistsChild[{col}/{test}]")?;
                    go(input, indent + 1, f)
                }
                Plan::Product { left, right } => {
                    writeln!(f, "Product")?;
                    go(left, indent + 1, f)?;
                    go(right, indent + 1, f)
                }
                Plan::HashJoin {
                    left,
                    right,
                    lcol,
                    rcol,
                } => {
                    writeln!(f, "HashJoin[{lcol}={rcol}]")?;
                    go(left, indent + 1, f)?;
                    go(right, indent + 1, f)
                }
                Plan::NestedLoopJoin {
                    left,
                    right,
                    lcol,
                    rcol,
                } => {
                    writeln!(f, "NestedLoopJoin[{lcol}={rcol}]")?;
                    go(left, indent + 1, f)?;
                    go(right, indent + 1, f)
                }
                Plan::Project { input, cols } => {
                    writeln!(f, "Project[{}]", cols.join(","))?;
                    go(input, indent + 1, f)
                }
                Plan::Distinct { input } => {
                    writeln!(f, "Distinct")?;
                    go(input, indent + 1, f)
                }
                Plan::Aggregate {
                    input,
                    keys,
                    func,
                    col,
                    out,
                } => {
                    writeln!(
                        f,
                        "Aggregate[{}({col})→{out} by {}]",
                        func.name(),
                        keys.join(",")
                    )?;
                    go(input, indent + 1, f)
                }
            }
        }
        go(self, 0, f)
    }
}

// ----------------------------------------------------------------------
// Interpreter
// ----------------------------------------------------------------------

/// Execute a plan against a document.
pub fn execute(plan: &Plan, doc: &Document) -> Result<Table> {
    match plan {
        Plan::Scan { name, out } => {
            let mut t = Table::new(vec![out.clone()]);
            let iter: Box<dyn Iterator<Item = NodeId>> = match name {
                Some(n) => Box::new(doc.elements_named(n)),
                None => Box::new(
                    doc.descendants(doc.root())
                        .filter(|&n| doc.kind(n) == NodeKind::Element),
                ),
            };
            for n in iter {
                t.rows.push(vec![Cell::Node(n)]);
            }
            Ok(t)
        }
        Plan::Child {
            input,
            col,
            test,
            deep,
            out,
        } => {
            let t = execute(input, doc)?;
            let ci = t.col_index(col)?;
            let mut result = Table::new({
                let mut c = t.cols.clone();
                c.push(out.clone());
                c
            });
            for row in &t.rows {
                let Cell::Node(n) = &row[ci] else {
                    return Err(CoreError::Algebra {
                        msg: format!("Child navigation over non-node column '{col}'"),
                    });
                };
                let matches = |doc: &Document, c: NodeId| {
                    doc.kind(c) == NodeKind::Element
                        && test.as_deref().is_none_or(|t| doc.name(c) == Some(t))
                };
                if *deep {
                    for c in doc.descendants(*n) {
                        if matches(doc, c) {
                            let mut r = row.clone();
                            r.push(Cell::Node(c));
                            result.rows.push(r);
                        }
                    }
                } else {
                    for c in doc.child_elements(*n) {
                        if matches(doc, c) {
                            let mut r = row.clone();
                            r.push(Cell::Node(c));
                            result.rows.push(r);
                        }
                    }
                }
            }
            Ok(result)
        }
        Plan::Attr {
            input,
            col,
            attr,
            out,
        } => {
            let t = execute(input, doc)?;
            let ci = t.col_index(col)?;
            let mut result = Table::new({
                let mut c = t.cols.clone();
                c.push(out.clone());
                c
            });
            for row in &t.rows {
                let Cell::Node(n) = &row[ci] else {
                    return Err(CoreError::Algebra {
                        msg: format!("Attr navigation over non-node column '{col}'"),
                    });
                };
                if let Some(v) = doc.attr(*n, attr) {
                    let mut r = row.clone();
                    r.push(Cell::Text(v.to_string()));
                    result.rows.push(r);
                }
            }
            Ok(result)
        }
        Plan::Text { input, col, out } => {
            let t = execute(input, doc)?;
            let ci = t.col_index(col)?;
            let mut result = Table::new({
                let mut c = t.cols.clone();
                c.push(out.clone());
                c
            });
            for row in &t.rows {
                let Cell::Node(n) = &row[ci] else {
                    return Err(CoreError::Algebra {
                        msg: format!("Text navigation over non-node column '{col}'"),
                    });
                };
                let has_text = doc
                    .children(*n)
                    .iter()
                    .any(|&c| doc.kind(c) == NodeKind::Text);
                if has_text {
                    let mut r = row.clone();
                    r.push(Cell::Text(doc.text_content(*n)));
                    result.rows.push(r);
                }
            }
            Ok(result)
        }
        Plan::Filter { input, col, pred } => {
            let mut t = execute(input, doc)?;
            let ci = t.col_index(col)?;
            t.rows.retain(|row| pred.eval(&row[ci].text(doc)));
            Ok(t)
        }
        Plan::NotExistsChild { input, col, test } => {
            let mut t = execute(input, doc)?;
            let ci = t.col_index(col)?;
            t.rows.retain(|row| {
                let Cell::Node(n) = &row[ci] else {
                    return false;
                };
                !doc.child_elements(*n)
                    .any(|c| doc.name(c) == Some(test.as_str()))
            });
            Ok(t)
        }
        Plan::Product { left, right } => {
            let l = execute(left, doc)?;
            let r = execute(right, doc)?;
            let mut result = Table::new({
                let mut c = l.cols.clone();
                c.extend(r.cols.clone());
                c
            });
            for lr in &l.rows {
                for rr in &r.rows {
                    let mut row = lr.clone();
                    row.extend(rr.clone());
                    result.rows.push(row);
                }
            }
            Ok(result)
        }
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            let l = execute(left, doc)?;
            let r = execute(right, doc)?;
            let li = l.col_index(lcol)?;
            let ri = r.col_index(rcol)?;
            let mut index: HashMap<String, Vec<usize>> = HashMap::new();
            for (i, row) in r.rows.iter().enumerate() {
                index.entry(row[ri].content_key(doc)).or_default().push(i);
            }
            let mut result = Table::new({
                let mut c = l.cols.clone();
                c.extend(r.cols.clone());
                c
            });
            for lr in &l.rows {
                if let Some(matches) = index.get(&lr[li].content_key(doc)) {
                    for &m in matches {
                        let mut row = lr.clone();
                        row.extend(r.rows[m].clone());
                        result.rows.push(row);
                    }
                }
            }
            Ok(result)
        }
        Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            let l = execute(left, doc)?;
            let r = execute(right, doc)?;
            let li = l.col_index(lcol)?;
            let ri = r.col_index(rcol)?;
            let mut result = Table::new({
                let mut c = l.cols.clone();
                c.extend(r.cols.clone());
                c
            });
            // Key the right side once; the loop still compares per pair (the
            // point of the ablation baseline) but no longer re-walks each
            // right subtree per left row.
            let right_keys: Vec<String> = r.rows.iter().map(|rr| rr[ri].content_key(doc)).collect();
            for lr in &l.rows {
                let lk = lr[li].content_key(doc);
                for (rr, rk) in r.rows.iter().zip(&right_keys) {
                    if *rk == lk {
                        let mut row = lr.clone();
                        row.extend(rr.clone());
                        result.rows.push(row);
                    }
                }
            }
            Ok(result)
        }
        Plan::Project { input, cols } => {
            let t = execute(input, doc)?;
            let idx: Vec<usize> = cols.iter().map(|c| t.col_index(c)).collect::<Result<_>>()?;
            let mut result = Table::new(cols.clone());
            for row in &t.rows {
                result
                    .rows
                    .push(idx.iter().map(|&i| row[i].clone()).collect());
            }
            Ok(result)
        }
        Plan::Distinct { input } => {
            let t = execute(input, doc)?;
            let mut seen = std::collections::HashSet::new();
            let mut result = Table::new(t.cols.clone());
            for row in &t.rows {
                let key: Vec<String> = row.iter().map(|c| c.key(doc)).collect();
                if seen.insert(key.join("\u{1}")) {
                    result.rows.push(row.clone());
                }
            }
            Ok(result)
        }
        Plan::Aggregate {
            input,
            keys,
            func,
            col,
            out,
        } => {
            let t = execute(input, doc)?;
            let kidx: Vec<usize> = keys.iter().map(|c| t.col_index(c)).collect::<Result<_>>()?;
            let ci = t.col_index(col)?;
            let mut order: Vec<String> = Vec::new();
            let mut groups: HashMap<String, (Vec<Cell>, Vec<f64>, usize)> = HashMap::new();
            for row in &t.rows {
                let key_cells: Vec<Cell> = kidx.iter().map(|&i| row[i].clone()).collect();
                let key: String = key_cells
                    .iter()
                    .map(|c| c.key(doc))
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (key_cells, Vec::new(), 0)
                });
                entry.2 += 1;
                if *func != AggFunc::Count {
                    let text = row[ci].text(doc);
                    let n =
                        gql_ssdm::value::parse_number(&text).ok_or_else(|| CoreError::Algebra {
                            msg: format!("{}() over non-number {text:?}", func.name()),
                        })?;
                    entry.1.push(n);
                }
            }
            let mut result = Table::new({
                let mut c = keys.clone();
                c.push(out.clone());
                c
            });
            for key in order {
                let (key_cells, nums, count) = groups.remove(&key).expect("key recorded");
                let value = match func {
                    AggFunc::Count => count as f64,
                    AggFunc::Sum => nums.iter().sum(),
                    AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
                    AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    AggFunc::Avg => nums.iter().sum::<f64>() / nums.len().max(1) as f64,
                };
                let mut row = key_cells;
                row.push(Cell::Num(value));
                result.rows.push(row);
            }
            Ok(result)
        }
    }
}

// ----------------------------------------------------------------------
// Optimizer
// ----------------------------------------------------------------------

/// Rewrite a plan with the standard rules:
///
/// 1. `NestedLoopJoin` → `HashJoin`;
/// 2. `Product` under a later equality `Filter` is *not* detected here (the
///    compiler emits joins directly); instead `Product` with one tiny side
///    stays, larger sides are swapped so the smaller one is enumerated
///    outermost;
/// 3. `Filter` pushdown: filters commute with navigation steps and joins
///    whenever their column is produced below.
pub fn optimize(plan: &Plan) -> Plan {
    let p = push_filters(plan.clone());
    rewrite_joins(p)
}

fn rewrite_joins(p: Plan) -> Plan {
    match p {
        Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::HashJoin {
            left: Box::new(rewrite_joins(*left)),
            right: Box::new(rewrite_joins(*right)),
            lcol,
            rcol,
        },
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::HashJoin {
            left: Box::new(rewrite_joins(*left)),
            right: Box::new(rewrite_joins(*right)),
            lcol,
            rcol,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(rewrite_joins(*left)),
            right: Box::new(rewrite_joins(*right)),
        },
        Plan::Child {
            input,
            col,
            test,
            deep,
            out,
        } => Plan::Child {
            input: Box::new(rewrite_joins(*input)),
            col,
            test,
            deep,
            out,
        },
        Plan::Attr {
            input,
            col,
            attr,
            out,
        } => Plan::Attr {
            input: Box::new(rewrite_joins(*input)),
            col,
            attr,
            out,
        },
        Plan::Text { input, col, out } => Plan::Text {
            input: Box::new(rewrite_joins(*input)),
            col,
            out,
        },
        Plan::Filter { input, col, pred } => Plan::Filter {
            input: Box::new(rewrite_joins(*input)),
            col,
            pred,
        },
        Plan::NotExistsChild { input, col, test } => Plan::NotExistsChild {
            input: Box::new(rewrite_joins(*input)),
            col,
            test,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(rewrite_joins(*input)),
            cols,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite_joins(*input)),
        },
        Plan::Aggregate {
            input,
            keys,
            func,
            col,
            out,
        } => Plan::Aggregate {
            input: Box::new(rewrite_joins(*input)),
            keys,
            func,
            col,
            out,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

/// Push every filter as deep as its column allows.
fn push_filters(p: Plan) -> Plan {
    match p {
        Plan::Filter { input, col, pred } => {
            let pushed = push_filters(*input);
            push_one_filter(pushed, col, pred)
        }
        Plan::Child {
            input,
            col,
            test,
            deep,
            out,
        } => Plan::Child {
            input: Box::new(push_filters(*input)),
            col,
            test,
            deep,
            out,
        },
        Plan::Attr {
            input,
            col,
            attr,
            out,
        } => Plan::Attr {
            input: Box::new(push_filters(*input)),
            col,
            attr,
            out,
        },
        Plan::Text { input, col, out } => Plan::Text {
            input: Box::new(push_filters(*input)),
            col,
            out,
        },
        Plan::NotExistsChild { input, col, test } => Plan::NotExistsChild {
            input: Box::new(push_filters(*input)),
            col,
            test,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
        },
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::HashJoin {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            lcol,
            rcol,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::NestedLoopJoin {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            lcol,
            rcol,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(push_filters(*input)),
            cols,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        Plan::Aggregate {
            input,
            keys,
            func,
            col,
            out,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input)),
            keys,
            func,
            col,
            out,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

/// Push a single filter into `plan` as deep as possible.
fn push_one_filter(plan: Plan, col: String, pred: Predicate) -> Plan {
    match plan {
        // Through binary operators, into the side that has the column.
        Plan::Product { left, right } => {
            if left.columns().contains(&col) {
                Plan::Product {
                    left: Box::new(push_one_filter(*left, col, pred)),
                    right,
                }
            } else if right.columns().contains(&col) {
                Plan::Product {
                    left,
                    right: Box::new(push_one_filter(*right, col, pred)),
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Product { left, right }),
                    col,
                    pred,
                }
            }
        }
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            if left.columns().contains(&col) {
                Plan::HashJoin {
                    left: Box::new(push_one_filter(*left, col, pred)),
                    right,
                    lcol,
                    rcol,
                }
            } else if right.columns().contains(&col) {
                Plan::HashJoin {
                    left,
                    right: Box::new(push_one_filter(*right, col, pred)),
                    lcol,
                    rcol,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::HashJoin {
                        left,
                        right,
                        lcol,
                        rcol,
                    }),
                    col,
                    pred,
                }
            }
        }
        Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            if left.columns().contains(&col) {
                Plan::NestedLoopJoin {
                    left: Box::new(push_one_filter(*left, col, pred)),
                    right,
                    lcol,
                    rcol,
                }
            } else if right.columns().contains(&col) {
                Plan::NestedLoopJoin {
                    left,
                    right: Box::new(push_one_filter(*right, col, pred)),
                    lcol,
                    rcol,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::NestedLoopJoin {
                        left,
                        right,
                        lcol,
                        rcol,
                    }),
                    col,
                    pred,
                }
            }
        }
        // Through unary operators that do not produce the filtered column.
        Plan::Child {
            input,
            col: ncol,
            test,
            deep,
            out,
        } if out != col => Plan::Child {
            input: Box::new(push_one_filter(*input, col, pred)),
            col: ncol,
            test,
            deep,
            out,
        },
        Plan::Attr {
            input,
            col: ncol,
            attr,
            out,
        } if out != col => Plan::Attr {
            input: Box::new(push_one_filter(*input, col, pred)),
            col: ncol,
            attr,
            out,
        },
        Plan::Text {
            input,
            col: ncol,
            out,
        } if out != col => Plan::Text {
            input: Box::new(push_one_filter(*input, col, pred)),
            col: ncol,
            out,
        },
        Plan::NotExistsChild {
            input,
            col: ncol,
            test,
        } => Plan::NotExistsChild {
            input: Box::new(push_one_filter(*input, col, pred)),
            col: ncol,
            test,
        },
        // Otherwise the filter stays here.
        other => Plan::Filter {
            input: Box::new(other),
            col,
            pred,
        },
    }
}

/// The inverse-of-optimization baseline for the ablation: hash joins become
/// nested loops and every filter is hoisted to the top of the plan. The
/// result computes the same table (filters commute with the other
/// operators), the way a naive compiler would emit it.
pub fn deoptimize(plan: &Plan) -> Plan {
    let mut filters: Vec<(String, Predicate)> = Vec::new();
    let stripped = strip(plan.clone(), &mut filters);
    let mut p = stripped;
    for (col, pred) in filters {
        p = Plan::Filter {
            input: Box::new(p),
            col,
            pred,
        };
    }
    p
}

fn strip(p: Plan, filters: &mut Vec<(String, Predicate)>) -> Plan {
    match p {
        Plan::Filter { input, col, pred } => {
            filters.push((col, pred));
            strip(*input, filters)
        }
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        }
        | Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::NestedLoopJoin {
            left: Box::new(strip(*left, filters)),
            right: Box::new(strip(*right, filters)),
            lcol,
            rcol,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(strip(*left, filters)),
            right: Box::new(strip(*right, filters)),
        },
        Plan::Child {
            input,
            col,
            test,
            deep,
            out,
        } => Plan::Child {
            input: Box::new(strip(*input, filters)),
            col,
            test,
            deep,
            out,
        },
        Plan::Attr {
            input,
            col,
            attr,
            out,
        } => Plan::Attr {
            input: Box::new(strip(*input, filters)),
            col,
            attr,
            out,
        },
        Plan::Text { input, col, out } => Plan::Text {
            input: Box::new(strip(*input, filters)),
            col,
            out,
        },
        Plan::NotExistsChild { input, col, test } => Plan::NotExistsChild {
            input: Box::new(strip(*input, filters)),
            col,
            test,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(strip(*input, filters)),
            cols,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(strip(*input, filters)),
        },
        Plan::Aggregate {
            input,
            keys,
            func,
            col,
            out,
        } => Plan::Aggregate {
            input: Box::new(strip(*input, filters)),
            keys,
            func,
            col,
            out,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_xmlgl::ast::CmpOp;

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book year='1994'><title>TCP/IP</title><price>65.95</price></book>\
               <book year='2000'><title>Data on the Web</title><price>39.95</price></book>\
               <book year='2000'><title>XML Handbook</title><price>39.95</price></book>\
               <article year='2000'><title>XML-GL</title></article>\
             </bib>",
        )
        .unwrap()
    }

    fn scan(name: &str, out: &str) -> Plan {
        Plan::Scan {
            name: Some(name.into()),
            out: out.into(),
        }
    }

    #[test]
    fn scan_and_child() {
        let d = doc();
        let plan = Plan::Child {
            input: Box::new(scan("book", "b")),
            col: "b".into(),
            test: Some("title".into()),
            deep: false,
            out: "t".into(),
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.cols, vec!["b", "t"]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn deep_child_and_wildcard_scan() {
        let d = doc();
        let plan = Plan::Child {
            input: Box::new(Plan::Scan {
                name: None,
                out: "x".into(),
            }),
            col: "x".into(),
            test: Some("title".into()),
            deep: true,
            out: "t".into(),
        };
        let t = execute(&plan, &d).unwrap();
        // Every ancestor (bib, book/article) reaches each title once:
        // bib→4 titles, book→1 each (3), article→1 → 8 rows.
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn attr_and_filter() {
        let d = doc();
        let plan = Plan::Filter {
            input: Box::new(Plan::Attr {
                input: Box::new(scan("book", "b")),
                col: "b".into(),
                attr: "year".into(),
                out: "y".into(),
            }),
            col: "y".into(),
            pred: Predicate::cmp(CmpOp::Ge, "2000"),
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn text_step_drops_textless() {
        let d = doc();
        let plan = Plan::Text {
            input: Box::new(scan("book", "b")),
            col: "b".into(),
            out: "s".into(),
        };
        // Books have no direct text children (only elements).
        assert_eq!(execute(&plan, &d).unwrap().len(), 0);
        let titles = Plan::Text {
            input: Box::new(scan("title", "t")),
            col: "t".into(),
            out: "s".into(),
        };
        assert_eq!(execute(&titles, &d).unwrap().len(), 4);
    }

    #[test]
    fn joins_agree() {
        let d = doc();
        // Self-join books on price text.
        let left = Plan::Text {
            input: Box::new(Plan::Child {
                input: Box::new(scan("book", "b1")),
                col: "b1".into(),
                test: Some("price".into()),
                deep: false,
                out: "p1".into(),
            }),
            col: "p1".into(),
            out: "v1".into(),
        };
        let right = Plan::Text {
            input: Box::new(Plan::Child {
                input: Box::new(scan("book", "b2")),
                col: "b2".into(),
                test: Some("price".into()),
                deep: false,
                out: "p2".into(),
            }),
            col: "p2".into(),
            out: "v2".into(),
        };
        let hash = Plan::HashJoin {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            lcol: "v1".into(),
            rcol: "v2".into(),
        };
        let nl = Plan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            lcol: "v1".into(),
            rcol: "v2".into(),
        };
        let th = execute(&hash, &d).unwrap();
        let tn = execute(&nl, &d).unwrap();
        // 1 (65.95 with itself) + 4 (two 39.95 books × each other) = 5.
        assert_eq!(th.len(), 5);
        assert_eq!(th.len(), tn.len());
    }

    #[test]
    fn not_exists_child() {
        let d = doc();
        let plan = Plan::NotExistsChild {
            input: Box::new(Plan::Scan {
                name: None,
                out: "x".into(),
            }),
            col: "x".into(),
            test: "price".into(),
        };
        let t = execute(&plan, &d).unwrap();
        // Elements without a price child: bib, article, 4 titles, 3 prices.
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn project_distinct() {
        let d = doc();
        let plan = Plan::Distinct {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Text {
                    input: Box::new(scan("price", "p")),
                    col: "p".into(),
                    out: "v".into(),
                }),
                cols: vec!["v".into()],
            }),
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.len(), 2); // 65.95 and 39.95
    }

    #[test]
    fn aggregate_group_by() {
        let d = doc();
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Text {
                input: Box::new(Plan::Child {
                    input: Box::new(Plan::Attr {
                        input: Box::new(scan("book", "b")),
                        col: "b".into(),
                        attr: "year".into(),
                        out: "y".into(),
                    }),
                    col: "b".into(),
                    test: Some("price".into()),
                    deep: false,
                    out: "p".into(),
                }),
                col: "p".into(),
                out: "v".into(),
            }),
            keys: vec!["y".into()],
            func: AggFunc::Sum,
            col: "v".into(),
            out: "total".into(),
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.len(), 2);
        let total_2000 = t
            .rows
            .iter()
            .find(|r| r[0].text(&d) == "2000")
            .map(|r| match &r[1] {
                Cell::Num(n) => *n,
                other => panic!("unexpected {other:?}"),
            })
            .unwrap();
        assert!((total_2000 - 79.90).abs() < 1e-9);
    }

    #[test]
    fn aggregate_count_over_nonnumbers() {
        let d = doc();
        let plan = Plan::Aggregate {
            input: Box::new(scan("book", "b")),
            keys: vec![],
            func: AggFunc::Count,
            col: "b".into(),
            out: "n".into(),
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.rows[0], vec![Cell::Num(3.0)]);
        // Numeric aggregate over nodes fails cleanly.
        let bad = Plan::Aggregate {
            input: Box::new(scan("book", "b")),
            keys: vec![],
            func: AggFunc::Sum,
            col: "b".into(),
            out: "n".into(),
        };
        assert!(execute(&bad, &d).is_err());
    }

    #[test]
    fn unknown_column_errors() {
        let d = doc();
        let plan = Plan::Filter {
            input: Box::new(scan("book", "b")),
            col: "zzz".into(),
            pred: Predicate::always(),
        };
        let err = execute(&plan, &d).unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn optimizer_pushes_filters_below_joins() {
        let d = doc();
        let unopt = Plan::Filter {
            input: Box::new(Plan::NestedLoopJoin {
                left: Box::new(Plan::Attr {
                    input: Box::new(scan("book", "b1")),
                    col: "b1".into(),
                    attr: "year".into(),
                    out: "y1".into(),
                }),
                right: Box::new(Plan::Attr {
                    input: Box::new(scan("book", "b2")),
                    col: "b2".into(),
                    attr: "year".into(),
                    out: "y2".into(),
                }),
                lcol: "y1".into(),
                rcol: "y2".into(),
            }),
            col: "y1".into(),
            pred: Predicate::cmp(CmpOp::Eq, "2000"),
        };
        let opt = optimize(&unopt);
        // Same answers.
        let a = execute(&unopt, &d).unwrap();
        let b = execute(&opt, &d).unwrap();
        assert_eq!(a.len(), b.len());
        // The filter sits under the join, and the join became a hash join.
        match &opt {
            Plan::HashJoin { left, .. } => {
                assert!(
                    matches!(**left, Plan::Attr { ref input, .. } if matches!(**input, Plan::Filter { .. }))
                        || matches!(**left, Plan::Filter { .. }),
                    "filter not pushed: {opt}"
                );
            }
            other => panic!("expected HashJoin at root, got {other}"),
        }
    }

    #[test]
    fn plan_display_and_size() {
        let p = Plan::Filter {
            input: Box::new(scan("book", "b")),
            col: "b".into(),
            pred: Predicate::cmp(CmpOp::Eq, "x"),
        };
        assert_eq!(p.size(), 2);
        let s = p.to_string();
        assert!(s.contains("Filter"));
        assert!(s.contains("Scan[book→b]"));
    }

    #[test]
    fn columns_tracking() {
        let p = Plan::Aggregate {
            input: Box::new(scan("book", "b")),
            keys: vec!["b".into()],
            func: AggFunc::Count,
            col: "b".into(),
            out: "n".into(),
        };
        assert_eq!(p.columns(), vec!["b", "n"]);
    }

    #[test]
    fn deoptimize_roundtrip() {
        let d = doc();
        let plan = Plan::Filter {
            input: Box::new(Plan::HashJoin {
                left: Box::new(Plan::Attr {
                    input: Box::new(scan("book", "b1")),
                    col: "b1".into(),
                    attr: "year".into(),
                    out: "y1".into(),
                }),
                right: Box::new(Plan::Attr {
                    input: Box::new(scan("book", "b2")),
                    col: "b2".into(),
                    attr: "year".into(),
                    out: "y2".into(),
                }),
                lcol: "y1".into(),
                rcol: "y2".into(),
            }),
            col: "y1".into(),
            pred: Predicate::cmp(CmpOp::Eq, "2000"),
        };
        let de = deoptimize(&plan);
        // Same result, nested-loop join, filter at top.
        assert!(matches!(de, Plan::Filter { .. }));
        assert_eq!(
            execute(&plan, &d).unwrap().len(),
            execute(&de, &d).unwrap().len()
        );
        // Re-optimizing restores the hash join.
        let re = optimize(&de);
        assert_eq!(
            execute(&re, &d).unwrap().len(),
            execute(&plan, &d).unwrap().len()
        );
        fn has_hash(p: &Plan) -> bool {
            match p {
                Plan::HashJoin { .. } => true,
                Plan::Filter { input, .. }
                | Plan::Child { input, .. }
                | Plan::Attr { input, .. }
                | Plan::Text { input, .. }
                | Plan::NotExistsChild { input, .. }
                | Plan::Project { input, .. }
                | Plan::Distinct { input }
                | Plan::Aggregate { input, .. } => has_hash(input),
                Plan::Product { left, right } | Plan::NestedLoopJoin { left, right, .. } => {
                    has_hash(left) || has_hash(right)
                }
                Plan::Scan { .. } => false,
            }
        }
        assert!(has_hash(&re));
        assert!(!has_hash(&de));
    }
}
