//! Translators between the formalisms.
//!
//! All three translators are deliberately *partial*: where a feature of the
//! source language has no counterpart in the target, they fail with
//! [`crate::CoreError::Untranslatable`] naming the feature. Those failures
//! are data — experiment **T2** runs the canonical query suite through the
//! translators and reports exactly which arrows hold.

mod to_algebra;
mod xmlgl_wglog;

pub use to_algebra::extract_to_plan;
pub use xmlgl_wglog::{wglog_to_xmlgl, xmlgl_to_wglog};
