//! Compilation of XML-GL extract graphs to algebra plans.
//!
//! The compiler covers the conjunctive core of XML-GL: element boxes with
//! name tests and predicates, attribute and text circles, asterisk (deep)
//! edges, simple negation (a crossed edge to a bare named box), multiple
//! roots and cross-root joins. Outside the fragment — ordered matching,
//! deep text/attribute edges, negation over a structured subtree, more than
//! one join between the same pair of pattern trees — it reports the feature
//! it cannot express.
//!
//! The plan computes the rule's *bindings* (one column per query node); the
//! construct side stays with the XML-GL engine, which is exactly the
//! separation the optimizer ablation (T5) needs: same bindings, different
//! physical plans.

use gql_xmlgl::ast::{ExtractGraph, NameTest, QNodeId, QNodeKind, Rule};

use crate::algebra::Plan;
use crate::{CoreError, Result};

fn unsupported(feature: &str, detail: impl Into<String>) -> CoreError {
    CoreError::Untranslatable {
        feature: feature.to_string(),
        detail: detail.into(),
    }
}

/// Column name of a query node: its variable, or a positional fallback.
/// The fallback is `#q<n>` — `#` cannot appear in DSL variable names, and
/// builder-supplied collisions are suffixed away.
pub fn column_name(g: &ExtractGraph, id: QNodeId) -> String {
    match &g.node(id).var {
        Some(v) => v.clone(),
        None => {
            let mut name = format!("#q{}", id.0);
            while g.by_var(&name).is_some() {
                name.push('_');
            }
            name
        }
    }
}

/// Compile a rule's extract side into a plan producing one row per binding.
pub fn extract_to_plan(rule: &Rule) -> Result<Plan> {
    let g = &rule.extract;
    if g.roots.is_empty() {
        return Err(unsupported("empty-extract", "extract graph has no root"));
    }
    let mut combined: Option<Plan> = None;
    let mut combined_cols: Vec<QNodeId> = Vec::new();
    for (ri, &root) in g.roots.iter().enumerate() {
        let mut tree_cols = Vec::new();
        let tree = compile_tree(g, root, &mut tree_cols)?;
        combined = Some(match combined {
            None => tree,
            Some(prev) => {
                // Cross joins between the already-combined prefix and this
                // tree.
                let cross: Vec<(QNodeId, QNodeId)> = g
                    .joins
                    .iter()
                    .filter_map(|&(a, b)| {
                        let a_prev = combined_cols.contains(&a);
                        let b_prev = combined_cols.contains(&b);
                        let a_here = tree_cols.contains(&a);
                        let b_here = tree_cols.contains(&b);
                        if a_prev && b_here {
                            Some((a, b))
                        } else if b_prev && a_here {
                            Some((b, a))
                        } else {
                            None
                        }
                    })
                    .collect();
                match cross.len() {
                    0 => Plan::Product {
                        left: Box::new(prev),
                        right: Box::new(tree),
                    },
                    1 => Plan::HashJoin {
                        left: Box::new(prev),
                        right: Box::new(tree),
                        lcol: column_name(g, cross[0].0),
                        rcol: column_name(g, cross[0].1),
                    },
                    n => {
                        return Err(unsupported(
                            "multi-join",
                            format!("{n} join edges between pattern tree {ri} and earlier trees"),
                        ))
                    }
                }
            }
        });
        combined_cols.extend(tree_cols);
    }
    // Joins entirely inside one tree are not representable (the algebra has
    // no column-equality filter on purpose — the diagram idiom is the
    // cross-tree shared node).
    for &(a, b) in &g.joins {
        let cross_tree = {
            let tree_of = |q: QNodeId| {
                g.roots
                    .iter()
                    .position(|&r| subtree_contains(g, r, q))
                    .unwrap_or(usize::MAX)
            };
            tree_of(a) != tree_of(b)
        };
        if !cross_tree {
            return Err(unsupported(
                "intra-tree-join",
                "join edge within one pattern tree",
            ));
        }
    }
    Ok(combined.expect("at least one root"))
}

fn subtree_contains(g: &ExtractGraph, root: QNodeId, target: QNodeId) -> bool {
    let mut stack = vec![root];
    while let Some(q) = stack.pop() {
        if q == target {
            return true;
        }
        stack.extend(g.node(q).children.iter().map(|e| e.target));
    }
    false
}

/// Compile one pattern tree rooted at `root`.
fn compile_tree(g: &ExtractGraph, root: QNodeId, cols: &mut Vec<QNodeId>) -> Result<Plan> {
    let node = g.node(root);
    let QNodeKind::Element(test) = &node.kind else {
        return Err(unsupported(
            "non-element-root",
            "pattern roots must be element boxes",
        ));
    };
    let out = column_name(g, root);
    let mut plan = Plan::Scan {
        name: match test {
            NameTest::Name(n) => Some(n.clone()),
            NameTest::Wildcard => None,
        },
        out: out.clone(),
    };
    cols.push(root);
    if !node.predicate.is_trivial() {
        plan = Plan::Filter {
            input: Box::new(plan),
            col: out,
            pred: node.predicate.clone(),
        };
    }
    compile_children(g, root, plan, cols)
}

fn compile_children(
    g: &ExtractGraph,
    parent: QNodeId,
    mut plan: Plan,
    cols: &mut Vec<QNodeId>,
) -> Result<Plan> {
    let pnode = g.node(parent);
    if g.ordered[parent.index()] {
        return Err(unsupported(
            "ordered-matching",
            "algebra has no sibling-order operator",
        ));
    }
    let pcol = column_name(g, parent);
    for edge in &pnode.children {
        let child = g.node(edge.target);
        if edge.negated {
            match &child.kind {
                QNodeKind::Element(NameTest::Name(n))
                    if child.children.is_empty() && child.predicate.is_trivial() =>
                {
                    plan = Plan::NotExistsChild {
                        input: Box::new(plan),
                        col: pcol.clone(),
                        test: n.clone(),
                    };
                    continue;
                }
                _ => {
                    return Err(unsupported(
                        "complex-negation",
                        "only a crossed edge to a bare named box is planable",
                    ))
                }
            }
        }
        let ccol = column_name(g, edge.target);
        match &child.kind {
            QNodeKind::Attribute(name) => {
                if edge.deep {
                    return Err(unsupported(
                        "deep-attribute",
                        "asterisk edge to an attribute",
                    ));
                }
                plan = Plan::Attr {
                    input: Box::new(plan),
                    col: pcol.clone(),
                    attr: name.clone(),
                    out: ccol.clone(),
                };
                cols.push(edge.target);
                if !child.predicate.is_trivial() {
                    plan = Plan::Filter {
                        input: Box::new(plan),
                        col: ccol,
                        pred: child.predicate.clone(),
                    };
                }
            }
            QNodeKind::Text => {
                if edge.deep {
                    return Err(unsupported("deep-text", "asterisk edge to a text circle"));
                }
                plan = Plan::Text {
                    input: Box::new(plan),
                    col: pcol.clone(),
                    out: ccol.clone(),
                };
                cols.push(edge.target);
                if !child.predicate.is_trivial() {
                    plan = Plan::Filter {
                        input: Box::new(plan),
                        col: ccol,
                        pred: child.predicate.clone(),
                    };
                }
            }
            QNodeKind::Element(test) => {
                plan = Plan::Child {
                    input: Box::new(plan),
                    col: pcol.clone(),
                    test: match test {
                        NameTest::Name(n) => Some(n.clone()),
                        NameTest::Wildcard => None,
                    },
                    deep: edge.deep,
                    out: ccol.clone(),
                };
                cols.push(edge.target);
                if !child.predicate.is_trivial() {
                    plan = Plan::Filter {
                        input: Box::new(plan),
                        col: ccol,
                        pred: child.predicate.clone(),
                    };
                }
                plan = compile_children(g, edge.target, plan, cols)?;
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{execute, optimize};
    use gql_ssdm::Document;
    use gql_xmlgl::ast::CmpOp;
    use gql_xmlgl::builder::{RuleBuilder, C, Q};
    use gql_xmlgl::eval::match_rule;

    fn doc() -> Document {
        gql_ssdm::generator::greengrocer(gql_ssdm::generator::GrocerConfig {
            products: 30,
            vendors: 4,
            seed: 5,
        })
    }

    fn rule(builder: RuleBuilder) -> gql_xmlgl::ast::Rule {
        builder.construct(C::elem("out")).build().unwrap()
    }

    /// The central coherence property: the plan's row count equals the
    /// XML-GL engine's embedding count, optimized or not.
    fn assert_agrees(r: &gql_xmlgl::ast::Rule, d: &Document) {
        let embeddings = match_rule(r, d).len();
        let plan = extract_to_plan(r).unwrap();
        let rows = execute(&plan, d).unwrap().len();
        assert_eq!(rows, embeddings, "plan disagrees with engine:\n{plan}");
        let opt = optimize(&plan);
        let rows_opt = execute(&opt, d).unwrap().len();
        assert_eq!(rows_opt, embeddings, "optimized plan disagrees:\n{opt}");
    }

    #[test]
    fn selection_queries_agree() {
        let d = doc();
        assert_agrees(
            &rule(RuleBuilder::new().extract(Q::elem("product").var("p"))),
            &d,
        );
        assert_agrees(
            &rule(
                RuleBuilder::new().extract(
                    Q::elem("product")
                        .var("p")
                        .child(Q::elem("type").child(Q::text().var("t").pred(CmpOp::Eq, "fruit"))),
                ),
            ),
            &d,
        );
    }

    #[test]
    fn deep_and_wildcard_agree() {
        let d = doc();
        assert_agrees(
            &rule(
                RuleBuilder::new()
                    .extract(Q::elem("greengrocer").deep_child(Q::elem("name").var("n"))),
            ),
            &d,
        );
        assert_agrees(&rule(RuleBuilder::new().extract(Q::any().var("x"))), &d);
    }

    #[test]
    fn join_query_agrees() {
        let d = doc();
        let r = RuleBuilder::new()
            .extract(
                Q::elem("product")
                    .var("p")
                    .child(Q::elem("vendor").child(Q::text().var("v1"))),
            )
            .extract(
                Q::elem("vendor")
                    .var("w")
                    .child(Q::elem("name").child(Q::text().var("v2"))),
            )
            .join("v1", "v2")
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_agrees(&r, &d);
        // Shape check: the join compiles to a HashJoin.
        let plan = extract_to_plan(&r).unwrap();
        assert!(matches!(plan, Plan::HashJoin { .. }), "{plan}");
    }

    #[test]
    fn product_without_join_agrees() {
        let d = Document::parse_str("<r><a/><a/><b/><b/><b/></r>").unwrap();
        let r = RuleBuilder::new()
            .extract(Q::elem("a").var("x"))
            .extract(Q::elem("b").var("y"))
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_agrees(&r, &d);
    }

    #[test]
    fn simple_negation_agrees() {
        let d = Document::parse_str("<g><p><v/></p><p/><p><v/><w/></p></g>").unwrap();
        let r = RuleBuilder::new()
            .extract(Q::elem("p").var("p").without(Q::elem("v")))
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_agrees(&r, &d);
    }

    #[test]
    fn unsupported_features_are_named() {
        let ordered = rule(
            RuleBuilder::new().extract(
                Q::elem("r")
                    .ordered()
                    .child(Q::elem("a"))
                    .child(Q::elem("b")),
            ),
        );
        match extract_to_plan(&ordered) {
            Err(CoreError::Untranslatable { feature, .. }) => {
                assert_eq!(feature, "ordered-matching")
            }
            other => panic!("unexpected {other:?}"),
        }

        let deep_attr =
            rule(RuleBuilder::new().extract(Q::elem("r").deep_child(Q::attr("id").var("i"))));
        match extract_to_plan(&deep_attr) {
            Err(CoreError::Untranslatable { feature, .. }) => assert_eq!(feature, "deep-attribute"),
            other => panic!("unexpected {other:?}"),
        }

        let complex_neg = rule(
            RuleBuilder::new().extract(Q::elem("r").without(Q::elem("a").child(Q::elem("b")))),
        );
        match extract_to_plan(&complex_neg) {
            Err(CoreError::Untranslatable { feature, .. }) => {
                assert_eq!(feature, "complex-negation")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn columns_use_variable_names() {
        let r = rule(RuleBuilder::new().extract(Q::elem("product").var("p").child(Q::attr("id"))));
        let plan = extract_to_plan(&r).unwrap();
        let cols = plan.columns();
        assert!(cols.contains(&"p".to_string()));
        assert!(cols.iter().any(|c| c.starts_with("#q"))); // unnamed attr node

        // The fallback dodges user variables named like it.
        let clash =
            rule(RuleBuilder::new().extract(Q::elem("product").var("#q1").child(Q::attr("id"))));
        let cols = extract_to_plan(&clash).unwrap().columns();
        let unique: std::collections::HashSet<&String> = cols.iter().collect();
        assert_eq!(unique.len(), cols.len(), "{cols:?}");
    }
}
