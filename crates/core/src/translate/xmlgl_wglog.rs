//! Translation between XML-GL and WG-Log.
//!
//! The two languages look at the same data through different models: XML-GL
//! matches the document tree directly, WG-Log matches the complex-object
//! graph produced by [`gql_wglog::instance::Instance::from_document`]. The
//! translators below are faithful *with respect to that loader*: a
//! translated query, run by the other engine over the loaded instance,
//! selects the same things. Their gaps are the measured expressiveness
//! differences of experiment T2:
//!
//! | XML-GL feature | WG-Log fate |
//! |---|---|
//! | atomic child + text predicate | object attribute constraint |
//! | *bare* child box (no content drawn) | object edge — **caveat**: if the data instance folds that element into an attribute (text-only or *empty* in the document), the translated query matches nothing; draw a text circle to get a constraint instead |
//!
//! Loader-fold caveats (the translators are pattern-directed; the loader is
//! data-directed, and the two can disagree):
//!
//! * `atomic_child` assumes the matched element is attribute-free and
//!   element-free *in the data*; an element like `<category lang='en'>…`
//!   stays an object in the instance, so the folded constraint misses it;
//! * element/text predicates become constraints on the loader's `text`
//!   attribute, which holds the element's *own* text — XML-GL predicates
//!   read the full recursive `text_content`, so mixed content can differ;
//! * the inverse direction renders non-`text` constraints as atomic child
//!   patterns; XML-attribute-backed data needs the pattern drawn with an
//!   attribute circle instead.
//!
//! Where exactness matters, check the translated query against a
//! [`gql_wglog::schema::WgSchema`] extracted from the instance.
//! | value join (shared text node) | **untranslatable** (WG-Log joins by object identity) |
//! | deep (asterisk) edge | **untranslatable** (labels vary per step) |
//! | ordered matching | **untranslatable** |
//! | aggregation / restructuring construction | **untranslatable** (beyond member-collection) |
//!
//! | WG-Log feature | XML-GL fate |
//! |---|---|
//! | recursion (fixpoint through derived edges) | **untranslatable** |
//! | regular path edges | **untranslatable** |
//! | edge label ≠ target type | **untranslatable** (containment labels are tags) |
//! | attribute copies onto invented objects | **untranslatable** |

use gql_wglog::rule as wg;
use gql_xmlgl::ast as xg;
use gql_xmlgl::builder as xb;

use crate::{CoreError, Result};

fn unsupported(feature: &str, detail: impl Into<String>) -> CoreError {
    CoreError::Untranslatable {
        feature: feature.to_string(),
        detail: detail.into(),
    }
}

/// Is this pattern node drawn as an "atomic" element — a named box whose
/// pattern content is purely textual (text circles and/or a predicate)?
/// The instance loader folds such elements into parent attributes, so they
/// translate to constraints. A *bare* box (no content at all) is treated as
/// an object edge instead: that is how one draws "has a menu", and atomic
/// data would carry a text circle in the pattern.
fn atomic_child(g: &xg::ExtractGraph, id: xg::QNodeId) -> Option<(&str, xg::Predicate)> {
    let n = g.node(id);
    let xg::QNodeKind::Element(xg::NameTest::Name(tag)) = &n.kind else {
        return None;
    };
    if n.children.is_empty() && n.predicate.is_trivial() {
        return None;
    }
    let mut pred = n.predicate.clone();
    for edge in &n.children {
        if edge.deep || edge.negated {
            return None;
        }
        match &g.node(edge.target).kind {
            xg::QNodeKind::Text => {
                let tn = g.node(edge.target);
                for clause in &tn.predicate.clauses {
                    pred.clauses.push(clause.clone());
                }
            }
            _ => return None,
        }
    }
    Some((tag, pred))
}

/// Single comparison extraction: WG-Log constraints are single comparisons,
/// so CNF predicates with disjunctions do not translate.
fn pred_to_constraints(attr: &str, pred: &xg::Predicate) -> Result<Vec<wg::Constraint>> {
    let mut out = Vec::new();
    for clause in &pred.clauses {
        if clause.len() != 1 {
            return Err(unsupported(
                "disjunctive-predicate",
                "WG-Log constraints are conjunctive single comparisons",
            ));
        }
        let (op, value) = &clause[0];
        out.push(wg::Constraint {
            attr: attr.to_string(),
            op: *op,
            value: value.clone(),
        });
    }
    if out.is_empty() {
        // Bare attribute circle: existence check. `contains ""` holds for
        // any present value.
        out.push(wg::Constraint {
            attr: attr.to_string(),
            op: wg::CmpOp::Contains,
            value: String::new(),
        });
    }
    Ok(out)
}

/// Translate an XML-GL rule into a WG-Log program over the loaded instance.
pub fn xmlgl_to_wglog(rule: &xg::Rule) -> Result<wg::Program> {
    let g = &rule.extract;
    if !g.joins.is_empty() {
        return Err(unsupported(
            "value-join",
            "XML-GL joins compare content; WG-Log joins are object identity",
        ));
    }
    let mut out = wg::Rule::default();
    // Query nodes the construct side actually uses: bindings on these may
    // not be folded away.
    let mut used: Vec<bool> = vec![false; g.nodes.len()];
    for n in &rule.construct.nodes {
        match &n.kind {
            xg::CNodeKind::Copy { source, .. }
            | xg::CNodeKind::All { source, .. }
            | xg::CNodeKind::Aggregate { source, .. } => used[source.index()] = true,
            xg::CNodeKind::GroupBy { source, key, .. } => {
                used[source.index()] = true;
                used[key.index()] = true;
            }
            xg::CNodeKind::Attribute {
                value: xg::CValue::Binding(source),
                ..
            } => used[source.index()] = true,
            _ => {}
        }
    }
    // Query-node mapping: xmlgl node id → wglog var name.
    let mut var_of: Vec<Option<String>> = vec![None; g.nodes.len()];
    let mut counter = 0usize;

    // Collapsed atomic children become constraints on their parent — record
    // which nodes vanish. Generated names must not collide with user vars.
    let user_vars: std::collections::HashSet<String> =
        g.nodes.iter().filter_map(|n| n.var.clone()).collect();
    let mut fresh = move |hint: Option<&String>| {
        if let Some(h) = hint {
            return h.clone();
        }
        loop {
            counter += 1;
            let candidate = format!("v{counter}");
            if !user_vars.contains(&candidate) {
                return candidate;
            }
        }
    };

    for &root in &g.roots {
        translate_qnode(g, root, &mut out, &mut var_of, &used, &mut fresh)?;
    }

    // Construct side.
    let mut goal = None;
    for &croot in &rule.construct.roots {
        let root_node = rule.construct.node(croot);
        let xg::CNodeKind::Element(tag) = &root_node.kind else {
            return Err(unsupported(
                "xml-construction",
                "construct root must be an element",
            ));
        };
        let mut list_var = format!("c{}", croot.0);
        while out.by_var(&list_var).is_some() {
            list_var.push('_');
        }
        out.nodes.push(wg::RNode {
            var: list_var.clone(),
            test: wg::TypeTest::Type(tag.clone()),
            color: wg::Color::Construct,
            constraints: Vec::new(),
            set_attrs: Vec::new(),
            per: Vec::new(),
            span: root_node.span,
        });
        goal.get_or_insert(tag.clone());
        for &child in &root_node.children {
            match &rule.construct.node(child).kind {
                xg::CNodeKind::All {
                    source,
                    order: None,
                } => {
                    let src_var = var_of[source.index()].clone().ok_or_else(|| {
                        unsupported(
                            "atomic-binding",
                            "collected node was folded into an attribute constraint",
                        )
                    })?;
                    let from = out.by_var(&list_var).expect("just added");
                    let to = out.by_var(&src_var).expect("translated query node");
                    out.edges.push(wg::REdge {
                        from,
                        to,
                        label: wg::LabelTest::Label("member".into()),
                        color: wg::Color::Construct,
                        negated: false,
                    });
                }
                xg::CNodeKind::Attribute {
                    name,
                    value: xg::CValue::Literal(v),
                } => {
                    let id = out.by_var(&list_var).expect("just added");
                    out.nodes[id.index()]
                        .set_attrs
                        .push((name.clone(), wg::AttrValue::Literal(v.clone())));
                }
                other => {
                    return Err(unsupported(
                        "xml-construction",
                        format!("construct feature {other:?} has no WG-Log counterpart"),
                    ))
                }
            }
        }
    }
    out.check()
        .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
    let program = wg::Program {
        rules: vec![out],
        goal,
    };
    // The translation renders negated subtrees as negated query edges and
    // construction as derived `member` edges. When a negated edge's label
    // test can observe a derived label (a wildcard `not *` box, or a box
    // whose tag collides with `member`), the program negates through its
    // own derivation — WG-Log's stratified semantics reject it, so report
    // the pattern as a translation gap rather than hand over a program the
    // engine cannot run.
    if let Err(e) = gql_wglog::eval::stratify(&program) {
        return Err(unsupported("unstratifiable-negation", e.to_string()));
    }
    Ok(program)
}

fn translate_qnode(
    g: &xg::ExtractGraph,
    id: xg::QNodeId,
    out: &mut wg::Rule,
    var_of: &mut Vec<Option<String>>,
    used: &[bool],
    fresh: &mut impl FnMut(Option<&String>) -> String,
) -> Result<()> {
    let node = g.node(id);
    let test = match &node.kind {
        xg::QNodeKind::Element(xg::NameTest::Name(n)) => wg::TypeTest::Type(n.clone()),
        xg::QNodeKind::Element(xg::NameTest::Wildcard) => wg::TypeTest::Any,
        _ => {
            return Err(unsupported(
                "non-element-root",
                "text/attribute circles translate as parent constraints",
            ))
        }
    };
    if g.ordered[id.index()] {
        return Err(unsupported(
            "ordered-matching",
            "WG-Log graphs are unordered",
        ));
    }
    let var = fresh(node.var.as_ref());
    var_of[id.index()] = Some(var.clone());
    let mut constraints = Vec::new();
    if !node.predicate.is_trivial() {
        // Element predicate reads the text content; the loader stores own
        // text under the `text` attribute.
        constraints.extend(pred_to_constraints("text", &node.predicate)?);
    }
    let mut deferred_edges: Vec<(xg::QNodeId, String)> = Vec::new();
    for edge in &node.children {
        let child = g.node(edge.target);
        if edge.deep {
            return Err(unsupported(
                "deep-edge",
                "asterisk edges have no label sequence",
            ));
        }
        match &child.kind {
            xg::QNodeKind::Attribute(attr) => {
                if edge.negated {
                    return Err(unsupported("negated-attribute", "no attribute negation"));
                }
                if used[edge.target.index()] {
                    return Err(unsupported(
                        "atomic-binding",
                        "attribute values cannot be bound in WG-Log",
                    ));
                }
                constraints.extend(pred_to_constraints(attr, &child.predicate)?);
            }
            xg::QNodeKind::Text => {
                if edge.negated {
                    return Err(unsupported("negated-text", "no text negation"));
                }
                if used[edge.target.index()] {
                    return Err(unsupported(
                        "atomic-binding",
                        "text values cannot be bound in WG-Log",
                    ));
                }
                constraints.extend(pred_to_constraints("text", &child.predicate)?);
            }
            xg::QNodeKind::Element(_) => {
                if let Some((tag, pred)) = atomic_child(g, edge.target) {
                    if edge.negated {
                        return Err(unsupported(
                            "complex-negation",
                            "negated atomic children fold into attributes",
                        ));
                    }
                    if used[edge.target.index()]
                        || child.children.iter().any(|e| used[e.target.index()])
                    {
                        return Err(unsupported(
                            "atomic-binding",
                            format!("atomic <{tag}> folds into an attribute; its binding is lost"),
                        ));
                    }
                    constraints.extend(pred_to_constraints(tag, &pred)?);
                } else {
                    let tag = match &child.kind {
                        xg::QNodeKind::Element(xg::NameTest::Name(n)) => n.clone(),
                        _ => "*".to_string(),
                    };
                    deferred_edges.push((edge.target, tag));
                    if edge.negated {
                        // Negated structured subtree: only a bare box is
                        // expressible (existential negated edge).
                        if !child.children.is_empty() || !child.predicate.is_trivial() {
                            return Err(unsupported(
                                "complex-negation",
                                "negation beyond a bare box",
                            ));
                        }
                    }
                }
            }
        }
    }
    out.nodes.push(wg::RNode {
        var: var.clone(),
        test,
        color: wg::Color::Query,
        constraints,
        set_attrs: Vec::new(),
        per: Vec::new(),
        span: g.node(id).span,
    });
    for (target, tag) in deferred_edges {
        translate_qnode(g, target, out, var_of, used, fresh)?;
        let from = out.by_var(&var).expect("just added");
        let to_var = var_of[target.index()].clone().expect("child translated");
        let to = out.by_var(&to_var).expect("child translated");
        let negated = g
            .node(id)
            .children
            .iter()
            .find(|e| e.target == target)
            .map(|e| e.negated)
            .unwrap_or(false);
        out.edges.push(wg::REdge {
            from,
            to,
            label: if tag == "*" {
                wg::LabelTest::Any
            } else {
                wg::LabelTest::Label(tag)
            },
            color: wg::Color::Query,
            negated,
        });
    }
    Ok(())
}

/// Translate a WG-Log program into an XML-GL rule over the raw document.
pub fn wglog_to_xmlgl(program: &wg::Program) -> Result<xg::Program> {
    if program.rules.len() != 1 {
        return Err(unsupported(
            "multi-rule",
            "XML-GL has no rule chaining / recursion",
        ));
    }
    let rule = &program.rules[0];
    // Recursion check: anything the rule constructs (object types or edge
    // labels) observed by its query part? XML-GL evaluates in one pass, so
    // any feedback loop changes semantics. Wildcard query nodes observe
    // every type, so inventing anything at all makes them recursive.
    let construct_types: Vec<&str> = rule
        .construct_nodes()
        .filter_map(|id| match &rule.node(id).test {
            wg::TypeTest::Type(t) => Some(t.as_str()),
            wg::TypeTest::Any => None,
        })
        .collect();
    let construct_labels: Vec<&str> = rule
        .edges
        .iter()
        .filter(|e| e.color == wg::Color::Construct)
        .filter_map(|e| match &e.label {
            wg::LabelTest::Label(l) => Some(l.as_str()),
            _ => None,
        })
        .collect();
    for q in rule.query_nodes() {
        match &rule.node(q).test {
            wg::TypeTest::Type(t) => {
                if construct_types.contains(&t.as_str()) {
                    return Err(unsupported("recursion", "rule consumes what it derives"));
                }
            }
            wg::TypeTest::Any => {
                if !construct_types.is_empty() {
                    return Err(unsupported(
                        "recursion",
                        "a wildcard query node observes every invented object",
                    ));
                }
            }
        }
    }
    for e in &rule.edges {
        if e.color != wg::Color::Query {
            continue;
        }
        let observes = |l: &str| construct_labels.contains(&l);
        let recursive = match &e.label {
            wg::LabelTest::Label(l) => observes(l),
            wg::LabelTest::Any => !construct_labels.is_empty(),
            wg::LabelTest::Regex(re) => re.labels.iter().any(|l| observes(l)),
        };
        if recursive {
            return Err(unsupported(
                "recursion",
                "a query edge observes an edge label the rule derives",
            ));
        }
    }

    // The query part must be a forest whose edge labels equal the child
    // node's type (the loader invariant), without regular paths.
    let qnodes: Vec<wg::RNodeId> = rule.query_nodes().collect();
    let mut incoming: Vec<usize> = vec![0; rule.nodes.len()];
    for e in &rule.edges {
        if e.color != wg::Color::Query {
            continue;
        }
        match &e.label {
            wg::LabelTest::Regex(_) => {
                return Err(unsupported(
                    "regular-path",
                    "XML-GL has no path expressions",
                ))
            }
            wg::LabelTest::Any => {
                return Err(unsupported("any-label", "containment labels are tag names"))
            }
            wg::LabelTest::Label(l) => {
                let target = rule.node(e.to);
                match &target.test {
                    wg::TypeTest::Type(t) if t == l => {}
                    _ => {
                        return Err(unsupported(
                            "labelled-edge",
                            format!("edge label '{l}' differs from target type"),
                        ))
                    }
                }
            }
        }
        incoming[e.to.index()] += 1;
        if !e.negated && incoming[e.to.index()] > 1 {
            return Err(unsupported(
                "dag-pattern",
                "a node with two containment parents is a join in XML-GL",
            ));
        }
    }

    // Build Q trees for the roots (query nodes without positive incoming
    // edges).
    let mut builder = xb::RuleBuilder::new();
    for &q in &qnodes {
        if incoming[q.index()] == 0 {
            builder = builder.extract(build_q(rule, q)?);
        }
    }

    // Construct: each construct node becomes an element with `all` children
    // per member edge; literal set_attrs become attributes.
    let mut any_construct = false;
    for c in rule.construct_nodes() {
        let node = rule.node(c);
        let wg::TypeTest::Type(tag) = &node.test else {
            return Err(unsupported(
                "untyped-construct",
                "construct nodes need types",
            ));
        };
        if !node.per.is_empty() {
            return Err(unsupported(
                "per-invention",
                "XML-GL construction has no per-binding invention",
            ));
        }
        let mut tree = xb::C::elem(tag.clone());
        for (attr, value) in &node.set_attrs {
            match value {
                wg::AttrValue::Literal(v) => {
                    tree = tree.child(xb::C::attr(attr.clone(), v.clone()));
                }
                wg::AttrValue::CopyFrom { .. } => {
                    return Err(unsupported(
                        "attr-copy",
                        "attribute copies have no XML-GL counterpart",
                    ))
                }
            }
        }
        for e in &rule.edges {
            if e.color == wg::Color::Construct && e.from == c {
                let target = rule.node(e.to);
                if target.color != wg::Color::Query {
                    return Err(unsupported(
                        "construct-chain",
                        "edges between invented objects",
                    ));
                }
                tree = tree.child(xb::C::all(target.var.clone()));
            }
        }
        builder = builder.construct(tree);
        any_construct = true;
    }
    if !any_construct {
        return Err(unsupported(
            "edge-only-construct",
            "XML-GL rules construct elements",
        ));
    }
    let rule = builder
        .build()
        .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
    Ok(xg::Program::single(rule))
}

fn build_q(rule: &wg::Rule, id: wg::RNodeId) -> Result<xb::Q> {
    let node = rule.node(id);
    let mut q = match &node.test {
        wg::TypeTest::Type(t) => xb::Q::elem(t.clone()),
        wg::TypeTest::Any => xb::Q::any(),
    };
    q = q.var(node.var.clone());
    for c in &node.constraints {
        // Loader inverse: `text` constraints talk about the element's own
        // text; everything else about an attribute-or-atomic-child, which
        // we render as an atomic child pattern (the loader folds both the
        // same way).
        if c.attr == "text" {
            q = q.child(xb::Q::text().pred(c.op, c.value.clone()));
        } else {
            q = q.child(
                xb::Q::elem(c.attr.clone()).child(xb::Q::text().pred(c.op, c.value.clone())),
            );
        }
    }
    for e in &rule.edges {
        if e.color != wg::Color::Query || e.from != id {
            continue;
        }
        let sub = build_q(rule, e.to)?;
        q = if e.negated {
            q.without(sub)
        } else {
            q.child(sub)
        };
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_ssdm::Document;
    use gql_wglog::instance::Instance;
    use gql_wglog::rule::RuleBuilder as WgBuilder;
    use gql_xmlgl::builder::{RuleBuilder, C, Q};

    fn guide_doc() -> Document {
        Document::parse_str(
            "<guide>\
               <restaurant><name>Roma</name><category>italian</category>\
                 <menu><price>20</price><dish>risotto</dish></menu></restaurant>\
               <restaurant><name>Milano</name><category>french</category></restaurant>\
               <restaurant><name>Next</name><category>italian</category>\
                 <menu><price>50</price><dish>caviar</dish></menu></restaurant>\
             </guide>",
        )
        .unwrap()
    }

    #[test]
    fn xmlgl_to_wglog_f1_equivalent() {
        // XML-GL: restaurants with a menu → result with all of them.
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("restaurant")
                    .var("r")
                    .child(Q::elem("menu").var("m")),
            )
            .construct(C::elem("rest-list").child(C::all("r")))
            .build()
            .unwrap();
        let doc = guide_doc();

        // XML-GL engine directly on the document.
        let direct = gql_xmlgl::eval::run_rule(&rule, &doc).unwrap();
        let direct_count = direct
            .child_elements(direct.root_element().unwrap())
            .count();

        // Translated program on the loaded instance.
        let program = xmlgl_to_wglog(&rule).unwrap();
        assert_eq!(program.goal.as_deref(), Some("rest-list"));
        let db = Instance::from_document(&doc);
        let out = gql_wglog::eval::run(&program, &db).unwrap();
        let lists = out.objects_of_type("rest-list");
        assert_eq!(lists.len(), 1);
        assert_eq!(out.out_edges(lists[0]).count(), direct_count);
        assert_eq!(direct_count, 2);
    }

    #[test]
    fn xmlgl_atomic_children_become_constraints() {
        let rule = RuleBuilder::new()
            .extract(Q::elem("restaurant").var("r").child(
                Q::elem("category").child(Q::text().pred(gql_xmlgl::ast::CmpOp::Eq, "italian")),
            ))
            .construct(C::elem("out").child(C::all("r")))
            .build()
            .unwrap();
        let program = xmlgl_to_wglog(&rule).unwrap();
        let wrule = &program.rules[0];
        let r = wrule.by_var("r").unwrap();
        assert_eq!(wrule.node(r).constraints.len(), 1);
        assert_eq!(wrule.node(r).constraints[0].attr, "category");
        // Runs and selects the italian restaurants.
        let db = Instance::from_document(&guide_doc());
        let out = gql_wglog::eval::run(&program, &db).unwrap();
        let l = out.objects_of_type("out")[0];
        assert_eq!(out.out_edges(l).count(), 2);
    }

    #[test]
    fn xmlgl_untranslatables() {
        let join = RuleBuilder::new()
            .extract(Q::elem("a").child(Q::text().var("x")))
            .extract(Q::elem("b").child(Q::text().var("y")))
            .join("x", "y")
            .construct(C::elem("out"))
            .build()
            .unwrap();
        assert_feature(&join, "value-join");

        let deep = RuleBuilder::new()
            .extract(Q::elem("a").var("a").deep_child(Q::elem("b").var("b")))
            .construct(C::elem("out").child(C::all("b")))
            .build()
            .unwrap();
        assert_feature(&deep, "deep-edge");

        let ordered = RuleBuilder::new()
            .extract(
                Q::elem("a")
                    .var("a")
                    .ordered()
                    .child(Q::elem("b").var("x"))
                    .child(Q::elem("c").var("y")),
            )
            .construct(C::elem("out").child(C::all("a")))
            .build()
            .unwrap();
        assert_feature(&ordered, "ordered-matching");

        let agg = RuleBuilder::new()
            .extract(Q::elem("a").var("a"))
            .construct(C::elem("out").child(C::agg(gql_xmlgl::ast::AggFunc::Count, "a")))
            .build()
            .unwrap();
        assert_feature(&agg, "xml-construction");
    }

    fn assert_feature(rule: &xg::Rule, feature: &str) {
        match xmlgl_to_wglog(rule) {
            Err(CoreError::Untranslatable { feature: f, .. }) => assert_eq!(f, feature),
            other => panic!("expected untranslatable {feature}, got {other:?}"),
        }
    }

    #[test]
    fn wglog_to_xmlgl_roundtrip_semantics() {
        // WG-Log F1 (labels equal target types, as the loader produces).
        let rule = WgBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .construct_node("l", "rest-list")
            .query_edge("r", "menu", "m")
            .unwrap()
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let program = wg::Program {
            rules: vec![rule],
            goal: Some("rest-list".into()),
        };
        let xp = wglog_to_xmlgl(&program).unwrap();
        let doc = guide_doc();
        let out = gql_xmlgl::eval::run(&xp, &doc).unwrap();
        let root = out.root_element().unwrap();
        assert_eq!(out.name(root), Some("rest-list"));
        assert_eq!(out.child_elements(root).count(), 2);
    }

    #[test]
    fn wglog_untranslatables() {
        // Recursion.
        let base = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "doc", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let step = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![base, step],
            goal: None,
        };
        match wglog_to_xmlgl(&p) {
            Err(CoreError::Untranslatable { feature, .. }) => assert_eq!(feature, "multi-rule"),
            other => panic!("unexpected {other:?}"),
        }

        // Regular paths.
        let path = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .path_edge(
                "a",
                wg::PathRe {
                    labels: vec!["link".into()],
                    rep: wg::PathRep::Plus,
                },
                "b",
            )
            .unwrap()
            .construct_node("l", "out")
            .construct_edge("l", "member", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![path],
            goal: None,
        };
        match wglog_to_xmlgl(&p) {
            Err(CoreError::Untranslatable { feature, .. }) => {
                assert_eq!(feature, "regular-path")
            }
            other => panic!("unexpected {other:?}"),
        }

        // Label ≠ type.
        let label = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "cites", "b")
            .unwrap()
            .construct_node("l", "out")
            .construct_edge("l", "member", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![label],
            goal: None,
        };
        match wglog_to_xmlgl(&p) {
            Err(CoreError::Untranslatable { feature, .. }) => {
                assert_eq!(feature, "labelled-edge")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_rule_self_recursion_is_caught() {
        // One rule that both derives and observes the `reach` label.
        let rule = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .construct_edge("b", "reach", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![rule],
            goal: None,
        };
        match wglog_to_xmlgl(&p) {
            Err(CoreError::Untranslatable { feature, .. }) => assert_eq!(feature, "recursion"),
            other => panic!("unexpected {other:?}"),
        }
        // A wildcard query node with any invention is recursive too.
        let rule = WgBuilder::new()
            .query_node("x", "*")
            .construct_node("l", "list")
            .construct_edge("l", "member", "x")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![rule],
            goal: None,
        };
        match wglog_to_xmlgl(&p) {
            Err(CoreError::Untranslatable { feature, .. }) => assert_eq!(feature, "recursion"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wglog_constraints_become_child_patterns() {
        let rule = WgBuilder::new()
            .query_node("r", "restaurant")
            .constraint("category", wg::CmpOp::Eq, "italian")
            .construct_node("l", "hits")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![rule],
            goal: Some("hits".into()),
        };
        let xp = wglog_to_xmlgl(&p).unwrap();
        let out = gql_xmlgl::eval::run(&xp, &guide_doc()).unwrap();
        let root = out.root_element().unwrap();
        assert_eq!(out.child_elements(root).count(), 2); // two italian
    }
}
