//! One entry point over the three engines.
//!
//! The benchmark harness compares equivalent queries written in XML-GL,
//! WG-Log and XPath against the same document. [`Engine`] normalises the
//! three run paths — including WG-Log's document→instance load, which is
//! counted separately so the comparison can show it both ways (amortised
//! loads for a resident database, full loads for one-shot queries).

use std::time::{Duration, Instant};

use gql_ssdm::{DocIndex, Document};
use gql_wglog::instance::Instance;

use crate::{CoreError, Result};

/// A query in any of the three formalisms.
#[derive(Debug, Clone)]
pub enum QueryKind {
    XmlGl(gql_xmlgl::ast::Program),
    WgLog(gql_wglog::rule::Program),
    XPath(String),
}

/// Result of one engine run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The result document produced by the engine.
    pub output: Document,
    /// A size proxy comparable across engines: result elements for XML-GL /
    /// XPath, goal objects for WG-Log.
    pub result_count: usize,
    /// Pure evaluation time.
    pub eval_time: Duration,
    /// Time spent preparing the data representation (WG-Log's instance
    /// load; zero for the tree-native engines).
    pub load_time: Duration,
}

/// A [`DocIndex`] pinned to one resident document, fingerprinted by the
/// document's address and node count. The address is stored as a plain
/// `usize` and never dereferenced — it only has to *disagree* when a
/// different (or since-grown) document is queried, making the cache fall
/// back to a cold build rather than serve stale postings.
#[derive(Debug)]
struct ResidentIndex {
    doc_addr: usize,
    node_count: usize,
    index: DocIndex,
}

/// The unified runner.
#[derive(Debug, Default)]
pub struct Engine {
    /// A pre-loaded WG-Log instance, reused across runs when set.
    resident_instance: Option<Instance>,
    /// A pre-built document index for the tree-native engines (XML-GL and
    /// XPath), reused across runs when the queried document matches.
    resident_index: Option<ResidentIndex>,
}

impl Engine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load a WG-Log instance and build the shared [`DocIndex`] so
    /// subsequent runs against the same document skip both the load phase
    /// and the per-query index build (the "resident database"
    /// configuration).
    pub fn preload(&mut self, doc: &Document) {
        self.resident_instance = Some(Instance::from_document(doc));
        self.resident_index = Some(ResidentIndex {
            doc_addr: std::ptr::from_ref(doc) as usize,
            node_count: doc.node_count(),
            index: DocIndex::build(doc),
        });
    }

    /// The resident index, if it was built for exactly this document in its
    /// current shape.
    fn resident_index_for(&self, doc: &Document) -> Option<&DocIndex> {
        self.resident_index
            .as_ref()
            .filter(|r| {
                r.doc_addr == std::ptr::from_ref(doc) as usize && r.node_count == doc.node_count()
            })
            .map(|r| &r.index)
    }

    /// Static-analysis gate: Error-level diagnostics (well-formedness,
    /// safety, stratifiability) refuse the program before any evaluation.
    fn reject_errors(query: &QueryKind) -> Result<()> {
        let errors: Vec<gql_ssdm::Diagnostic> = match query {
            QueryKind::XmlGl(program) => gql_xmlgl::check::diagnostics(program)
                .into_iter()
                .filter(gql_ssdm::Diagnostic::is_error)
                .collect(),
            QueryKind::WgLog(program) => {
                let mut ds: Vec<_> = program
                    .diagnostics()
                    .into_iter()
                    .filter(gql_ssdm::Diagnostic::is_error)
                    .collect();
                // Stratification only means anything for well-formed rules.
                if ds.is_empty() {
                    ds.extend(gql_wglog::eval::stratify::diagnose(program));
                }
                ds
            }
            QueryKind::XPath(_) => Vec::new(),
        };
        if errors.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Rejected {
                diagnostics: errors,
            })
        }
    }

    /// Run a query against a document.
    pub fn run(&self, query: &QueryKind, doc: &Document) -> Result<RunOutcome> {
        Self::reject_errors(query)?;
        match query {
            QueryKind::XmlGl(program) => {
                let start = Instant::now();
                let output = match self.resident_index_for(doc) {
                    Some(idx) => gql_xmlgl::eval::run_with_index(program, doc, idx),
                    None => gql_xmlgl::eval::run(program, doc),
                }
                .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                let eval_time = start.elapsed();
                let result_count = output.children(output.root()).len();
                Ok(RunOutcome {
                    output,
                    result_count,
                    eval_time,
                    load_time: Duration::ZERO,
                })
            }
            QueryKind::WgLog(program) => {
                // Borrow the resident instance; only cold runs pay a load.
                #[allow(unused_assignments)]
                // `None` placeholder keeps the borrow alive past the match
                let mut loaded = None;
                let (instance, load_time): (&Instance, Duration) = match &self.resident_instance {
                    Some(db) => (db, Duration::ZERO),
                    None => {
                        let start = Instant::now();
                        loaded = Some(Instance::from_document(doc));
                        (loaded.as_ref().expect("just loaded"), start.elapsed())
                    }
                };
                let start = Instant::now();
                let result = gql_wglog::eval::run(program, instance)
                    .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                let eval_time = start.elapsed();
                let goal = program.goal.clone().unwrap_or_else(|| "answer".to_string());
                let goal_objects = result.objects_of_type(&goal);
                let output = result.to_document("answer", &goal, 2);
                Ok(RunOutcome {
                    output,
                    result_count: goal_objects.len(),
                    eval_time,
                    load_time,
                })
            }
            QueryKind::XPath(expr) => {
                let parsed =
                    gql_xpath::parse(expr).map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                let start = Instant::now();
                let value = match self.resident_index_for(doc) {
                    Some(idx) => gql_xpath::evaluate_with_index(doc, &parsed, idx),
                    None => gql_xpath::evaluate(doc, &parsed),
                }
                .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                let eval_time = start.elapsed();
                let mut output = Document::new();
                let root = output.add_element(output.root(), "answer");
                let count;
                match value {
                    gql_xpath::XValue::Nodes(items) => {
                        let nodes: Vec<_> = items
                            .into_iter()
                            .filter_map(gql_xpath::Item::as_node)
                            .collect();
                        count = nodes.len();
                        for n in nodes {
                            let copied = output.import_subtree(doc, n);
                            output
                                .append_child(root, copied)
                                .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                        }
                    }
                    // Scalar results (count(), sum(), booleans) become the
                    // answer's text, and count 1 result value.
                    other => {
                        count = 1;
                        output.add_text(root, &other.string(doc));
                    }
                }
                Ok(RunOutcome {
                    output,
                    result_count: count,
                    eval_time,
                    load_time: Duration::ZERO,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_xmlgl::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        Document::parse_str(
            "<guide>\
               <restaurant><name>A</name><menu><price>20</price></menu></restaurant>\
               <restaurant><name>B</name></restaurant>\
               <restaurant><name>C</name><menu><price>40</price></menu></restaurant>\
             </guide>",
        )
        .unwrap()
    }

    /// The "restaurants offering menus" query in all three formalisms.
    fn equivalent_queries() -> Vec<QueryKind> {
        let xmlgl = RuleBuilder::new()
            .extract(
                Q::elem("restaurant")
                    .var("r")
                    .child(Q::elem("menu").var("m")),
            )
            .construct(C::elem("answer").child(C::all("r")))
            .build_program()
            .unwrap();
        let wglog = gql_wglog::dsl::parse(
            "rule { query { $r: restaurant  $m: menu  $r -menu-> $m } \
                    construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        )
        .unwrap();
        vec![
            QueryKind::XmlGl(xmlgl),
            QueryKind::WgLog(wglog),
            QueryKind::XPath("//restaurant[menu]".to_string()),
        ]
    }

    #[test]
    fn all_engines_agree_on_the_selection() {
        let d = doc();
        let engine = Engine::new();
        let expected = [1usize, 1, 2]; // XML-GL: 1 answer element; WG-Log: 1 list; XPath: 2 hits
        for (q, expect) in equivalent_queries().iter().zip(expected) {
            let outcome = engine.run(q, &d).unwrap();
            assert_eq!(outcome.result_count, expect, "{q:?}");
        }
        // The actual selected restaurants: extract from the outputs.
        let outcome = engine.run(&equivalent_queries()[0], &d).unwrap();
        let root = outcome.output.root_element().unwrap();
        assert_eq!(outcome.output.child_elements(root).count(), 2);
    }

    #[test]
    fn resident_instance_skips_load() {
        let d = doc();
        let mut engine = Engine::new();
        let q = equivalent_queries().remove(1);
        let cold = engine.run(&q, &d).unwrap();
        assert!(cold.load_time > Duration::ZERO);
        engine.preload(&d);
        let warm = engine.run(&q, &d).unwrap();
        assert_eq!(warm.load_time, Duration::ZERO);
        assert_eq!(warm.result_count, cold.result_count);
    }

    #[test]
    fn resident_index_matches_cold_runs_and_detects_staleness() {
        let d = doc();
        let mut engine = Engine::new();
        let queries = equivalent_queries();
        let cold: Vec<String> = queries
            .iter()
            .map(|q| engine.run(q, &d).unwrap().output.to_xml_string())
            .collect();
        engine.preload(&d);
        assert!(engine.resident_index_for(&d).is_some());
        for (q, expect) in queries.iter().zip(&cold) {
            let warm = engine.run(q, &d).unwrap();
            assert_eq!(&warm.output.to_xml_string(), expect, "{q:?}");
        }
        // A different document (same lifetime, different address/shape) must
        // not be served from the resident index.
        let other = Document::parse_str("<guide><restaurant><menu/></restaurant></guide>").unwrap();
        assert!(engine.resident_index_for(&other).is_none());
        let outcome = engine
            .run(&QueryKind::XPath("//restaurant[menu]".to_string()), &other)
            .unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn xpath_result_document() {
        let d = doc();
        let engine = Engine::new();
        let outcome = engine
            .run(&QueryKind::XPath("//menu/price".to_string()), &d)
            .unwrap();
        assert_eq!(outcome.result_count, 2);
        let xml = outcome.output.to_xml_string();
        assert!(xml.contains("<price>20</price>"));
        assert!(xml.contains("<price>40</price>"));
    }

    #[test]
    fn scalar_xpath_results_are_answerable() {
        let d = doc();
        let engine = Engine::new();
        let outcome = engine
            .run(&QueryKind::XPath("count(//menu)".to_string()), &d)
            .unwrap();
        assert_eq!(outcome.result_count, 1);
        assert_eq!(outcome.output.to_xml_string(), "<answer>2</answer>");
    }

    #[test]
    fn unsafe_programs_are_rejected_before_evaluation() {
        use gql_ssdm::{Code, Severity};
        // A variable bound inside a negated subtree can never bind: the
        // program is unsafe and must be refused with a structured Error.
        let program = gql_xmlgl::dsl::parse_unchecked(
            "rule {\n  extract {\n    restaurant as $r {\n      not menu as $m\n    }\n  }\n  construct { answer { all $m } }\n}",
        )
        .unwrap();
        let err = Engine::new()
            .run(&QueryKind::XmlGl(program), &doc())
            .unwrap_err();
        let CoreError::Rejected { diagnostics } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(diagnostics.iter().all(|d| d.severity == Severity::Error));
        assert!(diagnostics.iter().any(|d| d.code == Code::NegationScope));
        assert!(diagnostics.iter().any(|d| d.code == Code::UnsafeConstruct));
        assert!(diagnostics[0].rule.as_deref() == Some("rule 1 (restaurant)"));
        assert!(!diagnostics[0].span.is_none());

        // And the WG-Log path refuses non-stratifiable programs.
        let program = gql_wglog::dsl::parse(
            "rule { query { $a: doc  $b: doc  $a -link-> $b  not $a -q-> $b } construct { $a -p-> $b } }\n\
             rule { query { $a: doc  $b: doc  $a -p-> $b } construct { $a -q-> $b } }",
        )
        .unwrap();
        let err = Engine::new()
            .run(&QueryKind::WgLog(program), &doc())
            .unwrap_err();
        let CoreError::Rejected { diagnostics } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(diagnostics.iter().any(|d| d.code == Code::NotStratifiable));
    }

    #[test]
    fn engine_errors_are_reported() {
        let d = doc();
        let engine = Engine::new();
        let err = engine
            .run(&QueryKind::XPath("///".to_string()), &d)
            .unwrap_err();
        assert!(matches!(err, CoreError::Engine { .. }));
    }
}
