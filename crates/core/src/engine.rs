//! One entry point over the three engines.
//!
//! The benchmark harness compares equivalent queries written in XML-GL,
//! WG-Log and XPath against the same document. [`Engine`] normalises the
//! three run paths — including WG-Log's document→instance load, which is
//! counted separately so the comparison can show it both ways (amortised
//! loads for a resident database, full loads for one-shot queries).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gql_guard::{fault, Budget, Guard};
use gql_infer::Inference;
use gql_plan::{CacheStats, CachedPlan, PlanCache, PlanKey, StatsCell};
use gql_ssdm::{shallow_fingerprint, DocIndex, Document, Summary};
use gql_trace::{ExecutionProfile, Trace};
use gql_wglog::instance::Instance;
use gql_xmlgl::eval::MatchPlans;

use crate::{CoreError, Result};

/// A query in any of the three formalisms.
#[derive(Debug, Clone)]
pub enum QueryKind {
    XmlGl(gql_xmlgl::ast::Program),
    WgLog(gql_wglog::rule::Program),
    XPath(String),
}

/// Result of one engine run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The result document produced by the engine.
    pub output: Document,
    /// A size proxy comparable across engines: result elements for XML-GL /
    /// XPath, goal objects for WG-Log.
    pub result_count: usize,
    /// Pure evaluation time.
    pub eval_time: Duration,
    /// Time spent preparing the data representation (WG-Log's instance
    /// load; zero for the tree-native engines).
    pub load_time: Duration,
    /// The execution profile, when the run was profiled
    /// ([`Engine::run_profiled`]); `None` for plain [`Engine::run`]s.
    pub profile: Option<ExecutionProfile>,
    /// Static inference of the query against the document's structural
    /// summary: GQL014–GQL016 warnings (statically-empty queries, dead
    /// rules, dead XPath steps) and cardinality upper bounds. Warnings
    /// never refuse a run — the result is still computed and the bounds
    /// also drive the XML-GL join planner.
    pub inference: Inference,
    /// The logical plan the run executed (multi-line EXPLAIN rendering of
    /// the `gql_plan` lowering), for provenance surfaces.
    pub plan: String,
}

/// A [`DocIndex`] pinned to one resident document, fingerprinted by the
/// document's address, node count AND a shallow content fingerprint. The
/// address is stored as a plain `usize` and never dereferenced — but an
/// allocator can hand a *different* document the recycled address of a
/// dropped one, and node counts collide easily, so address+count alone can
/// serve stale postings. [`shallow_fingerprint`] (node count, root tag,
/// root attributes, root child sequence) is O(root fanout) per probe and
/// catches recycled-address collisions unless the impostor document also
/// agrees on its entire root level — combined with the node-count term,
/// disagreement anywhere in the document changes at least one of the three
/// checks for every realistic mutation; the postings themselves are
/// verified against node kinds at use, so this is a cache-effectiveness
/// bound, not a correctness cliff.
#[derive(Debug)]
struct ResidentIndex {
    doc_addr: usize,
    node_count: usize,
    fingerprint: u64,
    index: DocIndex,
    /// The structural summary (DataGuide with per-path counts) inferred
    /// from the same document, cached for the static-analysis phase.
    summary: Summary,
}

/// The unified runner.
#[derive(Debug)]
pub struct Engine {
    /// A pre-loaded WG-Log instance, reused across runs when set.
    resident_instance: Option<Instance>,
    /// A pre-built document index for the tree-native engines (XML-GL and
    /// XPath), reused across runs when the queried document matches.
    resident_index: Option<ResidentIndex>,
    /// Cached planning outcomes keyed by (canonical query, document
    /// fingerprint, budget class): on a hit the analyze/plan phases are
    /// served from the cache and the run goes parse → execution.
    plan_cache: Mutex<PlanCache>,
    /// Snapshot-consistent view of the plan cache's counters, cloned from
    /// the cache at construction so [`Engine::plan_cache_stats`] never
    /// contends with planners holding the cache mutex.
    plan_stats: Arc<StatsCell>,
}

impl Default for Engine {
    fn default() -> Self {
        let plan_cache = PlanCache::default();
        let plan_stats = plan_cache.stats_cell();
        Engine {
            resident_instance: None,
            resident_index: None,
            plan_cache: Mutex::new(plan_cache),
            plan_stats,
        }
    }
}

impl Engine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load a WG-Log instance and build the shared [`DocIndex`] so
    /// subsequent runs against the same document skip both the load phase
    /// and the per-query index build (the "resident database"
    /// configuration).
    pub fn preload(&mut self, doc: &Document) {
        self.resident_instance = Some(Instance::from_document(doc));
        let index = DocIndex::build(doc);
        let summary = Summary::from_index(doc, &index);
        self.resident_index = Some(ResidentIndex {
            doc_addr: std::ptr::from_ref(doc) as usize,
            node_count: doc.node_count(),
            fingerprint: shallow_fingerprint(doc),
            index,
            summary,
        });
    }

    /// The resident cache entry, if it was built for exactly this document
    /// in its current shape — address, node count and shallow content
    /// fingerprint must all agree (see [`ResidentIndex`]).
    fn resident_for(&self, doc: &Document) -> Option<&ResidentIndex> {
        self.resident_index.as_ref().filter(|r| {
            r.doc_addr == std::ptr::from_ref(doc) as usize
                && r.node_count == doc.node_count()
                && r.fingerprint == shallow_fingerprint(doc)
        })
    }

    /// The resident index, under the staleness checks of [`resident_for`].
    ///
    /// [`resident_for`]: Engine::resident_for
    fn resident_index_for(&self, doc: &Document) -> Option<&DocIndex> {
        self.resident_for(doc).map(|r| &r.index)
    }

    /// The resident structural summary, under the same staleness checks.
    fn resident_summary_for(&self, doc: &Document) -> Option<&Summary> {
        self.resident_for(doc).map(|r| &r.summary)
    }

    /// Cache-probe outcome for the index phase, distinguishing "no resident
    /// index at all" from "resident index built for a different document".
    fn index_cache_state(&self, doc: &Document) -> &'static str {
        match &self.resident_index {
            None => "cold",
            Some(_) if self.resident_index_for(doc).is_some() => "hit",
            Some(_) => "miss",
        }
    }

    /// Static-analysis gate: Error-level diagnostics (well-formedness,
    /// safety, stratifiability) refuse the program before any evaluation.
    fn reject_errors(query: &QueryKind) -> Result<()> {
        let errors: Vec<gql_ssdm::Diagnostic> = match query {
            QueryKind::XmlGl(program) => gql_xmlgl::check::diagnostics(program)
                .into_iter()
                .filter(gql_ssdm::Diagnostic::is_error)
                .collect(),
            QueryKind::WgLog(program) => {
                let mut ds: Vec<_> = program
                    .diagnostics()
                    .into_iter()
                    .filter(gql_ssdm::Diagnostic::is_error)
                    .collect();
                // Stratification only means anything for well-formed rules.
                if ds.is_empty() {
                    ds.extend(gql_wglog::eval::stratify::diagnose(program));
                }
                ds
            }
            QueryKind::XPath(_) => Vec::new(),
        };
        if errors.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Rejected {
                diagnostics: errors,
            })
        }
    }

    /// The plan cache, immune to lock poisoning: a panicking run must not
    /// take the cache down with it, and every hit is re-validated against
    /// the query shape before its orders are trusted.
    fn lock_plan_cache(&self) -> MutexGuard<'_, PlanCache> {
        self.plan_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Cumulative plan-cache counters (hits, misses, evictions, replans,
    /// lookups) since engine construction. Reads a snapshot-consistent
    /// seqlock cell rather than the cache mutex, so concurrent callers on
    /// a shared engine never block planners or observe torn totals
    /// (`CacheStats::is_consistent` holds for every returned value).
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_stats.snapshot()
    }

    /// Number of plans currently resident in the cache.
    pub fn plan_cache_len(&self) -> usize {
        self.lock_plan_cache().len()
    }

    /// Drop every cached plan (the counters are preserved).
    pub fn clear_plan_cache(&self) {
        self.lock_plan_cache().clear()
    }

    /// Canonical query text for plan-cache keying: the printed DSL for the
    /// graphical languages (structurally identical programs share an entry
    /// regardless of source formatting), the raw expression for XPath. The
    /// language prefix keeps the three namespaces disjoint.
    fn canonical_query(query: &QueryKind) -> String {
        match query {
            QueryKind::XmlGl(program) => format!("xmlgl:{}", gql_xmlgl::dsl::print(program)),
            QueryKind::WgLog(program) => format!("wglog:{}", gql_wglog::dsl::print(program)),
            QueryKind::XPath(expr) => format!("xpath:{expr}"),
        }
    }

    /// Per-rule extract-root counts — the shape a cached XML-GL plan is
    /// validated against before its join orders are trusted.
    fn plan_root_counts(query: &QueryKind) -> Vec<usize> {
        match query {
            QueryKind::XmlGl(program) => program
                .rules
                .iter()
                .map(|r| r.extract.roots.len())
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Build the cacheable planning outcome for a query: cost-based join
    /// orders (XML-GL; the other engines execute their declared shape),
    /// plus the lowered logical-algebra tree for provenance surfaces.
    fn build_plan(
        query: &QueryKind,
        inference: Inference,
        summary_paths: u64,
        root_counts: Vec<usize>,
    ) -> CachedPlan {
        let (orders, lowered) = match query {
            QueryKind::XmlGl(program) => {
                let orders: Vec<Option<Vec<usize>>> = program
                    .rules
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        inference
                            .root_bounds
                            .get(i)
                            .and_then(|b| gql_plan::plan_rule_order(r, b))
                    })
                    .collect();
                let lowered = gql_plan::lower_xmlgl(program, &inference, &orders);
                (orders, lowered)
            }
            QueryKind::WgLog(program) => (Vec::new(), gql_plan::lower_wglog(program, &inference)),
            QueryKind::XPath(expr) => {
                // A parse failure is reported by the parse span with its
                // original error; the plan just records the failure.
                let lowered = match gql_xpath::parse(expr) {
                    Ok(parsed) => gql_plan::lower_xpath(&parsed, &inference),
                    Err(_) => gql_plan::LogicalPlan::Construct {
                        shape: "unparsed".into(),
                        inputs: Vec::new(),
                        span: gql_ssdm::Span::none(),
                    },
                };
                (Vec::new(), lowered)
            }
        };
        CachedPlan {
            inference,
            orders,
            plan_text: lowered.render(),
            plan_compact: lowered.render_compact(),
            root_counts,
            summary_paths,
        }
    }

    /// Resolve the [`DocIndex`] for a tree-native run: the resident index on
    /// a cache hit, otherwise a fresh build parked in `storage`. Returns
    /// `None` — the scan-evaluation degradation target — when the
    /// fault-injection seam fails the build outright, or when it corrupts
    /// the fresh build's postings and the integrity check rejects them. The
    /// integrity verification is O(index size), so it is only armed while a
    /// fault plan is active; a `degraded: scan` trace note records either
    /// fallback.
    fn resolve_index<'a>(
        &'a self,
        doc: &Document,
        trace: &Trace,
        storage: &'a mut Option<DocIndex>,
    ) -> Option<&'a DocIndex> {
        if fault::active() && fault::fail_index_build() {
            trace.note("degraded", "scan");
            return None;
        }
        let idx: &'a DocIndex = match self.resident_index_for(doc) {
            Some(idx) => idx,
            None => {
                let mut fresh = DocIndex::build(doc);
                if fault::active() && fault::corrupt_postings() {
                    fresh.corrupt_for_test();
                }
                storage.insert(fresh)
            }
        };
        if fault::active() && !idx.is_intact() {
            trace.note("degraded", "scan");
            return None;
        }
        Some(idx)
    }

    /// Run a query against a document.
    pub fn run(&self, query: &QueryKind, doc: &Document) -> Result<RunOutcome> {
        self.run_with_trace(query, doc, &Trace::disabled())
    }

    /// Run a query with profiling: identical output to [`Engine::run`]
    /// (instrumentation only aggregates counters — it never changes a code
    /// path), with `RunOutcome::profile` carrying the span tree.
    pub fn run_profiled(&self, query: &QueryKind, doc: &Document) -> Result<RunOutcome> {
        let trace = Trace::profiling();
        let mut outcome = self.run_with_trace(query, doc, &trace)?;
        outcome.profile = trace.finish();
        Ok(outcome)
    }

    /// Run a query reporting into a caller-supplied [`Trace`]. The span
    /// taxonomy (documented in DESIGN.md): a `run` root with `engine` and
    /// `cache` notes, `analyze` / `plan` / `load` / `index` / `eval` /
    /// `construct` phase children, and engine-specific spans below `eval`.
    /// The `plan` span notes `plan_cache` (`hit` / `miss` / `replan`), the
    /// compact logical plan, and any reordered XML-GL join orders.
    pub fn run_with_trace(
        &self,
        query: &QueryKind,
        doc: &Document,
        trace: &Trace,
    ) -> Result<RunOutcome> {
        self.run_governed(query, doc, trace, &Guard::unlimited())
    }

    /// Run a query under a resource [`Budget`]: identical output to
    /// [`Engine::run`] while every limit holds; the first limit that trips
    /// aborts the run with [`CoreError::Budget`] carrying a partial-progress
    /// report (phase reached, rounds/matches/nodes so far) — never a
    /// truncated answer.
    pub fn run_bounded(
        &self,
        query: &QueryKind,
        doc: &Document,
        budget: &Budget,
    ) -> Result<RunOutcome> {
        self.run_governed(query, doc, &Trace::disabled(), &Guard::new(budget.clone()))
    }

    /// The fully governed entry point: a caller-supplied [`Trace`] *and*
    /// [`Guard`] (pass [`Guard::with_cancel`] to attach a cooperative
    /// [`CancelToken`](gql_guard::CancelToken)). With `Guard::unlimited()`
    /// this is exactly [`Engine::run_with_trace`].
    pub fn run_governed(
        &self,
        query: &QueryKind,
        doc: &Document,
        trace: &Trace,
        guard: &Guard,
    ) -> Result<RunOutcome> {
        let _run = trace.span("run");
        if trace.is_enabled() {
            trace.note(
                "engine",
                match query {
                    QueryKind::XmlGl(_) => "xmlgl",
                    QueryKind::WgLog(_) => "wglog",
                    QueryKind::XPath(_) => "xpath",
                },
            );
            trace.count("doc_nodes", doc.node_count() as u64);
        }
        // Probe the plan cache. The corruption fault seam scrambles the
        // entry *before* the probe, so a poisoned hit exercises the real
        // validate → replan path.
        let key = PlanKey::new(
            &Self::canonical_query(query),
            shallow_fingerprint(doc),
            guard.budget_class(),
        );
        let root_counts = Self::plan_root_counts(query);
        let mut cached = {
            let mut cache = self.lock_plan_cache();
            if fault::active() && fault::corrupt_plan_cache() {
                cache.corrupt_entry(&key);
            }
            cache.get(&key)
        };
        let mut cache_state = if cached.is_some() { "hit" } else { "miss" };
        if cached
            .as_ref()
            .is_some_and(|plan| !plan.is_valid_for(&root_counts))
        {
            // A hit that fails validation (a corrupted entry, or a key
            // collision against a structurally different query) is dropped
            // and replanned from scratch.
            cache_state = "replan";
            let mut cache = self.lock_plan_cache();
            cache.note_replan();
            cache.remove(&key);
            cached = None;
        }
        let analyzed: Option<(Inference, u64)> = {
            let _s = trace.span("analyze");
            guard.set_phase("analyze");
            // The rejection gate runs warm or cold: it is pure on the
            // query, and an invalid program must behave identically either
            // way (it is also why a rejected program is never cached — the
            // cold path errors out before planning).
            Self::reject_errors(query)?;
            let out = match &cached {
                // Warm path: analysis is served from the cache; the span
                // still reports the counters the cold run recorded so
                // profiled shapes match.
                Some(plan) => {
                    if trace.is_enabled() {
                        trace.count("summary_paths", plan.summary_paths);
                        trace.count("infer_diags", plan.inference.report.len() as u64);
                        if plan.inference.is_statically_empty() {
                            trace.note("statically_empty", "true");
                        }
                    }
                    None
                }
                None => {
                    // Static inference against the structural summary:
                    // resident when preloaded for this document, otherwise
                    // inferred here (one preorder pass). Its diagnostics
                    // are Warnings — surfaced on the outcome, never a
                    // refusal — and its cardinality bounds feed the
                    // cost-based join planner below.
                    let mut summary_storage = None;
                    let summary: &Summary = match self.resident_summary_for(doc) {
                        Some(s) => s,
                        None => summary_storage.insert(Summary::build(doc)),
                    };
                    let inference = match query {
                        QueryKind::XmlGl(program) => gql_infer::infer_xmlgl(program, summary),
                        QueryKind::WgLog(program) => gql_infer::infer_wglog(program, summary),
                        // A parse failure here is reported by the parse
                        // span below with its original error; inference
                        // just stays empty.
                        QueryKind::XPath(expr) => gql_xpath::parse(expr)
                            .map(|parsed| gql_infer::infer_xpath(&parsed, summary))
                            .unwrap_or_default(),
                    };
                    let summary_paths = summary.stats().paths as u64;
                    if trace.is_enabled() {
                        trace.count("summary_paths", summary_paths);
                        trace.count("infer_diags", inference.report.len() as u64);
                        if inference.is_statically_empty() {
                            trace.note("statically_empty", "true");
                        }
                    }
                    Some((inference, summary_paths))
                }
            };
            guard.checkpoint().map_err(CoreError::Budget)?;
            out
        };
        let planned: CachedPlan = {
            let _s = trace.span("plan");
            guard.set_phase("plan");
            let plan = match (cached, analyzed) {
                (Some(plan), None) => plan,
                (None, Some((inference, summary_paths))) => {
                    let plan = Self::build_plan(query, inference, summary_paths, root_counts);
                    self.lock_plan_cache().insert(key, plan.clone());
                    plan
                }
                _ => unreachable!("cache probe and analysis must agree"),
            };
            if trace.is_enabled() {
                trace.note("plan_cache", cache_state);
                trace.note("plan", &plan.plan_compact);
                for (i, order) in plan.orders.iter().enumerate() {
                    if let Some(order) = order {
                        let digits: Vec<String> = order.iter().map(usize::to_string).collect();
                        trace.note(&format!("join_order[{i}]"), &digits.join(","));
                    }
                }
            }
            guard.checkpoint().map_err(CoreError::Budget)?;
            plan
        };
        let CachedPlan {
            inference,
            orders,
            plan_text,
            ..
        } = planned;
        match query {
            QueryKind::XmlGl(program) => {
                let start = Instant::now();
                // Resolve the index up front (the cold path built it inside
                // `eval::run` before tracing existed — building it here is
                // semantically identical and gives the build its own span).
                let mut built = None;
                let span = trace.span("index");
                guard.set_phase("index");
                trace.note("cache", self.index_cache_state(doc));
                let idx = self.resolve_index(doc, trace, &mut built);
                if let (true, Some(idx)) = (trace.is_enabled(), idx) {
                    record_index_stats(trace, idx);
                }
                drop(span);
                guard.checkpoint().map_err(CoreError::Budget)?;
                guard.set_phase("eval");
                // Cost-based join plans: per rule, the root combine order
                // chosen by `gql_plan` from the inferred cardinality bounds
                // (and reused across runs through the plan cache). Plans
                // never change results (see `match_rule_planned`), only
                // intermediate join sizes.
                let plans = MatchPlans { per_rule: orders };
                let output = {
                    let _s = trace.span("eval");
                    if trace.is_enabled() && !plans.is_empty() {
                        let planned = plans.per_rule.iter().filter(|p| p.is_some()).count();
                        trace.count("planned_rules", planned as u64);
                    }
                    gql_xmlgl::eval::run_planned(program, doc, idx, trace, guard, &plans)
                        .map_err(engine_err_xmlgl)?
                };
                let eval_time = start.elapsed();
                let result_count = output.children(output.root()).len();
                trace.count("results", result_count as u64);
                Ok(RunOutcome {
                    output,
                    result_count,
                    eval_time,
                    load_time: Duration::ZERO,
                    profile: None,
                    inference,
                    plan: plan_text,
                })
            }
            QueryKind::WgLog(program) => {
                // Borrow the resident instance; only cold runs pay a load.
                #[allow(unused_assignments)]
                // `None` placeholder keeps the borrow alive past the match
                let mut loaded = None;
                let span = trace.span("load");
                guard.set_phase("load");
                let (instance, load_time): (&Instance, Duration) = match &self.resident_instance {
                    Some(db) => {
                        trace.note("cache", "hit");
                        (db, Duration::ZERO)
                    }
                    None => {
                        trace.note("cache", "cold");
                        let start = Instant::now();
                        loaded = Some(Instance::from_document(doc));
                        (loaded.as_ref().expect("just loaded"), start.elapsed())
                    }
                };
                if trace.is_enabled() {
                    trace.count("objects", instance.object_count() as u64);
                    trace.count("edges", instance.edge_count() as u64);
                }
                drop(span);
                guard.checkpoint().map_err(CoreError::Budget)?;
                guard.set_phase("eval");
                let start = Instant::now();
                let result = {
                    let _s = trace.span("eval");
                    gql_wglog::eval::run_guarded(
                        program,
                        instance,
                        gql_wglog::eval::FixpointMode::SemiNaive,
                        trace,
                        guard,
                    )
                    .map(|(db, _)| db)
                    .map_err(engine_err_wglog)?
                };
                let eval_time = start.elapsed();
                let span = trace.span("construct");
                guard.set_phase("construct");
                let goal = program.goal.clone().unwrap_or_else(|| "answer".to_string());
                let goal_objects = result.objects_of_type(&goal);
                let output = result.to_document("answer", &goal, 2);
                if trace.is_enabled() {
                    trace.count("goal_objects", goal_objects.len() as u64);
                    trace.count("nodes_built", output.node_count() as u64);
                }
                drop(span);
                guard.checkpoint().map_err(CoreError::Budget)?;
                trace.count("results", goal_objects.len() as u64);
                Ok(RunOutcome {
                    output,
                    result_count: goal_objects.len(),
                    eval_time,
                    load_time,
                    profile: None,
                    inference,
                    plan: plan_text,
                })
            }
            QueryKind::XPath(expr) => {
                let parsed = {
                    let _s = trace.span("parse");
                    guard.set_phase("parse");
                    gql_xpath::parse(expr).map_err(|e| CoreError::Engine { msg: e.to_string() })?
                };
                let start = Instant::now();
                let span = trace.span("index");
                guard.set_phase("index");
                trace.note("cache", self.index_cache_state(doc));
                // The XPath evaluator builds its own index lazily on the cold
                // path, so the fault seam must force scan *mode* (which also
                // suppresses the lazy build), not just withhold the resident
                // index.
                let scan_only =
                    fault::active() && (fault::fail_index_build() || fault::corrupt_postings());
                let idx = if scan_only {
                    trace.note("degraded", "scan");
                    None
                } else {
                    self.resident_index_for(doc)
                };
                if let (true, Some(idx)) = (trace.is_enabled(), idx) {
                    record_index_stats(trace, idx);
                }
                drop(span);
                guard.checkpoint().map_err(CoreError::Budget)?;
                guard.set_phase("eval");
                let value = {
                    let _s = trace.span("eval");
                    if scan_only {
                        gql_xpath::evaluate_scan_guarded(doc, &parsed, trace, guard)
                    } else {
                        gql_xpath::evaluate_guarded(doc, &parsed, idx, trace, guard)
                    }
                    .map_err(engine_err_xpath)?
                };
                let eval_time = start.elapsed();
                let span = trace.span("construct");
                guard.set_phase("construct");
                let mut output = Document::new();
                let root = output.add_element(output.root(), "answer");
                let count;
                match value {
                    gql_xpath::XValue::Nodes(items) => {
                        let nodes: Vec<_> = items
                            .into_iter()
                            .filter_map(gql_xpath::Item::as_node)
                            .collect();
                        count = nodes.len();
                        for n in nodes {
                            let copied = output.import_subtree(doc, n);
                            output
                                .append_child(root, copied)
                                .map_err(|e| CoreError::Engine { msg: e.to_string() })?;
                        }
                    }
                    // Scalar results (count(), sum(), booleans) become the
                    // answer's text, and count 1 result value.
                    other => {
                        count = 1;
                        output.add_text(root, &other.string(doc));
                    }
                }
                if trace.is_enabled() {
                    trace.count("nodes_built", output.node_count() as u64);
                }
                drop(span);
                guard.checkpoint().map_err(CoreError::Budget)?;
                trace.count("results", count as u64);
                Ok(RunOutcome {
                    output,
                    result_count: count,
                    eval_time,
                    load_time: Duration::ZERO,
                    profile: None,
                    inference,
                    plan: plan_text,
                })
            }
        }
    }
}

/// Map an XML-GL error to the core taxonomy, preserving budget trips.
fn engine_err_xmlgl(e: gql_xmlgl::XmlGlError) -> CoreError {
    match e {
        gql_xmlgl::XmlGlError::Budget(g) => CoreError::Budget(g),
        e => CoreError::Engine { msg: e.to_string() },
    }
}

/// Map a WG-Log error to the core taxonomy, preserving budget trips.
fn engine_err_wglog(e: gql_wglog::WgLogError) -> CoreError {
    match e {
        gql_wglog::WgLogError::Budget(g) => CoreError::Budget(g),
        e => CoreError::Engine { msg: e.to_string() },
    }
}

/// Map an XPath error to the core taxonomy, preserving budget trips.
fn engine_err_xpath(e: gql_xpath::XPathError) -> CoreError {
    match e {
        gql_xpath::XPathError::Budget(g) => CoreError::Budget(g),
        e => CoreError::Engine { msg: e.to_string() },
    }
}

/// Record a [`DocIndex`]'s size counters onto the current span.
fn record_index_stats(trace: &Trace, idx: &DocIndex) {
    let s = idx.stats();
    trace.count("elements", s.elements as u64);
    trace.count("distinct_tags", s.distinct_tags as u64);
    trace.count("distinct_attrs", s.distinct_attrs as u64);
    trace.count("text_elements", s.text_elements as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_xmlgl::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        Document::parse_str(
            "<guide>\
               <restaurant><name>A</name><menu><price>20</price></menu></restaurant>\
               <restaurant><name>B</name></restaurant>\
               <restaurant><name>C</name><menu><price>40</price></menu></restaurant>\
             </guide>",
        )
        .unwrap()
    }

    /// The "restaurants offering menus" query in all three formalisms.
    fn equivalent_queries() -> Vec<QueryKind> {
        let xmlgl = RuleBuilder::new()
            .extract(
                Q::elem("restaurant")
                    .var("r")
                    .child(Q::elem("menu").var("m")),
            )
            .construct(C::elem("answer").child(C::all("r")))
            .build_program()
            .unwrap();
        let wglog = gql_wglog::dsl::parse(
            "rule { query { $r: restaurant  $m: menu  $r -menu-> $m } \
                    construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        )
        .unwrap();
        vec![
            QueryKind::XmlGl(xmlgl),
            QueryKind::WgLog(wglog),
            QueryKind::XPath("//restaurant[menu]".to_string()),
        ]
    }

    #[test]
    fn all_engines_agree_on_the_selection() {
        let d = doc();
        let engine = Engine::new();
        let expected = [1usize, 1, 2]; // XML-GL: 1 answer element; WG-Log: 1 list; XPath: 2 hits
        for (q, expect) in equivalent_queries().iter().zip(expected) {
            let outcome = engine.run(q, &d).unwrap();
            assert_eq!(outcome.result_count, expect, "{q:?}");
        }
        // The actual selected restaurants: extract from the outputs.
        let outcome = engine.run(&equivalent_queries()[0], &d).unwrap();
        let root = outcome.output.root_element().unwrap();
        assert_eq!(outcome.output.child_elements(root).count(), 2);
    }

    #[test]
    fn resident_instance_skips_load() {
        let d = doc();
        let mut engine = Engine::new();
        let q = equivalent_queries().remove(1);
        let cold = engine.run(&q, &d).unwrap();
        assert!(cold.load_time > Duration::ZERO);
        engine.preload(&d);
        let warm = engine.run(&q, &d).unwrap();
        assert_eq!(warm.load_time, Duration::ZERO);
        assert_eq!(warm.result_count, cold.result_count);
    }

    #[test]
    fn resident_index_matches_cold_runs_and_detects_staleness() {
        let d = doc();
        let mut engine = Engine::new();
        let queries = equivalent_queries();
        let cold: Vec<String> = queries
            .iter()
            .map(|q| engine.run(q, &d).unwrap().output.to_xml_string())
            .collect();
        engine.preload(&d);
        assert!(engine.resident_index_for(&d).is_some());
        for (q, expect) in queries.iter().zip(&cold) {
            let warm = engine.run(q, &d).unwrap();
            assert_eq!(&warm.output.to_xml_string(), expect, "{q:?}");
        }
        // A different document (same lifetime, different address/shape) must
        // not be served from the resident index.
        let other = Document::parse_str("<guide><restaurant><menu/></restaurant></guide>").unwrap();
        assert!(engine.resident_index_for(&other).is_none());
        let outcome = engine
            .run(&QueryKind::XPath("//restaurant[menu]".to_string()), &other)
            .unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn xpath_result_document() {
        let d = doc();
        let engine = Engine::new();
        let outcome = engine
            .run(&QueryKind::XPath("//menu/price".to_string()), &d)
            .unwrap();
        assert_eq!(outcome.result_count, 2);
        let xml = outcome.output.to_xml_string();
        assert!(xml.contains("<price>20</price>"));
        assert!(xml.contains("<price>40</price>"));
    }

    #[test]
    fn scalar_xpath_results_are_answerable() {
        let d = doc();
        let engine = Engine::new();
        let outcome = engine
            .run(&QueryKind::XPath("count(//menu)".to_string()), &d)
            .unwrap();
        assert_eq!(outcome.result_count, 1);
        assert_eq!(outcome.output.to_xml_string(), "<answer>2</answer>");
    }

    #[test]
    fn unsafe_programs_are_rejected_before_evaluation() {
        use gql_ssdm::{Code, Severity};
        // A variable bound inside a negated subtree can never bind: the
        // program is unsafe and must be refused with a structured Error.
        let program = gql_xmlgl::dsl::parse_unchecked(
            "rule {\n  extract {\n    restaurant as $r {\n      not menu as $m\n    }\n  }\n  construct { answer { all $m } }\n}",
        )
        .unwrap();
        let err = Engine::new()
            .run(&QueryKind::XmlGl(program), &doc())
            .unwrap_err();
        let CoreError::Rejected { diagnostics } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(diagnostics.iter().all(|d| d.severity == Severity::Error));
        assert!(diagnostics.iter().any(|d| d.code == Code::NegationScope));
        assert!(diagnostics.iter().any(|d| d.code == Code::UnsafeConstruct));
        assert!(diagnostics[0].rule.as_deref() == Some("rule 1 (restaurant)"));
        assert!(!diagnostics[0].span.is_none());

        // And the WG-Log path refuses non-stratifiable programs.
        let program = gql_wglog::dsl::parse(
            "rule { query { $a: doc  $b: doc  $a -link-> $b  not $a -q-> $b } construct { $a -p-> $b } }\n\
             rule { query { $a: doc  $b: doc  $a -p-> $b } construct { $a -q-> $b } }",
        )
        .unwrap();
        let err = Engine::new()
            .run(&QueryKind::WgLog(program), &doc())
            .unwrap_err();
        let CoreError::Rejected { diagnostics } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(diagnostics.iter().any(|d| d.code == Code::NotStratifiable));
    }

    #[test]
    fn engine_errors_are_reported() {
        let d = doc();
        let engine = Engine::new();
        let err = engine
            .run(&QueryKind::XPath("///".to_string()), &d)
            .unwrap_err();
        assert!(matches!(err, CoreError::Engine { .. }));
    }

    /// Regression: an allocator can hand a fresh document the recycled
    /// address of the one the resident index was built for, and node counts
    /// collide easily. Address + node count alone would then serve stale
    /// postings; the shallow content fingerprint must catch it.
    #[test]
    fn recycled_address_with_equal_node_count_is_not_served_stale() {
        let a = Document::parse_str(
            "<guide><restaurant><name>A</name><menu><price>20</price></menu></restaurant></guide>",
        )
        .unwrap();
        // Same node count and depth profile, different content.
        let b = Document::parse_str(
            "<guide><restaurant><name>B</name><cafe><price>20</price></cafe></restaurant></guide>",
        )
        .unwrap();
        assert_eq!(a.node_count(), b.node_count());
        let mut engine = Engine::new();
        engine.preload(&a);
        // Simulate address recycling: force the cached identity onto `b`.
        let resident = engine.resident_index.as_mut().unwrap();
        resident.doc_addr = std::ptr::from_ref(&b) as usize;
        resident.node_count = b.node_count();
        // The first two checks now agree, so only the fingerprint stands
        // between `b` and a stale index built for `a`.
        assert!(
            engine.resident_index_for(&b).is_none(),
            "stale index served for a recycled address"
        );
        assert_eq!(engine.index_cache_state(&b), "miss");
        // And the query path falls back to a correct cold evaluation: `a`'s
        // index has a `menu` posting that `b` does not have.
        let outcome = engine
            .run(&QueryKind::XPath("//restaurant[cafe]".to_string()), &b)
            .unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn profiled_runs_match_plain_runs_and_emit_nonempty_profiles() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            let plain = engine.run(&q, &d).unwrap();
            let profiled = engine.run_profiled(&q, &d).unwrap();
            assert_eq!(
                plain.output.to_xml_string(),
                profiled.output.to_xml_string(),
                "tracing changed the result for {q:?}"
            );
            assert!(plain.profile.is_none());
            let profile = profiled
                .profile
                .expect("run_profiled must attach a profile");
            let run = profile.find("run").expect("root `run` span");
            assert!(run.find("analyze").is_some(), "{q:?}");
            assert!(run.find("eval").is_some(), "{q:?}");
            assert_eq!(run.counter("results"), Some(profiled.result_count as u64));
        }
    }

    #[test]
    fn profile_reports_index_cache_state() {
        let d = doc();
        let mut engine = Engine::new();
        let q = QueryKind::XPath("//restaurant[menu]".to_string());
        let cold = engine.run_profiled(&q, &d).unwrap().profile.unwrap();
        let idx = cold.find("run").unwrap().find("index").unwrap();
        assert_eq!(idx.note("cache"), Some("cold"));
        engine.preload(&d);
        let warm = engine.run_profiled(&q, &d).unwrap().profile.unwrap();
        let idx = warm.find("run").unwrap().find("index").unwrap();
        assert_eq!(idx.note("cache"), Some("hit"));
        assert_eq!(idx.counter("distinct_tags"), Some(5)); // guide restaurant name menu price
        let other = Document::parse_str("<guide><restaurant><menu/></restaurant></guide>").unwrap();
        let missed = engine.run_profiled(&q, &other).unwrap().profile.unwrap();
        let idx = missed.find("run").unwrap().find("index").unwrap();
        assert_eq!(idx.note("cache"), Some("miss"));
    }

    #[test]
    fn run_bounded_with_unlimited_budget_matches_run() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            let plain = engine.run(&q, &d).unwrap();
            let bounded = engine.run_bounded(&q, &d, &Budget::unlimited()).unwrap();
            assert_eq!(
                plain.output.to_xml_string(),
                bounded.output.to_xml_string(),
                "an unlimited budget changed the result for {q:?}"
            );
        }
    }

    #[test]
    fn run_bounded_trips_cleanly_with_partial_report() {
        let d = doc();
        let engine = Engine::new();
        // max_matches(0): the first charged candidate set trips in every
        // engine; the report must name the phase and carry counters.
        let budget = Budget::unlimited().with_max_matches(0);
        for q in equivalent_queries() {
            let err = engine.run_bounded(&q, &d, &budget).unwrap_err();
            let CoreError::Budget(g) = err else {
                panic!("expected Budget error for {q:?}, got {err:?}");
            };
            assert_eq!(g.kind.name(), "matches", "{q:?}");
            assert_eq!(g.report.phase, "eval", "{q:?}");
        }
    }

    #[test]
    fn cancel_token_aborts_a_run() {
        let d = doc();
        let engine = Engine::new();
        let token = gql_guard::CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let guard = Guard::with_cancel(Budget::unlimited(), token);
        let q = QueryKind::XPath("//restaurant[menu]".to_string());
        let err = engine
            .run_governed(&q, &d, &Trace::disabled(), &guard)
            .unwrap_err();
        let CoreError::Budget(g) = err else {
            panic!("expected Budget error, got {err:?}");
        };
        assert_eq!(g.kind.name(), "cancelled");
    }

    #[test]
    fn failed_index_build_degrades_to_scan_with_identical_answers() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            let baseline = engine.run(&q, &d).unwrap().output.to_xml_string();
            let degraded = fault::with_plan(fault::FaultPlan::fail_index_build(), || {
                let trace = Trace::profiling();
                let out = engine
                    .run_governed(&q, &d, &trace, &Guard::unlimited())
                    .unwrap();
                (out.output.to_xml_string(), trace.finish().unwrap())
            });
            assert_eq!(baseline, degraded.0, "scan fallback changed {q:?}");
            if !matches!(q, QueryKind::WgLog(_)) {
                let idx = degraded.1.find("run").unwrap().find("index").unwrap();
                assert_eq!(idx.note("degraded"), Some("scan"), "{q:?}");
            }
        }
    }

    #[test]
    fn corrupt_postings_are_rejected_and_fall_back_to_scan() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            let baseline = engine.run(&q, &d).unwrap().output.to_xml_string();
            let degraded = fault::with_plan(fault::FaultPlan::corrupt_postings(), || {
                engine.run(&q, &d).unwrap().output.to_xml_string()
            });
            assert_eq!(
                baseline, degraded,
                "corrupt-postings fallback changed {q:?}"
            );
        }
    }

    #[test]
    fn inference_surfaces_summary_warnings_without_refusing() {
        use gql_ssdm::Code;
        let d = doc();
        let engine = Engine::new();
        // A tag that exists in no document path: every language gets its
        // inference warning, and every run still completes.
        let xmlgl = gql_xmlgl::dsl::parse(
            "rule { extract { cinema as $c } construct { answer { all $c } } }",
        )
        .unwrap();
        let out = engine.run(&QueryKind::XmlGl(xmlgl), &d).unwrap();
        assert!(out.inference.empty_rules[0]);
        assert!(out
            .inference
            .report
            .iter()
            .any(|x| x.code == Code::EmptyUnderSummary));
        assert_eq!(out.inference.root_bounds, vec![vec![0]]);

        let wglog = gql_wglog::dsl::parse(
            "rule { query { $c: cinema } construct { $l: cine-list  $l -member-> $c } } \
             goal cine-list",
        )
        .unwrap();
        let out = engine.run(&QueryKind::WgLog(wglog), &d).unwrap();
        assert!(out.inference.is_statically_empty());
        assert!(out
            .inference
            .report
            .iter()
            .any(|x| x.code == Code::DeadRule));
        assert_eq!(out.result_count, 0);

        let out = engine
            .run(&QueryKind::XPath("//cinema/name".into()), &d)
            .unwrap();
        assert!(out.inference.is_statically_empty());
        assert!(out
            .inference
            .report
            .iter()
            .any(|x| x.code == Code::PathNeverMatches));
        assert_eq!(out.result_count, 0);

        // A live query carries bounds and no warnings.
        let out = engine
            .run(&QueryKind::XPath("//restaurant/menu".into()), &d)
            .unwrap();
        assert!(out.inference.report.is_empty());
        assert_eq!(out.inference.cards.result_bound(0), Some(2));
        assert_eq!(out.result_count, 2);
    }

    #[test]
    fn summary_join_plans_are_applied_and_change_nothing() {
        let d = doc();
        // Three roots: the menu root (bound 2) is cheapest, so the planner
        // reorders away from declaration order; results must be identical.
        let program = gql_xmlgl::dsl::parse(
            r#"rule {
                 extract {
                   restaurant { name { text as $a } }
                   menu as $m
                   name { text as $b }
                   join $a == $b
                 }
                 construct { answer { all $m } }
               }"#,
        )
        .unwrap();
        let baseline = gql_xmlgl::eval::run(&program, &d).unwrap().to_xml_string();
        let engine = Engine::new();
        let q = QueryKind::XmlGl(program);
        let out = engine.run_profiled(&q, &d).unwrap();
        assert_eq!(out.output.to_xml_string(), baseline);
        let profile = out.profile.unwrap();
        let run = profile.find("run").unwrap();
        assert_eq!(run.find("eval").unwrap().counter("planned_rules"), Some(1));
        let matched = run
            .find("eval")
            .and_then(|e| e.find("rule[0]"))
            .and_then(|r| r.find("match"))
            .unwrap();
        assert!(
            matched.note("combine_plan").is_some(),
            "planned combine must record its order"
        );
    }

    /// One helper: the `plan_cache` note of a profiled run.
    fn plan_cache_note(profile: &ExecutionProfile) -> Option<String> {
        profile
            .find("run")
            .and_then(|r| r.find("plan"))
            .and_then(|p| p.note("plan_cache"))
            .map(str::to_string)
    }

    #[test]
    fn plan_cache_serves_warm_runs_identically() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            let cold = engine.run_profiled(&q, &d).unwrap();
            let warm = engine.run_profiled(&q, &d).unwrap();
            assert_eq!(
                cold.output.to_xml_string(),
                warm.output.to_xml_string(),
                "a warm plan changed the answer for {q:?}"
            );
            assert_eq!(
                plan_cache_note(cold.profile.as_ref().unwrap()).as_deref(),
                Some("miss"),
                "{q:?}"
            );
            assert_eq!(
                plan_cache_note(warm.profile.as_ref().unwrap()).as_deref(),
                Some("hit"),
                "{q:?}"
            );
            // The cached inference is the one the cold run computed.
            assert_eq!(
                format!("{:?}", cold.inference.report),
                format!("{:?}", warm.inference.report)
            );
            assert_eq!(cold.inference.root_bounds, warm.inference.root_bounds);
        }
        let stats = engine.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.replans), (3, 3, 0));
        assert_eq!(engine.plan_cache_len(), 3);
        engine.clear_plan_cache();
        assert_eq!(engine.plan_cache_len(), 0);
        assert_eq!(engine.plan_cache_stats().hits, 3, "counters survive clear");
    }

    #[test]
    fn plan_cache_keys_on_document_fingerprint_and_budget_class() {
        let mut d = doc();
        let engine = Engine::new();
        let q = QueryKind::XPath("//restaurant[menu]".to_string());
        engine.run(&q, &d).unwrap();
        engine.run(&q, &d).unwrap();
        assert_eq!(engine.plan_cache_stats().hits, 1);
        // Mutating the document changes its shallow fingerprint, so the
        // stale plan is not served.
        let root = d.root_element().unwrap();
        d.add_element(root, "restaurant");
        engine.run(&q, &d).unwrap();
        let s = engine.plan_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        // A different budget class never aliases the unlimited entry.
        let budget = Budget::unlimited().with_max_matches(1_000_000);
        engine.run_bounded(&q, &d, &budget).unwrap();
        assert_eq!(engine.plan_cache_stats().misses, 3);
        engine.run_bounded(&q, &d, &budget).unwrap();
        assert_eq!(engine.plan_cache_stats().hits, 2);
    }

    #[test]
    fn corrupt_plan_cache_entries_are_replanned_with_identical_answers() {
        let d = doc();
        let engine = Engine::new();
        for q in equivalent_queries() {
            // Warm the cache, then run with the corruption fault armed: the
            // poisoned entry must fail validation and be replanned, with a
            // byte-identical answer.
            let baseline = engine.run(&q, &d).unwrap().output.to_xml_string();
            let (xml, profile) = fault::with_plan(fault::FaultPlan::corrupt_plan_cache(), || {
                let trace = Trace::profiling();
                let out = engine
                    .run_governed(&q, &d, &trace, &Guard::unlimited())
                    .unwrap();
                (out.output.to_xml_string(), trace.finish().unwrap())
            });
            assert_eq!(baseline, xml, "replan changed the answer for {q:?}");
            assert_eq!(
                plan_cache_note(&profile).as_deref(),
                Some("replan"),
                "{q:?}"
            );
        }
        assert_eq!(engine.plan_cache_stats().replans, 3);
        // With the fault gone the replanned entries serve hits again.
        let q = equivalent_queries().remove(0);
        let profile = engine.run_profiled(&q, &d).unwrap().profile.unwrap();
        assert_eq!(plan_cache_note(&profile).as_deref(), Some("hit"));
    }

    #[test]
    fn plan_span_records_the_lowered_plan_and_join_order() {
        let d = doc();
        let engine = Engine::new();
        // The 3-root join query: the optimizer must pick a non-declared
        // order and record it.
        let program = gql_xmlgl::dsl::parse(
            r#"rule {
                 extract {
                   restaurant { name { text as $a } }
                   menu as $m
                   name { text as $b }
                   join $a == $b
                 }
                 construct { answer { all $m } }
               }"#,
        )
        .unwrap();
        let profile = engine
            .run_profiled(&QueryKind::XmlGl(program), &d)
            .unwrap()
            .profile
            .unwrap();
        let plan = profile.find("run").unwrap().find("plan").unwrap();
        let compact = plan.note("plan").expect("plan note");
        assert!(compact.contains("HashJoin"), "{compact}");
        assert!(compact.contains("Construct"), "{compact}");
        let order = plan.note("join_order[0]").expect("join order note");
        assert_ne!(order, "0,1,2", "optimizer must reorder this query");
    }

    #[test]
    fn wglog_profile_reports_load_and_fixpoint_shape() {
        let d = doc();
        let engine = Engine::new();
        let q = equivalent_queries().remove(1);
        let profile = engine.run_profiled(&q, &d).unwrap().profile.unwrap();
        let run = profile.find("run").unwrap();
        assert_eq!(run.note("engine"), Some("wglog"));
        let load = run.find("load").unwrap();
        assert_eq!(load.note("cache"), Some("cold"));
        assert!(load.counter("objects").unwrap() > 0);
        let eval = run.find("eval").unwrap();
        assert!(eval.find("stratify").is_some());
        let stratum = eval.find("stratum[0]").expect("one stratum");
        assert!(stratum.find("round[0]").is_some(), "fixpoint rounds traced");
        assert!(run.find("construct").is_some());
    }
}
