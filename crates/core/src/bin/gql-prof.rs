//! `gql-prof` — profile a query's execution and print the span tree.
//!
//! ```text
//! Usage: gql-prof [options] (--query FILE | --xpath EXPR)
//!
//!   --query FILE     query program: .gql (XML-GL) or .wgl (WG-Log)
//!   --xpath EXPR     XPath expression (alternative to --query)
//!   --doc FILE       XML document to query
//!   --dataset NAME   synthetic dataset instead of --doc: bibliography,
//!                    cityguide, greengrocer, webgraph
//!   --warm           preload the document (resident instance + index)
//!                    before the profiled run, so the profile shows the
//!                    warm-cache phases
//!   --json           emit the profile as JSON instead of the text tree
//! ```
//!
//! The text tree shows one line per span with its duration (dot-aligned),
//! counters and notes; the JSON form mirrors it structurally and is stable
//! for machine consumption (validated in CI against the two example
//! queries). Exit code 2 on usage errors, 1 on engine errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gql_core::engine::{Engine, QueryKind};
use gql_ssdm::{generator, Document};

struct Options {
    query: Option<PathBuf>,
    xpath: Option<String>,
    doc: Option<PathBuf>,
    dataset: Option<String>,
    warm: bool,
    json: bool,
}

fn usage() -> &'static str {
    "Usage: gql-prof [--doc FILE | --dataset NAME] [--warm] [--json] \
     (--query FILE | --xpath EXPR)"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        query: None,
        xpath: None,
        doc: None,
        dataset: None,
        warm: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => {
                let v = it.next().ok_or("--query needs a file argument")?;
                opts.query = Some(PathBuf::from(v));
            }
            "--xpath" => {
                let v = it.next().ok_or("--xpath needs an expression argument")?;
                opts.xpath = Some(v.clone());
            }
            "--doc" => {
                let v = it.next().ok_or("--doc needs a file argument")?;
                opts.doc = Some(PathBuf::from(v));
            }
            "--dataset" => {
                let v = it.next().ok_or("--dataset needs a name argument")?;
                opts.dataset = Some(v.clone());
            }
            "--warm" => opts.warm = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.query.is_some() == opts.xpath.is_some() {
        return Err("exactly one of --query and --xpath is required".to_string());
    }
    if opts.doc.is_some() && opts.dataset.is_some() {
        return Err("--doc and --dataset are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn load_document(opts: &Options) -> Result<Document, String> {
    if let Some(path) = &opts.doc {
        let xml = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        return Document::parse_str(&xml).map_err(|e| format!("{}: {e}", path.display()));
    }
    match opts.dataset.as_deref().unwrap_or("bibliography") {
        "bibliography" => Ok(generator::bibliography(Default::default())),
        "cityguide" => Ok(generator::cityguide(Default::default())),
        "greengrocer" => Ok(generator::greengrocer(Default::default())),
        "webgraph" => Ok(generator::webgraph(Default::default())),
        other => Err(format!(
            "unknown dataset '{other}' \
             (expected bibliography, cityguide, greengrocer or webgraph)"
        )),
    }
}

fn load_query(opts: &Options) -> Result<QueryKind, String> {
    if let Some(expr) = &opts.xpath {
        return Ok(QueryKind::XPath(expr.clone()));
    }
    let path = opts.query.as_ref().expect("validated by parse_args");
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("gql") => gql_xmlgl::dsl::parse_unchecked(&src)
            .map(QueryKind::XmlGl)
            .map_err(|e| format!("{}: {e}", path.display())),
        Some("wgl") => gql_wglog::dsl::parse_unchecked(&src)
            .map(QueryKind::WgLog)
            .map_err(|e| format!("{}: {e}", path.display())),
        _ => Err(format!(
            "{}: unrecognised query extension (expected .gql or .wgl)",
            path.display()
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gql-prof: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let (doc, query) = match (load_document(&opts), load_query(&opts)) {
        (Ok(d), Ok(q)) => (d, q),
        (d, q) => {
            for e in [d.err(), q.err()].into_iter().flatten() {
                eprintln!("gql-prof: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let mut engine = Engine::new();
    if opts.warm {
        engine.preload(&doc);
    }
    let outcome = match engine.run_profiled(&query, &doc) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gql-prof: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(profile) = outcome.profile else {
        eprintln!("gql-prof: engine attached no profile");
        return ExitCode::FAILURE;
    };
    if opts.json {
        println!("{}", profile.to_json());
    } else {
        print!("{}", profile.to_text());
        println!(
            "{} result(s) in {:?} (load {:?})",
            outcome.result_count, outcome.eval_time, outcome.load_time
        );
    }
    ExitCode::SUCCESS
}
