//! `gql-prof` — profile a query's execution and print the span tree.
//!
//! ```text
//! Usage: gql-prof [options] (--query FILE | --xpath EXPR)
//!
//!   --query FILE     query program: .gql (XML-GL) or .wgl (WG-Log)
//!   --xpath EXPR     XPath expression (alternative to --query)
//!   --doc FILE       XML document to query
//!   --dataset NAME   synthetic dataset instead of --doc: bibliography,
//!                    cityguide, greengrocer, webgraph
//!   --warm           preload the document (resident instance + index)
//!                    before the profiled run, so the profile shows the
//!                    warm-cache phases
//!   --json           emit the profile as JSON instead of the text tree
//!   --timeout-ms N   abort the run after N milliseconds of wall clock
//!   --max-rounds N   abort after N fixpoint rounds / XPath steps
//!   --max-matches N  abort after N pattern matches / candidate items
//! ```
//!
//! The text tree shows one line per span with its duration (dot-aligned),
//! counters and notes; the JSON form mirrors it structurally and is stable
//! for machine consumption (validated in CI against the two example
//! queries). The budget flags run the query through the governed entry
//! point; a tripped budget prints the partial-progress report and exits 3.
//! Exit code 2 on usage errors, 1 on engine errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gql_core::engine::{Engine, QueryKind};
use gql_core::{Budget, CoreError};
use gql_guard::Guard;
use gql_ssdm::{generator, Document};
use gql_trace::Trace;

struct Options {
    query: Option<PathBuf>,
    xpath: Option<String>,
    doc: Option<PathBuf>,
    dataset: Option<String>,
    warm: bool,
    json: bool,
    timeout_ms: Option<u64>,
    max_rounds: Option<u64>,
    max_matches: Option<u64>,
}

fn usage() -> &'static str {
    "Usage: gql-prof [--doc FILE | --dataset NAME] [--warm] [--json] \
     [--timeout-ms N] [--max-rounds N] [--max-matches N] \
     (--query FILE | --xpath EXPR)"
}

/// Parse a budget flag's value: a *positive* integer. Zero is rejected —
/// a zero-round or zero-millisecond "budget" can never admit any run and
/// is always a typo, not an intent.
fn parse_limit(value: Option<&String>, flag: &str) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a positive integer argument"))?;
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("{flag} must be at least 1, got 0")),
        Err(_) => Err(format!("{flag} needs a positive integer, got '{v}'")),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        query: None,
        xpath: None,
        doc: None,
        dataset: None,
        warm: false,
        json: false,
        timeout_ms: None,
        max_rounds: None,
        max_matches: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => {
                let v = it.next().ok_or("--query needs a file argument")?;
                opts.query = Some(PathBuf::from(v));
            }
            "--xpath" => {
                let v = it.next().ok_or("--xpath needs an expression argument")?;
                opts.xpath = Some(v.clone());
            }
            "--doc" => {
                let v = it.next().ok_or("--doc needs a file argument")?;
                opts.doc = Some(PathBuf::from(v));
            }
            "--dataset" => {
                let v = it.next().ok_or("--dataset needs a name argument")?;
                opts.dataset = Some(v.clone());
            }
            "--warm" => opts.warm = true,
            "--json" => opts.json = true,
            "--timeout-ms" => opts.timeout_ms = Some(parse_limit(it.next(), "--timeout-ms")?),
            "--max-rounds" => opts.max_rounds = Some(parse_limit(it.next(), "--max-rounds")?),
            "--max-matches" => opts.max_matches = Some(parse_limit(it.next(), "--max-matches")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.query.is_some() == opts.xpath.is_some() {
        return Err("exactly one of --query and --xpath is required".to_string());
    }
    if opts.doc.is_some() && opts.dataset.is_some() {
        return Err("--doc and --dataset are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn load_document(opts: &Options) -> Result<Document, String> {
    if let Some(path) = &opts.doc {
        let xml = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        return Document::parse_str(&xml).map_err(|e| format!("{}: {e}", path.display()));
    }
    match opts.dataset.as_deref().unwrap_or("bibliography") {
        "bibliography" => Ok(generator::bibliography(Default::default())),
        "cityguide" => Ok(generator::cityguide(Default::default())),
        "greengrocer" => Ok(generator::greengrocer(Default::default())),
        "webgraph" => Ok(generator::webgraph(Default::default())),
        other => Err(format!(
            "unknown dataset '{other}' \
             (expected bibliography, cityguide, greengrocer or webgraph)"
        )),
    }
}

fn load_query(opts: &Options) -> Result<QueryKind, String> {
    if let Some(expr) = &opts.xpath {
        return Ok(QueryKind::XPath(expr.clone()));
    }
    let path = opts.query.as_ref().expect("validated by parse_args");
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("gql") => gql_xmlgl::dsl::parse_unchecked(&src)
            .map(QueryKind::XmlGl)
            .map_err(|e| format!("{}: {e}", path.display())),
        Some("wgl") => gql_wglog::dsl::parse_unchecked(&src)
            .map(QueryKind::WgLog)
            .map_err(|e| format!("{}: {e}", path.display())),
        _ => Err(format!(
            "{}: unrecognised query extension (expected .gql or .wgl)",
            path.display()
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gql-prof: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let (doc, query) = match (load_document(&opts), load_query(&opts)) {
        (Ok(d), Ok(q)) => (d, q),
        (d, q) => {
            for e in [d.err(), q.err()].into_iter().flatten() {
                eprintln!("gql-prof: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let mut engine = Engine::new();
    if opts.warm {
        engine.preload(&doc);
    }
    let mut budget = Budget::unlimited();
    if let Some(ms) = opts.timeout_ms {
        budget = budget.with_timeout_ms(ms);
    }
    if let Some(n) = opts.max_rounds {
        budget = budget.with_max_rounds(n);
    }
    if let Some(n) = opts.max_matches {
        budget = budget.with_max_matches(n);
    }
    let outcome = if budget.is_unlimited() {
        engine.run_profiled(&query, &doc)
    } else {
        // Profile *and* govern: the guard probes sit at the same sites the
        // trace instruments, so a tripped run still yields a partial tree.
        let trace = Trace::profiling();
        let guard = Guard::new(budget);
        engine
            .run_governed(&query, &doc, &trace, &guard)
            .map(|mut o| {
                o.profile = trace.finish();
                o
            })
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(CoreError::Budget(g)) => {
            eprintln!(
                "gql-prof: budget exceeded ({}): {}",
                g.kind.name(),
                g.report.to_text()
            );
            return ExitCode::from(3);
        }
        Err(e) => {
            eprintln!("gql-prof: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(profile) = outcome.profile else {
        eprintln!("gql-prof: engine attached no profile");
        return ExitCode::FAILURE;
    };
    if opts.json {
        println!("{}", profile.to_json());
    } else {
        print!("{}", profile.to_text());
        // Static inference over the document summary: warnings first, then
        // the per-node cardinality upper bounds the planner saw.
        for d in outcome.inference.report.iter() {
            println!("infer: {d}");
        }
        for e in outcome.inference.cards.iter() {
            let bound = if e.bound == u64::MAX {
                String::from("unbounded")
            } else {
                format!("<= {}", e.bound)
            };
            println!("bound: rule {} {}: {bound}", e.rule + 1, e.target);
        }
        // The logical plan the run executed, with the cost-chosen join
        // orders and the plan-cache behaviour of this engine.
        for line in outcome.plan.lines() {
            println!("plan: {line}");
        }
        if let Some(plan_span) = profile.find("plan") {
            for (name, value) in &plan_span.notes {
                if name.starts_with("join_order") {
                    println!("plan: {name} = [{value}]");
                }
            }
        }
        // Estimated vs actual result cardinality (the planner's bound
        // against what the run produced).
        if let Some(est) = outcome.inference.cards.result_bound(0) {
            println!(
                "cards: result estimated <= {est}, actual {}",
                outcome.result_count
            );
        }
        let stats = engine.plan_cache_stats();
        println!(
            "plan_cache: {{hit: {}, miss: {}, evict: {}, replan: {}}}",
            stats.hits, stats.misses, stats.evictions, stats.replans
        );
        println!(
            "{} result(s) in {:?} (load {:?})",
            outcome.result_count, outcome.eval_time, outcome.load_time
        );
    }
    ExitCode::SUCCESS
}
