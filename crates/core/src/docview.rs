//! The document metaphor: rendering documents as nested boxes.
//!
//! Several systems the survey chapter covers (Xing's form metaphor, VXT's
//! visual treemaps) draw *data* the same way XML-GL draws *queries* —
//! nested labelled boxes. This module converts a [`Document`] subtree into
//! the layout crate's containment tree, following Xing's conventions:
//!
//! * elements become boxes labelled with their tag;
//! * an element whose content is a single text node collapses to one line,
//!   `tag: text`;
//! * attributes render as `@name: value` lines;
//! * comments and processing instructions are omitted (presentation view).

use gql_layout::containment::{nested, BoxLayout, BoxNode, BoxOptions};
use gql_ssdm::document::NodeKind;
use gql_ssdm::{Document, NodeId};

/// Convert a subtree to a containment tree (see module docs).
pub fn document_boxes(doc: &Document, node: NodeId) -> BoxNode {
    build(doc, node, 0)
}

/// Depth guard keeps degenerate documents renderable.
const MAX_DEPTH: usize = 64;

fn build(doc: &Document, node: NodeId, depth: usize) -> BoxNode {
    let tag = doc.name(node).unwrap_or("?");
    if depth >= MAX_DEPTH {
        return BoxNode::leaf(format!("{tag}: …"));
    }
    let element_children: Vec<NodeId> = doc
        .children(node)
        .iter()
        .copied()
        .filter(|&c| doc.kind(c) == NodeKind::Element)
        .collect();
    let text = doc
        .children(node)
        .iter()
        .filter(|&&c| doc.kind(c) == NodeKind::Text)
        .map(|&c| doc.text(c).unwrap_or(""))
        .collect::<String>();
    let attrs: Vec<BoxNode> = doc
        .attrs(node)
        .map(|(k, v)| BoxNode::leaf(format!("@{k}: {v}")))
        .collect();

    // Xing collapse: text-only element without attributes → one line.
    if element_children.is_empty() && attrs.is_empty() {
        let t = text.trim();
        return if t.is_empty() {
            BoxNode::leaf(tag.to_string())
        } else {
            BoxNode::leaf(format!("{tag}: {t}"))
        };
    }

    let mut children = attrs;
    if !text.trim().is_empty() {
        children.push(BoxNode::leaf(format!("\"{}\"", text.trim())));
    }
    for c in element_children {
        children.push(build(doc, c, depth + 1));
    }
    BoxNode::with_children(tag.to_string(), children)
}

/// One-call convenience: subtree → laid-out nested boxes.
pub fn document_box_layout(doc: &Document, node: NodeId) -> BoxLayout {
    nested(&document_boxes(doc, node), &BoxOptions::default())
}

/// One-call convenience: subtree → document-metaphor SVG.
pub fn document_to_svg(doc: &Document, node: NodeId) -> String {
    gql_layout::render::boxes_to_svg(&document_box_layout(doc, node))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<product kind='vegetable'>\
               <name>cabbage</name>\
               <price><unit>piece</unit><value>0.59</value></price>\
             </product>",
        )
        .unwrap()
    }

    #[test]
    fn collapses_text_only_elements() {
        let d = doc();
        let tree = document_boxes(&d, d.root_element().unwrap());
        assert_eq!(tree.label, "product");
        let labels: Vec<&str> = tree.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["@kind: vegetable", "name: cabbage", "price"]);
        let price = &tree.children[2];
        assert_eq!(price.children.len(), 2);
        assert_eq!(price.children[0].label, "unit: piece");
    }

    #[test]
    fn mixed_content_keeps_text_line() {
        let d = Document::parse_str("<p>hello <b>world</b></p>").unwrap();
        let tree = document_boxes(&d, d.root_element().unwrap());
        let labels: Vec<&str> = tree.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["\"hello\"", "b: world"]);
    }

    #[test]
    fn renders_to_svg() {
        let d = doc();
        let svg = document_to_svg(&d, d.root_element().unwrap());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("name: cabbage"));
        assert!(svg.contains("@kind: vegetable"));
    }

    #[test]
    fn deep_documents_are_guarded() {
        let d = gql_ssdm::generator::deep_chain(200, 1);
        let tree = document_boxes(&d, d.root_element().unwrap());
        // Bounded by the guard, no stack/size explosion.
        assert!(tree.depth() <= MAX_DEPTH + 1);
        let svg = document_to_svg(&d, d.root_element().unwrap());
        assert!(svg.contains("…"));
    }

    #[test]
    fn empty_element() {
        let d = Document::parse_str("<empty/>").unwrap();
        let tree = document_boxes(&d, d.root_element().unwrap());
        assert_eq!(tree.label, "empty");
        assert!(tree.children.is_empty());
    }
}
