//! # gql-core — the unified graphical-query layer
//!
//! The paper's contribution is not one language but the *comparison*: two
//! graphical styles for querying semi-structured information — XML-GL
//! (schema-optional, two-graph rules) and WG-Log (schema-aware, one
//! coloured graph, fixpoint semantics) — measured against each other and
//! against the navigational mainstream. This crate is that comparison made
//! executable:
//!
//! * [`algebra`] — a common logical algebra over binding tables that
//!   XML-GL extract graphs compile to, with an interpreter and a rule-based
//!   optimizer (predicate pushdown, hash-join selection, scan typing) —
//!   the ablation subject of experiment **T5**;
//! * [`translate`] — compilers between the formalisms: XML-GL → algebra,
//!   XML-GL → WG-Log and WG-Log → XML-GL (partial by design: the failures
//!   are the expressiveness gaps of experiment **T2**);
//! * [`capability`] — feature analysis of concrete queries and the static
//!   language-capability matrix of experiment **T1**;
//! * [`engine`] — one entry point that runs a query written in any of the
//!   three formalisms (XML-GL, WG-Log, XPath) against a document and
//!   returns a result document, with wall-clock instrumentation for the
//!   benchmark harness;
//! * [`stats`] — per-tag document statistics and the cardinality-aware
//!   join-ordering rule on top of the optimizer;
//! * [`docview`] — the Xing/VXT document metaphor: documents rendered as
//!   nested labelled boxes.

pub mod algebra;
pub mod capability;
pub mod docview;
pub mod engine;
pub mod stats;
pub mod translate;

pub use capability::{Feature, LanguageProfile};
pub use engine::{Engine, QueryKind};
pub use gql_guard::{Budget, CancelToken, GuardError};

/// Errors of the unified layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A query uses a feature its target formalism cannot express.
    Untranslatable { feature: String, detail: String },
    /// Algebra compilation or execution failure.
    Algebra { msg: String },
    /// An underlying engine failed.
    Engine { msg: String },
    /// Static analysis refused the program before evaluation; carries every
    /// Error-level diagnostic found.
    Rejected {
        diagnostics: Vec<gql_ssdm::Diagnostic>,
    },
    /// A resource budget tripped during a bounded run
    /// ([`Engine::run_bounded`]); carries the structured partial-progress
    /// report instead of a wrong or truncated answer.
    Budget(gql_guard::GuardError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Untranslatable { feature, detail } => {
                write!(f, "untranslatable ({feature}): {detail}")
            }
            CoreError::Algebra { msg } => write!(f, "algebra error: {msg}"),
            CoreError::Engine { msg } => write!(f, "engine error: {msg}"),
            CoreError::Rejected { diagnostics } => {
                write!(
                    f,
                    "program rejected by static analysis ({} error{}):",
                    diagnostics.len(),
                    if diagnostics.len() == 1 { "" } else { "s" }
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CoreError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

pub type Result<T> = std::result::Result<T, CoreError>;
