//! Document statistics and the cardinality-based join ordering rule.
//!
//! The optimizer's pushdown rules are statistics-free; join *ordering* is
//! not: building the hash table on the smaller input is only knowable from
//! data. [`DocStats`] collects per-tag element counts in one pass, and
//! [`optimize_with_stats`] extends [`crate::algebra::optimize`] with a
//! swap rule — the estimated-smaller join side becomes the build (right)
//! side. This is the second half of the T5 ablation.

use std::collections::HashMap;

use gql_ssdm::document::NodeKind;
use gql_ssdm::{DocIndex, Document, Symbol};

use crate::algebra::{optimize, Plan};

/// Per-tag element counts plus document totals. Counts are keyed by the
/// document's interned tag [`Symbol`]s — collection allocates one `String`
/// per *distinct* tag (for the name lookup table), not one per element.
#[derive(Debug, Clone, Default)]
pub struct DocStats {
    by_tag: HashMap<Symbol, usize>,
    /// Tag name → symbol, resolved once at collection time so
    /// [`DocStats::count`] keeps its string-keyed API.
    names: HashMap<String, Symbol>,
    elements: usize,
}

impl DocStats {
    /// One-pass collection.
    pub fn collect(doc: &Document) -> DocStats {
        let mut s = DocStats::default();
        for n in doc.descendants(doc.root()) {
            if doc.kind(n) == NodeKind::Element {
                s.elements += 1;
                if let Some(sym) = doc.name_sym(n) {
                    *s.by_tag.entry(sym).or_default() += 1;
                }
            }
        }
        s.resolve_names(doc);
        s
    }

    /// Free projection of a prebuilt [`DocIndex`]: tag counts and element
    /// totals are already materialised in its postings.
    pub fn from_index(doc: &Document, idx: &DocIndex) -> DocStats {
        let mut s = DocStats {
            by_tag: idx.tag_counts().collect(),
            names: HashMap::new(),
            elements: idx.element_count(),
        };
        s.resolve_names(doc);
        s
    }

    fn resolve_names(&mut self, doc: &Document) {
        self.names = self
            .by_tag
            .keys()
            .map(|&sym| (doc.resolve_sym(sym).to_string(), sym))
            .collect();
    }

    /// Number of elements with a tag.
    pub fn count(&self, tag: &str) -> usize {
        self.names
            .get(tag)
            .and_then(|sym| self.by_tag.get(sym))
            .copied()
            .unwrap_or(0)
    }

    /// Total element count.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Rough output-cardinality estimate of a plan. Scans are exact;
    /// navigation multiplies by an average fanout estimate; filters apply a
    /// default selectivity; joins take the product over a distinct-values
    /// guess. Only the *relative* order of estimates matters here.
    pub fn estimate(&self, plan: &Plan) -> f64 {
        match plan {
            Plan::Scan { name, .. } => match name {
                Some(n) => self.count(n) as f64,
                None => self.elements as f64,
            },
            Plan::Child {
                input, test, deep, ..
            } => {
                let base = self.estimate(input);
                match test {
                    // Upper-bound the step by the population of the target
                    // tag; deep steps reach all of them, child steps an
                    // assumed half.
                    Some(t) => {
                        let target = self.count(t) as f64;
                        if *deep {
                            base.min(target).max(1.0) * (target / base.max(1.0)).max(1.0)
                        } else {
                            (base * (target / self.elements.max(1) as f64).max(0.01))
                                .max(target.min(base))
                        }
                    }
                    None => base * 3.0,
                }
            }
            Plan::Attr { input, .. } => self.estimate(input) * 0.8,
            Plan::Text { input, .. } => self.estimate(input) * 0.8,
            Plan::Filter { input, .. } => self.estimate(input) * 0.25,
            Plan::NotExistsChild { input, .. } => self.estimate(input) * 0.5,
            Plan::Product { left, right } => self.estimate(left) * self.estimate(right),
            Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
                let (l, r) = (self.estimate(left), self.estimate(right));
                // Equi-join estimate: product over the larger distinct side.
                l * r / l.max(r).max(1.0)
            }
            Plan::Project { input, .. } => self.estimate(input),
            Plan::Distinct { input } => self.estimate(input) * 0.9,
            Plan::Aggregate { input, keys, .. } => {
                if keys.is_empty() {
                    1.0
                } else {
                    (self.estimate(input) * 0.2).max(1.0)
                }
            }
        }
    }
}

/// [`optimize`] plus cardinality-aware join-side swapping: the estimated
/// smaller input becomes the hash build side (our executor builds the hash
/// table on the right).
pub fn optimize_with_stats(plan: &Plan, stats: &DocStats) -> Plan {
    let p = optimize(plan);
    swap_joins(p, stats)
}

fn swap_joins(p: Plan, stats: &DocStats) -> Plan {
    match p {
        Plan::HashJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            let left = Box::new(swap_joins(*left, stats));
            let right = Box::new(swap_joins(*right, stats));
            if stats.estimate(&left) < stats.estimate(&right) {
                // Smaller side to the right (build side).
                Plan::HashJoin {
                    left: right,
                    right: left,
                    lcol: rcol,
                    rcol: lcol,
                }
            } else {
                Plan::HashJoin {
                    left,
                    right,
                    lcol,
                    rcol,
                }
            }
        }
        Plan::NestedLoopJoin {
            left,
            right,
            lcol,
            rcol,
        } => Plan::NestedLoopJoin {
            left: Box::new(swap_joins(*left, stats)),
            right: Box::new(swap_joins(*right, stats)),
            lcol,
            rcol,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(swap_joins(*left, stats)),
            right: Box::new(swap_joins(*right, stats)),
        },
        Plan::Child {
            input,
            col,
            test,
            deep,
            out,
        } => Plan::Child {
            input: Box::new(swap_joins(*input, stats)),
            col,
            test,
            deep,
            out,
        },
        Plan::Attr {
            input,
            col,
            attr,
            out,
        } => Plan::Attr {
            input: Box::new(swap_joins(*input, stats)),
            col,
            attr,
            out,
        },
        Plan::Text { input, col, out } => Plan::Text {
            input: Box::new(swap_joins(*input, stats)),
            col,
            out,
        },
        Plan::Filter { input, col, pred } => Plan::Filter {
            input: Box::new(swap_joins(*input, stats)),
            col,
            pred,
        },
        Plan::NotExistsChild { input, col, test } => Plan::NotExistsChild {
            input: Box::new(swap_joins(*input, stats)),
            col,
            test,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(swap_joins(*input, stats)),
            cols,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(swap_joins(*input, stats)),
        },
        Plan::Aggregate {
            input,
            keys,
            func,
            col,
            out,
        } => Plan::Aggregate {
            input: Box::new(swap_joins(*input, stats)),
            keys,
            func,
            col,
            out,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::execute;
    use crate::translate::extract_to_plan;
    use gql_ssdm::generator::{greengrocer, GrocerConfig};
    use gql_xmlgl::builder::{RuleBuilder, C, Q};

    fn doc() -> Document {
        greengrocer(GrocerConfig {
            products: 50,
            vendors: 5,
            seed: 3,
        })
    }

    #[test]
    fn stats_count_tags() {
        let d = doc();
        let s = DocStats::collect(&d);
        assert_eq!(s.count("product"), 50);
        assert_eq!(s.count("vendor"), 55); // 50 product/vendor + 5 vendors/vendor
        assert_eq!(s.count("nonexistent"), 0);
        assert!(s.elements() > 150);
    }

    #[test]
    fn from_index_agrees_with_collect() {
        let d = doc();
        let collected = DocStats::collect(&d);
        let idx = gql_ssdm::DocIndex::build(&d);
        let projected = DocStats::from_index(&d, &idx);
        assert_eq!(projected.elements(), collected.elements());
        for tag in ["product", "vendor", "vendors", "name", "nonexistent"] {
            assert_eq!(projected.count(tag), collected.count(tag), "{tag}");
        }
    }

    #[test]
    fn scan_estimates_are_exact() {
        let d = doc();
        let s = DocStats::collect(&d);
        let scan = Plan::Scan {
            name: Some("product".into()),
            out: "p".into(),
        };
        assert_eq!(s.estimate(&scan), 50.0);
        let table = execute(&scan, &d).unwrap();
        assert_eq!(table.len(), 50);
    }

    #[test]
    fn join_swap_puts_smaller_side_right_and_keeps_answers() {
        let d = doc();
        let s = DocStats::collect(&d);
        // Big side: products; small side: the vendors section (5).
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("product")
                    .var("p")
                    .child(Q::elem("vendor").child(Q::text().var("v1"))),
            )
            .extract(
                Q::elem("vendors").child(
                    Q::elem("vendor")
                        .var("w")
                        .child(Q::elem("name").child(Q::text().var("v2"))),
                ),
            )
            .join("v1", "v2")
            .construct(C::elem("out"))
            .build()
            .unwrap();
        let plan = extract_to_plan(&rule).unwrap();
        let tuned = optimize_with_stats(&plan, &s);
        let baseline = execute(&plan, &d).unwrap().len();
        assert_eq!(execute(&tuned, &d).unwrap().len(), baseline);
        // The right (build) side of the tuned join is estimated smaller.
        if let Plan::HashJoin { left, right, .. } = &tuned {
            assert!(s.estimate(right) <= s.estimate(left), "{tuned}");
        } else {
            panic!("expected a join at the root: {tuned}");
        }
    }

    #[test]
    fn estimates_are_finite_and_positive_for_all_ops() {
        let d = doc();
        let s = DocStats::collect(&d);
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("product")
                    .var("p")
                    .child(
                        Q::elem("type").child(Q::text().pred(gql_xmlgl::ast::CmpOp::Eq, "fruit")),
                    )
                    .without(Q::elem("discontinued")),
            )
            .construct(C::elem("out"))
            .build()
            .unwrap();
        let plan = extract_to_plan(&rule).unwrap();
        let e = s.estimate(&plan);
        assert!(e.is_finite() && e >= 0.0);
    }
}
