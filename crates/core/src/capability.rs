//! Capability analysis: which language supports which feature.
//!
//! Experiment **T1** of the reproduction is the paper's comparison matrix
//! between WG-Log and XML-GL (we add the XPath baseline as a third column).
//! Rather than hard-coding the matrix, [`LanguageProfile`] states each
//! language's supported features next to the code that implements them, and
//! [`features_of_xmlgl`] / [`features_of_wglog`] analyse *concrete* queries
//! — so experiment **T2** (which of Q1–Q10 each language expresses) is
//! computed, not asserted.

use std::collections::BTreeSet;
use std::fmt;

use gql_wglog::rule as wg;
use gql_xmlgl::ast as xg;

/// The feature axes of the comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Feature {
    /// Selection by element tag / object type.
    Selection,
    /// Predicates on values (text, attributes).
    ValuePredicates,
    /// Conjunctive multi-branch patterns.
    Conjunction,
    /// Disjunction inside predicates.
    Disjunction,
    /// Negation ("has no such part").
    Negation,
    /// Equality joins on values.
    ValueJoin,
    /// Arbitrary-depth matching.
    DeepMatching,
    /// Aggregation (count/sum/min/max/avg).
    Aggregation,
    /// Restructuring / grouping of results.
    Restructuring,
    /// Recursion (fixpoint).
    Recursion,
    /// Regular path expressions over edges.
    RegularPaths,
    /// Document-order-sensitive matching.
    OrderedMatching,
    /// Wildcards over names/types.
    Wildcards,
    /// Requires a schema to operate.
    SchemaRequired,
    /// Can exploit a schema when present.
    SchemaAware,
    /// Update operations (insert/delete/set-attribute on the source).
    Updates,
    /// Evaluable over an event stream in constant memory (navigational core).
    Streaming,
}

impl Feature {
    pub const ALL: [Feature; 17] = [
        Feature::Selection,
        Feature::ValuePredicates,
        Feature::Conjunction,
        Feature::Disjunction,
        Feature::Negation,
        Feature::ValueJoin,
        Feature::DeepMatching,
        Feature::Aggregation,
        Feature::Restructuring,
        Feature::Recursion,
        Feature::RegularPaths,
        Feature::OrderedMatching,
        Feature::Wildcards,
        Feature::SchemaRequired,
        Feature::SchemaAware,
        Feature::Updates,
        Feature::Streaming,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Feature::Selection => "selection",
            Feature::ValuePredicates => "value predicates",
            Feature::Conjunction => "conjunction",
            Feature::Disjunction => "disjunction",
            Feature::Negation => "negation",
            Feature::ValueJoin => "value join",
            Feature::DeepMatching => "deep matching",
            Feature::Aggregation => "aggregation",
            Feature::Restructuring => "restructuring",
            Feature::Recursion => "recursion",
            Feature::RegularPaths => "regular paths",
            Feature::OrderedMatching => "ordered matching",
            Feature::Wildcards => "wildcards",
            Feature::SchemaRequired => "schema required",
            Feature::SchemaAware => "schema aware",
            Feature::Updates => "updates",
            Feature::Streaming => "streaming",
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A language column of the matrix.
#[derive(Debug, Clone)]
pub struct LanguageProfile {
    pub name: &'static str,
    pub supported: BTreeSet<Feature>,
}

impl LanguageProfile {
    pub fn supports(&self, f: Feature) -> bool {
        self.supported.contains(&f)
    }

    /// XML-GL as implemented by `gql-xmlgl`.
    pub fn xmlgl() -> Self {
        use Feature::*;
        LanguageProfile {
            name: "XML-GL",
            supported: [
                Selection,
                ValuePredicates,
                Conjunction,
                Disjunction,
                Negation,
                ValueJoin,
                DeepMatching,
                Aggregation,
                Restructuring,
                OrderedMatching,
                Wildcards,
                SchemaAware, // XML-GL can *express* schemas (F3)…
                // …but never requires one: no SchemaRequired.
                Updates, // the update extension (gql_xmlgl::update)
            ]
            .into_iter()
            .collect(),
        }
    }

    /// WG-Log as implemented by `gql-wglog`.
    pub fn wglog() -> Self {
        use Feature::*;
        LanguageProfile {
            name: "WG-Log",
            supported: [
                Selection,
                ValuePredicates,
                Conjunction,
                Negation,
                Recursion,
                RegularPaths,
                Wildcards,
                Restructuring, // object invention + member edges
                SchemaRequired,
                SchemaAware,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// The XPath 1.0 subset baseline.
    pub fn xpath() -> Self {
        use Feature::*;
        LanguageProfile {
            name: "XPath",
            supported: [
                Selection,
                ValuePredicates,
                Conjunction,
                Disjunction,
                Negation, // not() in predicates
                DeepMatching,
                Aggregation, // count()/sum() as expression results
                OrderedMatching,
                Wildcards,
                Streaming, // the navigational core runs over event streams
                           // (gql_ssdm::stream::StreamPath)
            ]
            .into_iter()
            .collect(),
        }
    }

    /// All three columns in presentation order.
    pub fn all() -> Vec<LanguageProfile> {
        vec![Self::wglog(), Self::xmlgl(), Self::xpath()]
    }
}

/// Features a concrete XML-GL rule uses.
pub fn features_of_xmlgl(rule: &xg::Rule) -> BTreeSet<Feature> {
    use Feature::*;
    let mut out = BTreeSet::new();
    out.insert(Selection);
    let g = &rule.extract;
    if g.roots.len() > 1 || g.nodes.len() > g.roots.len() {
        out.insert(Conjunction);
    }
    if !g.joins.is_empty() {
        out.insert(ValueJoin);
    }
    for (i, n) in g.nodes.iter().enumerate() {
        if !n.predicate.is_trivial() {
            out.insert(ValuePredicates);
            if n.predicate.clauses.iter().any(|c| c.len() > 1) {
                out.insert(Disjunction);
            }
        }
        if matches!(n.kind, xg::QNodeKind::Element(xg::NameTest::Wildcard)) {
            out.insert(Wildcards);
        }
        if g.ordered[i] {
            out.insert(OrderedMatching);
        }
        for e in &n.children {
            if e.deep {
                out.insert(DeepMatching);
            }
            if e.negated {
                out.insert(Negation);
            }
        }
    }
    for n in &rule.construct.nodes {
        match &n.kind {
            xg::CNodeKind::Aggregate { .. } => {
                out.insert(Aggregation);
            }
            xg::CNodeKind::GroupBy { .. } => {
                out.insert(Restructuring);
            }
            xg::CNodeKind::All { .. } | xg::CNodeKind::Copy { .. } => {
                out.insert(Restructuring);
            }
            _ => {}
        }
    }
    out
}

/// Features a concrete WG-Log program uses.
pub fn features_of_wglog(program: &wg::Program) -> BTreeSet<Feature> {
    use Feature::*;
    let mut out = BTreeSet::new();
    out.insert(Selection);
    // Recursion: some rule observes what some rule (possibly itself,
    // possibly another) derives — detected via stratification structure.
    let strata = gql_wglog::eval::stratify(program);
    if let Ok(strata) = &strata {
        if strata.iter().any(|s| s.len() > 1) {
            out.insert(Recursion);
        }
    }
    for rule in &program.rules {
        let qcount = rule.query_nodes().count();
        if qcount > 1 {
            out.insert(Conjunction);
        }
        for id in rule.ids() {
            let n = rule.node(id);
            if !n.constraints.is_empty() {
                out.insert(ValuePredicates);
            }
            if n.test == wg::TypeTest::Any {
                out.insert(Wildcards);
            }
        }
        // Self-recursion within one rule.
        let produced: Vec<&str> = rule
            .edges
            .iter()
            .filter(|e| e.color == wg::Color::Construct)
            .filter_map(|e| match &e.label {
                wg::LabelTest::Label(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        for e in &rule.edges {
            match e.color {
                wg::Color::Query => {
                    if e.negated {
                        out.insert(Negation);
                    }
                    match &e.label {
                        wg::LabelTest::Regex(_) => {
                            out.insert(RegularPaths);
                        }
                        wg::LabelTest::Any => {
                            out.insert(Wildcards);
                        }
                        wg::LabelTest::Label(l) => {
                            if produced.contains(&l.as_str()) {
                                out.insert(Recursion);
                            }
                        }
                    }
                }
                wg::Color::Construct => {}
            }
        }
        if rule.construct_nodes().next().is_some() {
            out.insert(Restructuring);
        }
    }
    out
}

/// Can a language (by profile) express a query that uses `features`?
pub fn expressible(profile: &LanguageProfile, features: &BTreeSet<Feature>) -> bool {
    features.iter().all(|f| {
        profile.supports(*f) || *f == Feature::SchemaAware || *f == Feature::SchemaRequired
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_wglog::rule::RuleBuilder as WgBuilder;
    use gql_xmlgl::ast::{AggFunc, CmpOp};
    use gql_xmlgl::builder::{RuleBuilder, C, Q};

    #[test]
    fn profiles_reflect_the_papers_headline_differences() {
        let xmlgl = LanguageProfile::xmlgl();
        let wglog = LanguageProfile::wglog();
        // The two headline asymmetries of the comparison:
        assert!(xmlgl.supports(Feature::ValueJoin) && !wglog.supports(Feature::ValueJoin));
        assert!(wglog.supports(Feature::Recursion) && !xmlgl.supports(Feature::Recursion));
        // Schema stance.
        assert!(wglog.supports(Feature::SchemaRequired));
        assert!(!xmlgl.supports(Feature::SchemaRequired));
        assert!(xmlgl.supports(Feature::SchemaAware));
        // Aggregation.
        assert!(xmlgl.supports(Feature::Aggregation) && !wglog.supports(Feature::Aggregation));
    }

    #[test]
    fn xmlgl_feature_analysis() {
        let rule = RuleBuilder::new()
            .extract(
                Q::elem("book")
                    .var("b")
                    .child(
                        Q::attr("year")
                            .pred(CmpOp::Ge, "1999")
                            .or_pred(CmpOp::Eq, "1990"),
                    )
                    .deep_child(Q::elem("last").var("l"))
                    .without(Q::elem("errata")),
            )
            .construct(C::elem("out").child(C::agg(AggFunc::Count, "b")))
            .build()
            .unwrap();
        let f = features_of_xmlgl(&rule);
        for expected in [
            Feature::Selection,
            Feature::ValuePredicates,
            Feature::Disjunction,
            Feature::DeepMatching,
            Feature::Negation,
            Feature::Conjunction,
            Feature::Aggregation,
        ] {
            assert!(f.contains(&expected), "missing {expected}");
        }
        assert!(!f.contains(&Feature::Recursion));
        assert!(!f.contains(&Feature::ValueJoin));
    }

    #[test]
    fn wglog_feature_analysis_detects_recursion() {
        let base = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "link", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let step = WgBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_node("c", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .query_edge("b", "link", "c")
            .unwrap()
            .construct_edge("a", "reach", "c")
            .unwrap()
            .build()
            .unwrap();
        let p = wg::Program {
            rules: vec![base, step],
            goal: None,
        };
        let f = features_of_wglog(&p);
        assert!(f.contains(&Feature::Recursion));
        assert!(f.contains(&Feature::Conjunction));
    }

    #[test]
    fn expressibility_checks() {
        let xmlgl = LanguageProfile::xmlgl();
        let wglog = LanguageProfile::wglog();
        let mut recursive = BTreeSet::new();
        recursive.insert(Feature::Selection);
        recursive.insert(Feature::Recursion);
        assert!(!expressible(&xmlgl, &recursive));
        assert!(expressible(&wglog, &recursive));
        let mut joiny = BTreeSet::new();
        joiny.insert(Feature::Selection);
        joiny.insert(Feature::ValueJoin);
        assert!(expressible(&xmlgl, &joiny));
        assert!(!expressible(&wglog, &joiny));
    }

    #[test]
    fn all_features_named_distinctly() {
        let names: std::collections::HashSet<&str> =
            Feature::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Feature::ALL.len());
    }
}
