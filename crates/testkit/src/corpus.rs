//! The replayable regression corpus.
//!
//! Every bug the fuzzer ever finds becomes a permanent regression test: a
//! minimized case is appended as a `.case` file under `tests/corpus/` and
//! the `corpus.rs` integration test replays the whole directory in tier-1
//! CI. The format is line-oriented `key: value` (documents and queries are
//! one-liners by construction — the serializer emits single-line XML and
//! the generators emit single-line sources):
//!
//! ```text
//! # free-form comment lines
//! kind: xmlgl
//! oracle: indexed-vs-scan
//! seed: 42
//! query: rule { extract { a as $x } construct { out { all $x } } }
//! doc: <r><a/></r>
//! ```
//!
//! `kind` selects the oracle battery (an entry of [`Generator::ALL`]);
//! `oracle` and `seed` are documentation (the replay runs the *whole*
//! battery — a fixed bug must stay fixed under every oracle).
//!
//! A case may also carry a `budget:` line — space-separated `key=value`
//! tokens over `timeout-ms`, `max-rounds`, `max-matches`, `max-nodes` and
//! `max-workers`. Budget-bearing cases are *pathological by construction*
//! (exploding fixpoints, combinatorial joins): replay runs them through
//! [`Engine::run_bounded`] and passes only when the budget trips with a
//! clean, non-degenerate [`CoreError::Budget`] report — the unbounded
//! oracle battery would hang on them.

use std::path::{Path, PathBuf};

use gql_core::engine::{Engine, QueryKind};
use gql_core::{Budget, CoreError};

use crate::fuzz::{check_case, Failure, Generator};
use crate::generators::Intent;
use crate::oracle;

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Generator name: `xmlgl` | `wglog` | `xpath` | `intent`.
    pub kind: String,
    /// Which oracle originally failed (documentation only).
    pub oracle: String,
    /// The generator seed that found the case, if any.
    pub seed: Option<u64>,
    /// Query source (or intent descriptor), one line.
    pub query: String,
    /// Document XML, one line.
    pub doc: String,
    /// Budget spec for pathological cases (see [`parse_budget_spec`]);
    /// `None` replays the ordinary oracle battery.
    pub budget: Option<String>,
}

/// Parse a corpus `budget:` spec — space-separated `key=value` tokens —
/// into a [`Budget`]. Rejects unknown keys, unparseable values and specs
/// that set no limit at all (an unlimited "budget" on a pathological case
/// would hang the tier-1 suite).
pub fn parse_budget_spec(spec: &str) -> Result<Budget, String> {
    let mut b = Budget::unlimited();
    for tok in spec.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad budget token (want key=value): {tok}"))?;
        let n: u64 = v
            .parse()
            .map_err(|_| format!("bad budget value in: {tok}"))?;
        b = match k {
            "timeout-ms" => b.with_timeout_ms(n),
            "max-rounds" => b.with_max_rounds(n),
            "max-matches" => b.with_max_matches(n),
            "max-nodes" => b.with_max_nodes(n),
            "max-workers" => b.with_max_workers(n as usize),
            _ => return Err(format!("unknown budget key: {k}")),
        };
    }
    if b.is_unlimited() {
        return Err("budget spec sets no limits".into());
    }
    Ok(b)
}

impl CorpusCase {
    /// Parse the `key: value` format. Unknown keys are ignored (forward
    /// compatibility); `kind`, `query` and `doc` are required.
    pub fn parse(text: &str) -> Result<CorpusCase, String> {
        let mut kind = None;
        let mut oracle = String::new();
        let mut seed = None;
        let mut query = None;
        let mut doc = None;
        let mut budget = None;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                return Err(format!("malformed corpus line (no `key:`): {line}"));
            };
            let value = value.trim_start().to_string();
            match key.trim() {
                "kind" => kind = Some(value),
                "oracle" => oracle = value,
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad seed: {value}"))?,
                    )
                }
                "query" => query = Some(value),
                "doc" => doc = Some(value),
                "budget" => {
                    parse_budget_spec(&value)?; // reject malformed specs at load
                    budget = Some(value);
                }
                _ => {}
            }
        }
        let kind = kind.ok_or("corpus case missing `kind:`")?;
        if Generator::from_name(&kind).is_none() {
            return Err(format!("unknown corpus kind: {kind}"));
        }
        Ok(CorpusCase {
            kind,
            oracle,
            seed,
            query: query.ok_or("corpus case missing `query:`")?,
            doc: doc.ok_or("corpus case missing `doc:`")?,
            budget,
        })
    }

    /// Render back to the file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("kind: {}\n", self.kind));
        if !self.oracle.is_empty() {
            out.push_str(&format!("oracle: {}\n", self.oracle));
        }
        if let Some(s) = self.seed {
            out.push_str(&format!("seed: {s}\n"));
        }
        out.push_str(&format!("query: {}\n", self.query));
        out.push_str(&format!("doc: {}\n", self.doc));
        if let Some(b) = &self.budget {
            out.push_str(&format!("budget: {b}\n"));
        }
        out
    }

    /// Replay: run the kind's whole oracle battery on the stored inputs —
    /// or, for budget-bearing cases, the bounded replay (see the module
    /// docs).
    pub fn replay(&self) -> Result<(), String> {
        if let Some(spec) = &self.budget {
            return self.replay_bounded(&parse_budget_spec(spec)?);
        }
        let generator = Generator::from_name(&self.kind)
            .ok_or_else(|| format!("unknown corpus kind: {}", self.kind))?;
        check_case(generator, &self.doc, &self.query)
    }

    /// The case's query as an engine [`QueryKind`], if its source parses.
    /// Uses the unchecked parsers — the engine's static-analysis gate is
    /// part of what replays exercise. Intent descriptors lower to their
    /// XPath rendering (the concurrency oracle and the load driver replay
    /// them through the service the same way).
    pub fn query_kind(&self) -> Result<QueryKind, String> {
        match self.kind.as_str() {
            "xmlgl" => gql_xmlgl::dsl::parse_unchecked(&self.query)
                .map(QueryKind::XmlGl)
                .map_err(|e| format!("XML-GL query does not parse: {e}")),
            "wglog" => gql_wglog::dsl::parse_unchecked(&self.query)
                .map(QueryKind::WgLog)
                .map_err(|e| format!("WG-Log query does not parse: {e}")),
            "xpath" => Ok(QueryKind::XPath(self.query.clone())),
            "intent" => Intent::parse(&self.query)
                .map(|i| QueryKind::XPath(i.xpath()))
                .ok_or_else(|| "intent descriptor does not parse".to_string()),
            other => Err(format!("unknown corpus kind: {other}")),
        }
    }

    /// Bounded replay of a pathological case: the budget must trip with a
    /// clean, non-degenerate report. Completing under the budget fails too
    /// — the case would no longer pin the behaviour it was added for.
    fn replay_bounded(&self, budget: &Budget) -> Result<(), String> {
        let doc =
            oracle::normalize(&self.doc).ok_or("budgeted case: stored document does not parse")?;
        let kind = self
            .query_kind()
            .map_err(|e| format!("budgeted case: {e}"))?;
        match Engine::new().run_bounded(&kind, &doc, budget) {
            Err(CoreError::Budget(g)) if !g.report.phase.is_empty() => Ok(()),
            Err(CoreError::Budget(g)) => Err(format!(
                "budgeted case tripped with a degenerate report: {g}"
            )),
            Ok(_) => Err(
                "budgeted pathological case completed without tripping its budget \
                          (tighten the budget or retire the case)"
                    .into(),
            ),
            Err(e) => Err(format!(
                "budgeted case failed outside the budget system: {e}"
            )),
        }
    }
}

impl From<&Failure> for CorpusCase {
    fn from(f: &Failure) -> CorpusCase {
        CorpusCase {
            kind: f.generator.to_string(),
            oracle: f.message.lines().next().unwrap_or("").to_string(),
            seed: Some(f.seed),
            query: f.query.clone(),
            doc: f.doc.clone(),
            budget: None,
        }
    }
}

/// Load every `.case` file in a directory, sorted by file name so replay
/// order (and failure output) is stable.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    let mut out = Vec::new();
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let case = CorpusCase::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let case = CorpusCase {
            kind: "xmlgl".into(),
            oracle: "indexed-vs-scan".into(),
            seed: Some(42),
            query: "rule { extract { a as $x } construct { out { all $x } } }".into(),
            doc: "<r><a/></r>".into(),
            budget: None,
        };
        let text = case.render();
        assert_eq!(CorpusCase::parse(&text), Ok(case));
    }

    #[test]
    fn budget_specs_parse_render_and_reject_nonsense() {
        let text =
            "kind: xpath\nquery: //a\ndoc: <r><a/></r>\nbudget: max-rounds=4 max-matches=100\n";
        let case = CorpusCase::parse(text).expect("parses");
        assert_eq!(case.budget.as_deref(), Some("max-rounds=4 max-matches=100"));
        assert_eq!(CorpusCase::parse(&case.render()), Ok(case));
        // Malformed specs are rejected at load, not at replay.
        assert!(
            CorpusCase::parse("kind: xpath\nquery: //a\ndoc: <a/>\nbudget: max-bogus=1\n").is_err()
        );
        assert!(CorpusCase::parse("kind: xpath\nquery: //a\ndoc: <a/>\nbudget: \n").is_err());
        assert!(parse_budget_spec("max-rounds=x").is_err());
    }

    #[test]
    fn comments_and_unknown_keys_are_tolerated() {
        let text = "# why this case exists\nkind: xpath\nfuture-key: whatever\nquery: //a\ndoc: <r><a/></r>\n";
        let case = CorpusCase::parse(text).expect("parses");
        assert_eq!(case.kind, "xpath");
        assert_eq!(case.seed, None);
        assert!(case.replay().is_ok());
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(CorpusCase::parse("kind: xpath\nquery: //a\n").is_err());
        assert!(CorpusCase::parse("query: //a\ndoc: <a/>\n").is_err());
        assert!(CorpusCase::parse("kind: nope\nquery: x\ndoc: <a/>\n").is_err());
    }
}
