//! Differential and metamorphic oracles.
//!
//! Each checker takes a document and a query source and returns
//! `Err(message)` only on a *real disagreement between two paths that must
//! agree* (or a broken metamorphic law). Inputs the engines legitimately
//! reject — syntax errors, analyzer-rejected programs — are vacuous
//! (`Ok`), which is exactly what the shrinker needs: a shrunk candidate
//! that merely breaks the parse does not count as "still failing".
//!
//! The oracle matrix (who is checked against whom) is documented in
//! DESIGN.md's testkit section.

use gql_analyze::Analyzer;
use gql_core::engine::{Engine, QueryKind};
use gql_ssdm::{DocIndex, Document, Summary};
use gql_wglog::eval::FixpointMode;
use gql_wglog::Instance;
use gql_xmlgl::eval::{
    construct_rule, distinct_bound, match_rule_scan, match_rule_with, MatchMode,
};
use gql_xpath::{Item, XValue};

use crate::generators::Intent;

// ----------------------------------------------------------------------
// Shared helpers
// ----------------------------------------------------------------------

/// Parse and normalise a document to its serialize/parse fixed point, so
/// re-serialization oracles compare like with like (a first parse drops
/// whitespace-only text nodes).
pub fn normalize(xml: &str) -> Option<Document> {
    let once = Document::parse_str(xml).ok()?;
    Document::parse_str(&once.to_xml_string()).ok()
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 27)
}

/// An order-independent fingerprint of a WG-Log instance: per-object
/// signatures (type + sorted attributes, refined twice over labelled in-
/// and out-edges) plus edge signatures. Two isomorphic instances always
/// fingerprint equally, whatever order their objects were invented in —
/// which is what lets us compare naive against semi-naive fixpoints.
pub fn instance_fingerprint(db: &Instance) -> (Vec<u64>, Vec<(u64, u64, u64)>) {
    let n = db.object_count();
    let mut sig = vec![0u64; n];
    for (id, o) in db.objects() {
        let mut attrs: Vec<u64> = o.attrs.iter().map(|(k, v)| mix(fnv(k), fnv(v))).collect();
        attrs.sort_unstable();
        let mut h = fnv(&o.ty);
        for a in attrs {
            h = mix(h, a);
        }
        sig[id.index()] = h;
    }
    for _round in 0..2 {
        let mut outs: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut ins: Vec<Vec<u64>> = vec![Vec::new(); n];
        for e in db.edges() {
            let l = fnv(&e.label);
            outs[e.from.index()].push(mix(l, sig[e.to.index()]));
            ins[e.to.index()].push(mix(l.rotate_left(17), sig[e.from.index()]));
        }
        let mut next = vec![0u64; n];
        for i in 0..n {
            outs[i].sort_unstable();
            ins[i].sort_unstable();
            let mut h = sig[i];
            for &o in &outs[i] {
                h = mix(h, o);
            }
            h = mix(h, 0xA5A5);
            for &x in &ins[i] {
                h = mix(h, x);
            }
            next[i] = h;
        }
        sig = next;
    }
    let mut objs = sig.clone();
    objs.sort_unstable();
    let mut edges: Vec<(u64, u64, u64)> = db
        .edges()
        .iter()
        .map(|e| (fnv(&e.label), sig[e.from.index()], sig[e.to.index()]))
        .collect();
    edges.sort_unstable();
    (objs, edges)
}

// ----------------------------------------------------------------------
// Tracing: observational transparency and determinism
// ----------------------------------------------------------------------

/// Tracing must be observationally free: a profiled run returns the exact
/// bytes of a plain run, attaches a non-empty profile, and reports the same
/// span/counter shape every time for the same inputs (durations vary; the
/// shape may not).
pub fn check_trace_case(doc: &Document, query: &QueryKind) -> Result<(), String> {
    let engine = Engine::new();
    let plain = engine.run(query, doc);
    let profiled = engine.run_profiled(query, doc);
    let (plain, profiled) = match (plain, profiled) {
        (Ok(p), Ok(t)) => (p, t),
        (Err(_), Err(_)) => return Ok(()), // both reject alike
        (p, t) => {
            return Err(format!(
                "trace-transparency: one path errored, the other did not \
                 (plain ok: {}, profiled ok: {})",
                p.is_ok(),
                t.is_ok()
            ))
        }
    };
    if plain.output.to_xml_string() != profiled.output.to_xml_string()
        || plain.result_count != profiled.result_count
    {
        return Err("trace-transparency: profiled run diverged from plain run".into());
    }
    let profile = profiled
        .profile
        .ok_or("trace-presence: run_profiled attached no profile")?;
    if profile.roots.is_empty() {
        return Err("trace-presence: profile has no spans".into());
    }
    let again = engine
        .run_profiled(query, doc)
        .map_err(|e| format!("trace-determinism: repeat profiled run failed: {e}"))?
        .profile
        .ok_or("trace-determinism: repeat run attached no profile")?;
    if again.shape() != profile.shape() {
        return Err(format!(
            "trace-determinism: profile shape changed between identical runs\nfirst:\n{}second:\n{}",
            profile.shape(),
            again.shape()
        ));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Planning: the plan cache must be answer-invisible
// ----------------------------------------------------------------------

/// Cached-plan re-execution must be byte-identical to fresh planning, in
/// every cache state the engine can reach:
///
/// * *warm vs cold* — a second run on the same engine (cache hit) returns
///   the exact bytes of the first (cache miss), and of a fresh engine;
/// * *post-mutation invalidation* — after the document changes, the cache
///   keys apart (content fingerprint) and the answer tracks the new
///   document, not the stale plan;
/// * *corrupt entry → replan* — a corrupted cache entry is detected,
///   replanned, and still answers byte-identically.
///
/// Error cases must error identically warm and cold — a cached plan may
/// not *un*-reject a query.
pub fn check_plan_cache_case(doc: &Document, query: &QueryKind) -> Result<(), String> {
    use gql_guard::fault::{self, FaultPlan};
    let engine = Engine::new();
    let (cold, warm) = (engine.run(query, doc), engine.run(query, doc));
    let cold = match (cold, warm) {
        (Ok(c), Ok(w)) => {
            let (c_xml, w_xml) = (c.output.to_xml_string(), w.output.to_xml_string());
            if c_xml != w_xml {
                return Err(format!(
                    "plan-cache-warm: cached plan changed the answer\ncold: {c_xml}\nwarm: {w_xml}"
                ));
            }
            if engine.plan_cache_stats().hits == 0 {
                return Err("plan-cache-warm: second identical run did not hit the cache".into());
            }
            c
        }
        (Err(c), Err(w)) => {
            if format!("{c}") != format!("{w}") {
                return Err(format!(
                    "plan-cache-warm: cached plan changed the error\ncold: {c}\nwarm: {w}"
                ));
            }
            return Ok(()); // rejected queries have no answer to compare further
        }
        (c, w) => {
            return Err(format!(
                "plan-cache-warm: one run errored, the other did not \
                 (cold ok: {}, warm ok: {})",
                c.is_ok(),
                w.is_ok()
            ))
        }
    };
    // Post-mutation invalidation: the same engine on a changed document
    // must answer like a fresh engine on that document.
    let mut mutated = doc.clone();
    let root = mutated.root();
    mutated.add_element(root, "plan-cache-probe");
    let stale = engine.run(query, &mutated);
    let fresh = Engine::new().run(query, &mutated);
    match (stale, fresh) {
        (Ok(s), Ok(f)) => {
            let (s_xml, f_xml) = (s.output.to_xml_string(), f.output.to_xml_string());
            if s_xml != f_xml {
                return Err(format!(
                    "plan-cache-invalidation: engine with a cached plan diverged from a \
                     fresh engine after a document mutation\ncached-engine: {s_xml}\nfresh: {f_xml}"
                ));
            }
        }
        (Err(s), Err(f)) => {
            if format!("{s}") != format!("{f}") {
                return Err(format!(
                    "plan-cache-invalidation: errors diverged after mutation\n\
                     cached-engine: {s}\nfresh: {f}"
                ));
            }
        }
        (s, f) => {
            return Err(format!(
                "plan-cache-invalidation: one run errored, the other did not \
                 (cached-engine ok: {}, fresh ok: {})",
                s.is_ok(),
                f.is_ok()
            ))
        }
    }
    // Corrupt entry → replan: the warm engine's entry for the original
    // document is corrupted in place; the run must detect it, replan, and
    // still return the cold run's bytes.
    let replans_before = engine.plan_cache_stats().replans;
    let faulted = fault::with_plan(FaultPlan::corrupt_plan_cache(), || engine.run(query, doc));
    match faulted {
        Ok(f) => {
            let (c_xml, f_xml) = (cold.output.to_xml_string(), f.output.to_xml_string());
            if c_xml != f_xml {
                return Err(format!(
                    "plan-cache-replan: replanned run changed the answer\n\
                     baseline: {c_xml}\nreplanned: {f_xml}"
                ));
            }
        }
        Err(e) => {
            return Err(format!(
                "plan-cache-replan: corrupt cache entry turned a clean run into an error: {e}"
            ))
        }
    }
    if engine.plan_cache_stats().replans <= replans_before {
        return Err("plan-cache-replan: corrupt entry was not detected as a replan".into());
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Static inference: summary-derived claims must be sound
// ----------------------------------------------------------------------

/// Check one "statically empty ⇒ evaluates empty" / "count ≤ bound" pair.
fn infer_claim(
    what: &str,
    statically_empty: bool,
    bound: Option<u64>,
    actual: usize,
) -> Result<(), String> {
    if statically_empty && actual != 0 {
        return Err(format!(
            "infer-soundness: {what} is statically empty under the summary \
             but evaluates to {actual} result(s)"
        ));
    }
    if let Some(b) = bound {
        if actual as u64 > b {
            return Err(format!(
                "infer-soundness: {what} evaluates to {actual} result(s), \
                 above the inferred upper bound {b}"
            ));
        }
    }
    Ok(())
}

/// The two summary construction paths — a direct document walk and the
/// DocIndex-postings shortcut the engine cache uses — must agree.
fn check_summary_paths(doc: &Document, idx: &DocIndex) -> Result<(), String> {
    let walked = Summary::build(doc);
    let derived = Summary::from_index(doc, idx);
    if walked.stats() != derived.stats() {
        return Err(format!(
            "summary-vs-index: walked {:?} != index-derived {:?}",
            walked.stats(),
            derived.stats()
        ));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// XML-GL: every dual matcher/construct/engine path
// ----------------------------------------------------------------------

/// The full XML-GL oracle battery for one `(document, program)` case.
pub fn check_xmlgl_case(doc: &Document, src: &str) -> Result<(), String> {
    let Ok(program) = gql_xmlgl::dsl::parse_unchecked(src) else {
        return Ok(()); // legitimately rejected input is vacuous
    };
    // Metamorphic: print → parse is the identity (up to printing).
    let printed = gql_xmlgl::dsl::print(&program);
    let reparsed = gql_xmlgl::dsl::parse_unchecked(&printed)
        .map_err(|e| format!("print-parse: printed program fails to reparse: {e}\n{printed}"))?;
    let reprinted = gql_xmlgl::dsl::print(&reparsed);
    if reprinted != printed {
        return Err(format!(
            "print-parse: not a fixed point\nfirst:  {printed}\nsecond: {reprinted}"
        ));
    }
    if Analyzer::new().analyze_xmlgl(&program).has_errors() {
        return Ok(()); // statically rejected; every path refuses alike
    }
    let idx = DocIndex::build(doc);
    check_summary_paths(doc, &idx)?;
    let inf = gql_infer::infer_xmlgl(&program, &Summary::build(doc));
    let mut scan_out = Document::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let scan = match_rule_scan(rule, doc);
        // Static inference soundness: a rule the summary proves empty has
        // no bindings, and the rule's binding count never exceeds its
        // inferred upper bound.
        infer_claim(
            &format!("xmlgl rule {ri}"),
            inf.empty_rules.get(ri).copied().unwrap_or(false),
            inf.cards.result_bound(ri),
            scan.len(),
        )?;
        for (mode, label) in [
            (MatchMode::Auto, "indexed"),
            (MatchMode::Sequential, "sequential"),
            (MatchMode::Parallel, "parallel"),
        ] {
            let got = match_rule_with(rule, doc, &idx, mode);
            if got != scan {
                return Err(format!(
                    "{label}-vs-scan: rule {ri} bindings diverged ({} vs {})",
                    got.len(),
                    scan.len()
                ));
            }
        }
        construct_rule(rule, doc, &scan, &mut scan_out)
            .map_err(|e| format!("construct: scan-side construct failed: {e}"))?;
    }
    let lazy = gql_xmlgl::eval::run(&program, doc)
        .map_err(|e| format!("run: lazy run failed after clean matching: {e}"))?;
    let indexed = gql_xmlgl::eval::run_with_index(&program, doc, &idx)
        .map_err(|e| format!("run: indexed run failed after clean matching: {e}"))?;
    if indexed.to_xml_string() != lazy.to_xml_string() {
        return Err("indexed-vs-lazy: result documents diverged".into());
    }
    if scan_out.to_xml_string() != lazy.to_xml_string() {
        return Err("construct-vs-run: scan-constructed document diverged from run()".into());
    }
    // Metamorphic: re-serialization invariance.
    let re = Document::parse_str(&doc.to_xml_string())
        .map_err(|e| format!("reserialize: document no longer parses: {e}"))?;
    let re_out = gql_xmlgl::eval::run(&program, &re)
        .map_err(|e| format!("reserialize: run on reparsed document failed: {e}"))?;
    if re_out.to_xml_string() != lazy.to_xml_string() {
        return Err("reserialize: results changed after serialize→parse of the document".into());
    }
    // Engine layer: prebuilt (preloaded) index vs cold lazy path.
    let q = QueryKind::XmlGl(program.clone());
    let cold = Engine::new().run(&q, doc);
    let mut warm_engine = Engine::new();
    warm_engine.preload(doc);
    let warm = warm_engine.run(&q, doc);
    match (cold, warm) {
        (Ok(c), Ok(w)) => {
            if c.output.to_xml_string() != w.output.to_xml_string()
                || c.result_count != w.result_count
            {
                return Err("engine-warm-vs-cold: preloaded and cold runs diverged".into());
            }
        }
        (Err(_), Err(_)) => {}
        (c, w) => {
            return Err(format!(
                "engine-warm-vs-cold: one path errored, the other did not \
                 (cold ok: {}, warm ok: {})",
                c.is_ok(),
                w.is_ok()
            ))
        }
    }
    check_trace_case(doc, &q)?;
    check_plan_cache_case(doc, &q)?;
    // Translation: where the partial XML-GL→WG-Log translator applies, the
    // translated program must at least evaluate cleanly over the same data.
    if program.rules.len() == 1 {
        if let Ok(wg) = gql_core::translate::xmlgl_to_wglog(&program.rules[0]) {
            let db = Instance::from_document(doc);
            gql_wglog::eval::run(&wg, &db)
                .map_err(|e| format!("translate: translated WG-Log program failed: {e}"))?;
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// WG-Log: fixpoint modes and loader invariance
// ----------------------------------------------------------------------

/// The WG-Log oracle battery for one `(document, program)` case.
pub fn check_wglog_case(doc: &Document, src: &str) -> Result<(), String> {
    let Ok(program) = gql_wglog::dsl::parse_unchecked(src) else {
        return Ok(());
    };
    let printed = gql_wglog::dsl::print(&program);
    let reparsed = gql_wglog::dsl::parse_unchecked(&printed)
        .map_err(|e| format!("print-parse: printed program fails to reparse: {e}\n{printed}"))?;
    let reprinted = gql_wglog::dsl::print(&reparsed);
    if reprinted != printed {
        return Err(format!(
            "print-parse: not a fixed point\nfirst:  {printed}\nsecond: {reprinted}"
        ));
    }
    if Analyzer::new().analyze_wglog(&program).has_errors() {
        return Ok(());
    }
    let db = Instance::from_document(doc);
    let naive = gql_wglog::eval::run_with(&program, &db, FixpointMode::Naive);
    let semi = gql_wglog::eval::run_with(&program, &db, FixpointMode::SemiNaive);
    let (naive_db, semi_db) = match (naive, semi) {
        (Ok((n, _)), Ok((s, _))) => (n, s),
        (Err(_), Err(_)) => return Ok(()), // both reject alike
        (n, s) => {
            return Err(format!(
                "naive-vs-seminaive: one mode errored, the other did not \
                 (naive ok: {}, semi ok: {})",
                n.is_ok(),
                s.is_ok()
            ))
        }
    };
    if instance_fingerprint(&naive_db) != instance_fingerprint(&semi_db) {
        return Err(format!(
            "naive-vs-seminaive: result instances are not isomorphic \
             ({} objects / {} edges vs {} / {})",
            naive_db.object_count(),
            naive_db.edge_count(),
            semi_db.object_count(),
            semi_db.edge_count()
        ));
    }
    check_summary_paths(doc, &DocIndex::build(doc))?;
    // Static inference soundness against the computed fixpoint: an empty
    // goal claim means no goal-typed object exists, and the goal bound
    // dominates the concrete goal population.
    if let Some(goal) = &program.goal {
        let inf = gql_infer::infer_wglog(&program, &Summary::build(doc));
        let goal_count = semi_db.objects().filter(|(_, o)| o.ty == *goal).count();
        infer_claim(
            &format!("wglog goal '{goal}'"),
            inf.is_statically_empty(),
            inf.cards.result_bound(0),
            goal_count,
        )?;
    }
    // Metamorphic: the loader is invariant under document re-serialization.
    let re = Document::parse_str(&doc.to_xml_string())
        .map_err(|e| format!("reserialize: document no longer parses: {e}"))?;
    let re_db = Instance::from_document(&re);
    let re_run = gql_wglog::eval::run_with(&program, &re_db, FixpointMode::SemiNaive)
        .map_err(|e| format!("reserialize: run on reparsed document failed: {e}"))?
        .0;
    if instance_fingerprint(&re_run) != instance_fingerprint(&semi_db) {
        return Err("reserialize: results changed after serialize→parse of the document".into());
    }
    check_trace_case(doc, &QueryKind::WgLog(program.clone()))?;
    check_plan_cache_case(doc, &QueryKind::WgLog(program.clone()))?;
    Ok(())
}

// ----------------------------------------------------------------------
// XPath: indexed vs lazy evaluation
// ----------------------------------------------------------------------

fn xvalue_eq(a: &XValue, b: &XValue) -> bool {
    match (a, b) {
        (XValue::Num(x), XValue::Num(y)) => (x.is_nan() && y.is_nan()) || x == y,
        _ => a == b,
    }
}

/// A structural, node-identity-free projection of an XPath result, for
/// comparing runs over *different* parses of the same document.
fn observe(doc: &Document, v: &XValue) -> String {
    match v {
        XValue::Nodes(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|it| match *it {
                    Item::Node(n) => format!(
                        "{}({})",
                        doc.name(n).unwrap_or("#text"),
                        doc.text_content(n)
                    ),
                    Item::Attr { owner, index } => doc
                        .attrs(owner)
                        .nth(index)
                        .map(|(k, val)| format!("@{k}={val}"))
                        .unwrap_or_default(),
                })
                .collect();
            format!("nodes[{}]", parts.join(","))
        }
        XValue::Num(n) => format!("num {n}"),
        XValue::Str(s) => format!("str {s}"),
        XValue::Bool(b) => format!("bool {b}"),
    }
}

/// The XPath oracle battery for one `(document, expression)` case.
pub fn check_xpath_case(doc: &Document, src: &str) -> Result<(), String> {
    let Ok(expr) = gql_xpath::parse(src) else {
        return Ok(());
    };
    // Metamorphic: Display → parse is the identity on the AST.
    let printed = expr.to_string();
    let reparsed = gql_xpath::parse(&printed)
        .map_err(|e| format!("print-parse: printed expression fails to reparse: {e}\n{printed}"))?;
    if reparsed != expr {
        return Err(format!(
            "print-parse: AST changed through printing\n{printed}"
        ));
    }
    let idx = DocIndex::build(doc);
    check_summary_paths(doc, &idx)?;
    let lazy = gql_xpath::evaluate(doc, &expr);
    let fast = gql_xpath::evaluate_with_index(doc, &expr, &idx);
    let value = match (lazy, fast) {
        (Ok(l), Ok(f)) => {
            if !xvalue_eq(&l, &f) {
                return Err(format!(
                    "indexed-vs-lazy: values diverged\nlazy:    {}\nindexed: {}",
                    observe(doc, &l),
                    observe(doc, &f)
                ));
            }
            l
        }
        (Err(_), Err(_)) => return Ok(()),
        (l, f) => {
            return Err(format!(
                "indexed-vs-lazy: one path errored, the other did not \
                 (lazy ok: {}, indexed ok: {})",
                l.is_ok(),
                f.is_ok()
            ))
        }
    };
    // Static inference soundness: a statically-empty path selects nothing
    // and a node-set never outgrows its inferred bound. (Scalar results
    // satisfy the bound-of-1 claim by construction.)
    let inf = gql_infer::infer_xpath(&expr, &Summary::build(doc));
    let result_size = match &value {
        XValue::Nodes(items) => items.len(),
        _ => 1,
    };
    infer_claim(
        &format!("xpath '{src}'"),
        inf.is_statically_empty(),
        inf.cards.result_bound(0),
        result_size,
    )?;
    // Metamorphic: re-serialization invariance on the observable result.
    let re = Document::parse_str(&doc.to_xml_string())
        .map_err(|e| format!("reserialize: document no longer parses: {e}"))?;
    let re_val = gql_xpath::evaluate(&re, &expr)
        .map_err(|e| format!("reserialize: evaluation on reparsed document failed: {e}"))?;
    if observe(&re, &re_val) != observe(doc, &value) {
        return Err(format!(
            "reserialize: results changed after serialize→parse\nbefore: {}\nafter:  {}",
            observe(doc, &value),
            observe(&re, &re_val)
        ));
    }
    check_trace_case(doc, &QueryKind::XPath(src.to_string()))?;
    check_plan_cache_case(doc, &QueryKind::XPath(src.to_string()))?;
    Ok(())
}

// ----------------------------------------------------------------------
// Cross-engine intents: XML-GL vs XPath, plus prune monotonicity
// ----------------------------------------------------------------------

/// Count the intent on the XML-GL side (checking indexed against scan on
/// the way — the intent doubles as another matcher-path case).
pub fn intent_xmlgl_count(doc: &Document, intent: &Intent) -> Result<usize, String> {
    let src = intent.xmlgl();
    let program = gql_xmlgl::dsl::parse(&src)
        .map_err(|e| format!("intent-xmlgl: intent rendering failed to parse: {e}\n{src}"))?;
    let rule = &program.rules[0];
    let idx = DocIndex::build(doc);
    let scan = match_rule_scan(rule, doc);
    let fast = match_rule_with(rule, doc, &idx, MatchMode::Auto);
    if fast != scan {
        return Err(format!(
            "indexed-vs-scan: intent '{intent}' bindings diverged ({} vs {})",
            fast.len(),
            scan.len()
        ));
    }
    if intent.distinct() {
        let q = rule
            .extract
            .by_var("x")
            .ok_or_else(|| format!("intent-xmlgl: $x not bound in {src}"))?;
        Ok(distinct_bound(&scan, q).len())
    } else {
        Ok(scan.len())
    }
}

/// Count the intent on the XPath side (checking indexed against lazy).
pub fn intent_xpath_count(doc: &Document, intent: &Intent) -> Result<usize, String> {
    let idx = DocIndex::build(doc);
    let count = |path: &str| -> Result<usize, String> {
        let expr = gql_xpath::parse(path).map_err(|e| format!("intent-xpath: {e} in {path}"))?;
        let lazy = gql_xpath::evaluate(doc, &expr)
            .map_err(|e| format!("intent-xpath: lazy evaluation failed: {e}"))?;
        let fast = gql_xpath::evaluate_with_index(doc, &expr, &idx)
            .map_err(|e| format!("intent-xpath: indexed evaluation failed: {e}"))?;
        if !xvalue_eq(&lazy, &fast) {
            return Err(format!("indexed-vs-lazy: intent path {path} diverged"));
        }
        Ok(lazy
            .into_nodes()
            .map_err(|e| format!("intent-xpath: {e}"))?
            .len())
    };
    count(&intent.xpath())
}

/// The cross-engine oracle for one `(document, intent)` case: equal counts
/// between XML-GL and XPath, and (for positive intents) monotonicity under
/// subtree pruning.
pub fn check_intent_case(doc: &Document, intent: &Intent) -> Result<(), String> {
    let a = intent_xmlgl_count(doc, intent)?;
    let b = intent_xpath_count(doc, intent)?;
    if a != b {
        return Err(format!(
            "xmlgl-vs-xpath: intent '{intent}' counts diverged (xmlgl {a}, xpath {b})"
        ));
    }
    if !intent.positive() {
        return Ok(());
    }
    // Prune up to 6 element subtrees (deterministically, in document
    // order); a positive pattern can never gain matches from removal.
    let xml = doc.to_xml_string();
    let total = doc
        .descendants(doc.root())
        .filter(|&n| doc.kind(n) == gql_ssdm::NodeKind::Element)
        .count();
    for k in 0..total.min(6) {
        let Ok(mut pruned) = Document::parse_str(&xml) else {
            break;
        };
        let Some(victim) = pruned
            .descendants(pruned.root())
            .filter(|&n| pruned.kind(n) == gql_ssdm::NodeKind::Element)
            .nth(k)
        else {
            continue;
        };
        if pruned.detach(victim).is_err() {
            continue;
        }
        let Some(clean) = normalize(&pruned.to_xml_string()) else {
            continue; // pruning the root leaves nothing to query
        };
        let a2 = intent_xmlgl_count(&clean, intent)?;
        let b2 = intent_xpath_count(&clean, intent)?;
        if a2 > a || b2 > b {
            return Err(format!(
                "prune-monotonicity: intent '{intent}' gained matches after pruning subtree {k} \
                 (xmlgl {a}→{a2}, xpath {b}→{b2})"
            ));
        }
    }
    Ok(())
}
