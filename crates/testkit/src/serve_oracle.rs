//! The concurrency differential oracle: the service must never change an
//! answer.
//!
//! Every (non-pathological) corpus case is registered as a catalog
//! dataset and stormed through one shared [`Service`] at configurable
//! concurrency with mixed tenants, and each response is held
//! **byte-identical** to a fresh single-threaded [`Engine`] run of the
//! same query — including error cases, which must map to the same
//! structured class with the same message. On top of the differential
//! check the oracle asserts:
//!
//! * **deterministic trace shapes** — the same warm request profiles to
//!   the same duration-free shape every time, under any interleaving;
//! * **cancellation hygiene** — a request cancelled mid-flight returns a
//!   structured trip report and never poisons the shared plan/index
//!   caches: the very next identical request completes byte-identical to
//!   baseline.
//!
//! Budget-bearing corpus cases are excluded: they are pathological by
//! construction (exploding fixpoints) and exist to test the guard, not
//! the service.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gql_core::{CoreError, Engine, QueryKind};
use gql_guard::CancelToken;
use gql_serve::{Catalog, Envelope, ErrorCode, Request, Response, Service, TenantRegistry};

use crate::corpus::CorpusCase;
use crate::oracle;

/// What the single-threaded baseline says one case must produce.
#[derive(Debug, Clone, PartialEq)]
enum Expected {
    Xml(String),
    Err(ErrorCode, String),
}

/// One case prepared for the storm.
struct Prepared {
    dataset: String,
    kind: String,
    query: String,
    expected: Expected,
}

/// Outcome summary of a [`check_cases_concurrently`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOracleReport {
    /// Corpus cases stormed (unparseable and budget-bearing ones are
    /// skipped — the former are vacuous, the latter pathological).
    pub cases: usize,
    /// Total service requests issued across the storm, determinism and
    /// cancellation phases.
    pub requests: usize,
}

/// Tenants the storm round-robins over — mixed tenancy is part of the
/// oracle: per-tenant admission state must not leak into answers.
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// How many times each case replays during the storm phase.
const STORM_ROUNDS: usize = 4;

/// Map a baseline engine error to the structured response the service
/// must produce for the same query.
fn expected_err(e: &CoreError) -> Expected {
    let code = match e {
        CoreError::Rejected { .. } => ErrorCode::Rejected,
        CoreError::Budget(_) => ErrorCode::Budget,
        _ => ErrorCode::Engine,
    };
    Expected::Err(code, e.to_string())
}

fn check_response(case: &Prepared, resp: &Response) -> Result<(), String> {
    match (&case.expected, resp) {
        (Expected::Xml(want), Response::Ok(ok)) => {
            if &ok.xml == want {
                Ok(())
            } else {
                Err(format!(
                    "{}: concurrent answer diverged from single-threaded baseline\n  want: {want}\n  got:  {}",
                    case.dataset, ok.xml
                ))
            }
        }
        (Expected::Err(code, msg), Response::Err(err)) => {
            if err.code == *code && &err.message == msg {
                Ok(())
            } else {
                Err(format!(
                    "{}: error mismatch (want {} `{msg}`, got {} `{}`)",
                    case.dataset,
                    code.name(),
                    err.code.name(),
                    err.message
                ))
            }
        }
        (want, got) => Err(format!(
            "{}: outcome class mismatch (want {want:?}, got {got:?})",
            case.dataset
        )),
    }
}

/// Run the full oracle over parsed corpus cases at the given concurrency.
pub fn check_cases_concurrently(
    cases: &[(String, CorpusCase)],
    threads: usize,
) -> Result<ServeOracleReport, String> {
    let mut catalog = Catalog::new();
    let mut prepared: Vec<Prepared> = Vec::new();
    for (name, case) in cases {
        if case.budget.is_some() {
            continue; // pathological by construction
        }
        let Some(doc) = oracle::normalize(&case.doc) else {
            continue; // vacuous, mirroring `check_case`
        };
        let Ok(query) = case.query_kind() else {
            continue;
        };
        // Baseline: a fresh, single-threaded, cold engine.
        let expected = match Engine::new().run(&query, &doc) {
            Ok(out) => Expected::Xml(out.output.to_xml_string()),
            Err(e) => expected_err(&e),
        };
        catalog.register(name, doc);
        let kind = match query {
            QueryKind::XmlGl(_) => "xmlgl",
            QueryKind::WgLog(_) => "wglog",
            QueryKind::XPath(_) => "xpath",
        };
        prepared.push(Prepared {
            dataset: name.clone(),
            kind: kind.to_string(),
            // Intent descriptors lowered to XPath: submit the lowering.
            query: match case.kind.as_str() {
                "intent" => match case.query_kind() {
                    Ok(QueryKind::XPath(x)) => x,
                    _ => unreachable!("intent lowers to xpath"),
                },
                _ => case.query.clone(),
            },
            expected,
        });
    }
    if prepared.is_empty() {
        return Err("serve oracle: no replayable cases (corpus missing?)".into());
    }

    let mut tenants = TenantRegistry::new();
    for t in TENANTS {
        tenants.register(t, Envelope::slots(threads as u64 * 2));
    }
    let service = Service::builder()
        .workers(threads)
        .catalog(catalog)
        .tenants(tenants)
        .build();
    let handle = service.handle();
    let requests = AtomicUsize::new(0);

    // Phase 1: the storm. Every case × STORM_ROUNDS, interleaved across
    // `threads` submitters with round-robin tenants.
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let total = prepared.len() * STORM_ROUNDS;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total {
                    return;
                }
                let case = &prepared[i % prepared.len()];
                let req = Request::new(
                    TENANTS[i % TENANTS.len()],
                    &case.dataset,
                    &case.kind,
                    &case.query,
                );
                requests.fetch_add(1, Ordering::SeqCst);
                let resp = handle.submit(&req);
                if let Err(msg) = check_response(case, &resp) {
                    failures.lock().unwrap().push(msg);
                }
            });
        }
    });
    let mut failures = failures.into_inner().unwrap();

    // Phase 2: warm trace-shape determinism. Two profiled runs of the
    // same (now warm) request must produce identical duration-free
    // shapes.
    for case in &prepared {
        let req = Request::new(TENANTS[0], &case.dataset, &case.kind, &case.query).with_profile();
        requests.fetch_add(2, Ordering::SeqCst);
        let (a, b) = (handle.submit(&req), handle.submit(&req));
        if let (Response::Ok(a), Response::Ok(b)) = (&a, &b) {
            if a.shape != b.shape {
                failures.push(format!(
                    "{}: warm trace shape is not deterministic\n  first:  {:?}\n  second: {:?}",
                    case.dataset, a.shape, b.shape
                ));
            }
        }
    }

    // Phase 3: cancellation hygiene. A pre-cancelled request trips with a
    // structured report; the next identical request must still match the
    // baseline exactly (shared caches not poisoned).
    for case in &prepared {
        let req = Request::new(TENANTS[1], &case.dataset, &case.kind, &case.query);
        let cancel = CancelToken::new();
        cancel.cancel();
        requests.fetch_add(2, Ordering::SeqCst);
        let cancelled = match handle.submit_cancellable(&req, cancel) {
            Ok(p) => p.wait(),
            Err(immediate) => immediate,
        };
        match &cancelled {
            Response::Err(e) if e.code == ErrorCode::Cancelled => {
                if e.report.as_deref().is_none_or(|r| !r.starts_with("phase=")) {
                    failures.push(format!(
                        "{}: cancelled run dropped its trip report: {:?}",
                        case.dataset, e.report
                    ));
                }
            }
            other => failures.push(format!(
                "{}: pre-cancelled run should trip `cancelled`, got {other:?}",
                case.dataset
            )),
        }
        if let Err(msg) = check_response(case, &handle.submit(&req)) {
            failures.push(format!("after cancellation, {msg}"));
        }
    }

    // Phase 4: telemetry conservation. The storm ran with the telemetry
    // plane fully enabled (the builder default) and every submit above is
    // synchronous, so the service is quiescent here and the accounting
    // identities must hold *exactly* — telemetry that miscounts under
    // concurrency is worse than none.
    let metrics = handle.metrics();
    if metrics.admitted + metrics.rejected + metrics.refused + metrics.deduped != metrics.submitted
    {
        failures.push(format!(
            "telemetry: service conservation broken: admitted {} + rejected {} + refused {} + deduped {} != submitted {}",
            metrics.admitted, metrics.rejected, metrics.refused, metrics.deduped, metrics.submitted
        ));
    }
    if metrics.submitted as usize != requests.load(Ordering::SeqCst) {
        failures.push(format!(
            "telemetry: submitted counter {} disagrees with the {} requests the oracle issued",
            metrics.submitted,
            requests.load(Ordering::SeqCst)
        ));
    }
    let outcomes = metrics.completed + metrics.cancelled + metrics.budget_tripped + metrics.failed;
    if outcomes != metrics.admitted {
        failures.push(format!(
            "telemetry: every admitted request must reach exactly one outcome: \
             admitted {} vs outcomes {outcomes}",
            metrics.admitted
        ));
    }
    for (name, t) in &metrics.tenants {
        if t.admitted + t.rejected + t.refused != t.submitted {
            failures.push(format!(
                "telemetry: tenant {name} conservation broken: \
                 admitted {} + rejected {} + refused {} != submitted {}",
                t.admitted, t.rejected, t.refused, t.submitted
            ));
        }
    }
    let telemetry = handle.telemetry();
    let latency = telemetry.latency_all();
    if latency.count != metrics.admitted {
        failures.push(format!(
            "telemetry: latency histogram saw {} replies for {} admitted requests",
            latency.count, metrics.admitted
        ));
    }
    let events = telemetry.event_stats();
    if events.retained + events.dropped != events.appended {
        failures.push(format!(
            "telemetry: event ring accounting broken: retained {} + dropped {} != appended {}",
            events.retained, events.dropped, events.appended
        ));
    }
    // Every admitted request is admit/dequeue/start/reply, plus one trip
    // event when the reply carries a trip report (cancelled or budget).
    let expected_events = 4 * metrics.admitted + metrics.cancelled + metrics.budget_tripped;
    if events.appended != expected_events {
        failures.push(format!(
            "telemetry: event log saw {} events, lifecycle accounting predicts {expected_events} \
             (admitted {}, cancelled {}, budget {})",
            events.appended, metrics.admitted, metrics.cancelled, metrics.budget_tripped
        ));
    }

    service.shutdown();
    if failures.is_empty() {
        Ok(ServeOracleReport {
            cases: prepared.len(),
            requests: requests.into_inner(),
        })
    } else {
        failures.truncate(10);
        Err(failures.join("\n"))
    }
}

/// Convenience entry point: run the oracle over a corpus directory.
pub fn check_corpus_dir(
    dir: &std::path::Path,
    threads: usize,
) -> Result<ServeOracleReport, String> {
    let cases = crate::corpus::load_dir(dir)?;
    let named: Vec<(String, CorpusCase)> = cases
        .into_iter()
        .map(|(path, case)| {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "case".into());
            (name, case)
        })
        .collect();
    check_cases_concurrently(&named, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(kind: &str, query: &str, doc: &str) -> CorpusCase {
        CorpusCase {
            kind: kind.into(),
            oracle: String::new(),
            seed: None,
            query: query.into(),
            doc: doc.into(),
            budget: None,
        }
    }

    #[test]
    fn agreeing_cases_pass_and_count() {
        let cases = vec![
            (
                "xp".to_string(),
                case("xpath", "//a", "<r><a/><b><a/></b></r>"),
            ),
            (
                "engine-error".to_string(),
                // XPath parses inside the engine, so a bad expression is
                // an *engine* error — the service must report the
                // identical structured error, not a divergent one.
                case("xpath", "//[", "<r><a/></r>"),
            ),
        ];
        let report = check_cases_concurrently(&cases, 4).expect("oracle passes");
        assert_eq!(report.cases, 2);
        assert!(report.requests >= 2 * STORM_ROUNDS + 2 * 4);
    }

    #[test]
    fn empty_corpus_is_an_error_not_a_vacuous_pass() {
        assert!(check_cases_concurrently(&[], 2).is_err());
        let only_budget = vec![(
            "b".to_string(),
            CorpusCase {
                budget: Some("max-rounds=1".into()),
                ..case("xpath", "//a", "<r><a/></r>")
            },
        )];
        assert!(check_cases_concurrently(&only_budget, 2).is_err());
    }
}
