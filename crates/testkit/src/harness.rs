//! The seed-reporting property harness.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest every property runs over a few hundred cases generated from
//! the deterministic [`gql_ssdm::rng`] PRNG. A failure message always
//! carries the offending seed *and* an exact one-line replay command;
//! setting `GQL_REPLAY_SEED=<n>` re-runs a property (or a fuzz generator)
//! on that single case.

use gql_ssdm::rng::Rng;

/// Salt mixed into every case seed. Kept identical to the historical
/// `tests/property.rs` harness so existing seeds stay meaningful.
pub const SEED_SALT: u64 = 0xC0FFEE;
/// Per-case stride (the 32-bit golden ratio, as in splitmix weighting).
pub const SEED_STRIDE: u64 = 0x9E37_79B9;

/// The RNG for one case: a pure function of the case seed, shared by the
/// property harness, the fuzzer and corpus replay.
pub fn case_rng(seed: u64) -> Rng {
    Rng::seed_from_u64(SEED_SALT ^ seed.wrapping_mul(SEED_STRIDE))
}

/// The one-line command that replays a failing property case exactly.
pub fn replay_command(name: &str, seed: u64) -> String {
    format!("GQL_REPLAY_SEED={seed} cargo test {name}")
}

/// Run `prop` over `cases` deterministic seeds; panic with the seed and a
/// replay command on the first failing case (properties themselves panic
/// via `assert!`). When `GQL_REPLAY_SEED` is set, only that seed runs —
/// exactly what the failure message prints.
pub fn check(name: &str, cases: u64, prop: impl Fn(&mut Rng)) {
    let replay = std::env::var("GQL_REPLAY_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok());
    let seeds: Vec<u64> = match replay {
        Some(s) => vec![s],
        None => (0..cases).collect(),
    };
    for seed in seeds {
        let mut rng = case_rng(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(e) = result {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!(
                "property '{name}' failed at case seed {seed}: {msg}\n  replay: {}",
                replay_command(name, seed)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic() {
        let a: Vec<u64> = (0..4).map(|_| case_rng(7).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]));
        assert_ne!(case_rng(7).next_u64(), case_rng(8).next_u64());
    }

    #[test]
    fn failing_property_reports_seed_and_replay() {
        let caught = std::panic::catch_unwind(|| {
            check("always_fails", 3, |_rng| panic!("boom"));
        });
        let msg = match caught {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .expect("panic carries a string"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("seed 0"), "{msg}");
        assert!(
            msg.contains("GQL_REPLAY_SEED=0 cargo test always_fails"),
            "{msg}"
        );
    }
}
