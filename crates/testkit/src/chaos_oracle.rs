//! The chaos oracle: the service must survive injected faults without
//! ever changing an answer.
//!
//! Every (non-pathological) corpus case is registered as a catalog
//! dataset behind a real TCP [`Server`] with chaos seams enabled, then
//! stormed through the [`ResilientClient`] while a matrix of faults
//! plays out underneath:
//!
//! * **torn replies** — the server writes half a frame and cuts the
//!   socket; the client must reconnect, retry with the same idempotency
//!   key, and receive the original (deduplicated) answer;
//! * **dropped replies** — the reply vanishes entirely (mid-stream
//!   disconnect after the work completed);
//! * **worker panics** — an injected panic inside the pool; the worker
//!   is supervised, answers structurally and keeps draining the queue;
//! * **slow-loris writers** — a client that opens a frame and stalls is
//!   reaped by the server's read timeout without pinning a thread;
//! * **torn requests** — garbage and truncated frames from the client
//!   side get structured errors or clean closes, never a hang;
//! * **mid-stream disconnects** — a client that vanishes after
//!   submitting leaves no leaked slots behind;
//! * **hot reload during the storm** — the catalog swaps dataset epochs
//!   continuously under fire; every reply must carry exactly one epoch,
//!   and once the storm drains every epoch's admitted count must equal
//!   its released count (no permit leaks, no torn catalogs);
//! * **rate limiting** — a tightly-quota'd tenant is stormed; the client
//!   honours `retry_after_ms` and every request eventually lands.
//!
//! Under *every* fault the bar is the same as the concurrency oracle's:
//! responses byte-identical to a fresh single-threaded [`Engine`] run
//! (or the documented structured error for the injected fault), the
//! telemetry conservation laws exact once quiescent, and the whole
//! matrix bounded in wall-clock — a hang is a failure, not a timeout.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gql_core::{CoreError, Engine, QueryKind};
use gql_guard::fault::{self, FaultPlan};
use gql_serve::{
    Catalog, ClientError, Envelope, ErrorCode, Request, ResilientClient, Response, RetryPolicy,
    Server, ServerConfig, Service, TenantRegistry,
};

use crate::corpus::CorpusCase;
use crate::oracle;

/// What the single-threaded baseline says one case must produce.
#[derive(Debug, Clone, PartialEq)]
enum Expected {
    Xml(String),
    Err(ErrorCode, String),
}

/// One case prepared for the storm.
struct Prepared {
    dataset: String,
    kind: String,
    query: String,
    /// Original document source, re-normalized for same-content reloads.
    doc_xml: String,
    expected: Expected,
}

/// Outcome summary of a [`check_cases`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Corpus cases stormed under each fault scenario.
    pub cases: usize,
    /// Fault scenarios executed.
    pub scenarios: usize,
    /// Logical requests issued through the resilient client.
    pub requests: usize,
    /// Retries the client spent surviving the faults.
    pub retries: u64,
}

/// Tenants the storms round-robin over.
const TENANTS: [&str; 2] = ["alpha", "beta"];

/// Submitter threads per storm.
const THREADS: usize = 4;

/// The tightly-quota'd tenant for the rate-limit scenario.
const THROTTLED: &str = "throttled";
const THROTTLED_RPS: u64 = 4;

fn expected_err(e: &CoreError) -> Expected {
    let code = match e {
        CoreError::Rejected { .. } => ErrorCode::Rejected,
        CoreError::Budget(_) => ErrorCode::Budget,
        _ => ErrorCode::Engine,
    };
    Expected::Err(code, e.to_string())
}

/// `allow_panic_reply` admits the supervised-panic structured error —
/// the documented outcome when a `panic_jobs` token hits this request.
fn check_response(case: &Prepared, resp: &Response, allow_panic_reply: bool) -> Result<(), String> {
    if allow_panic_reply {
        if let Response::Err(e) = resp {
            if e.code == ErrorCode::Engine && e.message.contains("supervised") {
                return Ok(());
            }
        }
    }
    match (&case.expected, resp) {
        (Expected::Xml(want), Response::Ok(ok)) => {
            if ok.epoch == 0 {
                return Err(format!("{}: reply carries no catalog epoch", case.dataset));
            }
            if &ok.xml == want {
                Ok(())
            } else {
                Err(format!(
                    "{}: answer diverged from single-threaded baseline under fault\n  want: {want}\n  got:  {}",
                    case.dataset, ok.xml
                ))
            }
        }
        (Expected::Err(code, msg), Response::Err(err)) => {
            if err.code == *code && &err.message == msg {
                Ok(())
            } else {
                Err(format!(
                    "{}: error mismatch (want {} `{msg}`, got {} `{}`)",
                    case.dataset,
                    code.name(),
                    err.code.name(),
                    err.message
                ))
            }
        }
        (want, got) => Err(format!(
            "{}: outcome class mismatch (want {want:?}, got {got:?})",
            case.dataset
        )),
    }
}

fn prepare(cases: &[(String, CorpusCase)]) -> (Catalog, Vec<Prepared>) {
    let mut catalog = Catalog::new();
    let mut prepared = Vec::new();
    for (name, case) in cases {
        if case.budget.is_some() {
            continue; // pathological by construction
        }
        let Some(doc) = oracle::normalize(&case.doc) else {
            continue;
        };
        let Ok(query) = case.query_kind() else {
            continue;
        };
        let expected = match Engine::new().run(&query, &doc) {
            Ok(out) => Expected::Xml(out.output.to_xml_string()),
            Err(e) => expected_err(&e),
        };
        catalog.register(name, doc);
        let kind = match query {
            QueryKind::XmlGl(_) => "xmlgl",
            QueryKind::WgLog(_) => "wglog",
            QueryKind::XPath(_) => "xpath",
        };
        prepared.push(Prepared {
            dataset: name.clone(),
            kind: kind.to_string(),
            query: match case.kind.as_str() {
                "intent" => match case.query_kind() {
                    Ok(QueryKind::XPath(x)) => x,
                    _ => unreachable!("intent lowers to xpath"),
                },
                _ => case.query.clone(),
            },
            doc_xml: case.doc.clone(),
            expected,
        });
    }
    (catalog, prepared)
}

/// Storm every prepared case once through per-thread resilient clients.
/// Client-level failures (exhausted retries, blown deadlines) are oracle
/// failures: the fault budgets are sized so a correct client always
/// gets through.
fn storm(
    addr: SocketAddr,
    prepared: &[Prepared],
    seed: u64,
    allow_panic_reply: bool,
    failures: &Mutex<Vec<String>>,
    requests: &AtomicUsize,
    retries: &AtomicUsize,
) {
    let next = AtomicUsize::new(0);
    let next = &next;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let policy = RetryPolicy::default()
                    .max_attempts(6)
                    .base_backoff(Duration::from_millis(5))
                    .max_backoff(Duration::from_millis(100))
                    .deadline(Duration::from_secs(20))
                    .seed(seed.wrapping_mul(31).wrapping_add(t as u64));
                let mut client = ResilientClient::new(addr, policy);
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= prepared.len() {
                        break;
                    }
                    let case = &prepared[i];
                    let req = Request::new(
                        TENANTS[i % TENANTS.len()],
                        &case.dataset,
                        &case.kind,
                        &case.query,
                    );
                    requests.fetch_add(1, Ordering::SeqCst);
                    match client.query(&req) {
                        Ok(resp) => {
                            if let Err(msg) = check_response(case, &resp, allow_panic_reply) {
                                failures.lock().unwrap().push(msg);
                            }
                        }
                        Err(e) => failures
                            .lock()
                            .unwrap()
                            .push(format!("{}: client gave up: {e}", case.dataset)),
                    }
                }
                retries.fetch_add(client.retries() as usize, Ordering::SeqCst);
            });
        }
    });
}

/// Run the full chaos matrix. `seed` drives every jitter stream;
/// `wall_budget` bounds the whole matrix — exceeding it is a failure
/// (the oracle's definition of "never a hang").
pub fn check_cases(
    cases: &[(String, CorpusCase)],
    seed: u64,
    wall_budget: Duration,
) -> Result<ChaosReport, String> {
    let started = Instant::now();
    let (catalog, prepared) = prepare(cases);
    if prepared.is_empty() {
        return Err("chaos oracle: no replayable cases (corpus missing?)".into());
    }

    let mut tenants = TenantRegistry::new();
    for t in TENANTS {
        tenants.register(t, Envelope::slots(THREADS as u64 * 2));
    }
    tenants.register(
        THROTTLED,
        Envelope::slots(THREADS as u64 * 2).with_requests_per_sec(THROTTLED_RPS),
    );
    let service = Service::builder()
        .workers(THREADS)
        .catalog(catalog)
        .tenants(tenants)
        .chaos(true)
        .build();
    let handle = service.handle();
    // The chaos-facing server: fault seams armed, generous timeouts (the
    // reap scenario uses its own short-fused server below).
    let server = Server::bind_with(
        "127.0.0.1:0",
        handle.clone(),
        ServerConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            chaos: true,
        },
    )
    .map_err(|e| format!("chaos oracle: cannot bind server: {e}"))?;
    let addr = server.addr();

    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let requests = AtomicUsize::new(0);
    let retries = AtomicUsize::new(0);
    let mut scenarios = 0usize;

    // Scenario 1: no faults — the client and wire path must be a clean
    // superset of the in-process oracle.
    storm(addr, &prepared, seed, false, &failures, &requests, &retries);
    scenarios += 1;

    // Scenarios 2–4: the guard's reply/pool seams, one token budget per
    // storm. Budgets stay below the client's attempt budget so a correct
    // retry loop always lands; `with_plan` serializes plans process-wide.
    for (label, plan, allow_panic) in [
        ("torn_replies", FaultPlan::torn_replies(4), false),
        ("drop_replies", FaultPlan::drop_replies(4), false),
        ("panic_jobs", FaultPlan::panic_jobs(3), true),
    ] {
        let before = failures.lock().unwrap().len();
        fault::with_plan(plan, || {
            storm(
                addr,
                &prepared,
                seed.wrapping_add(scenarios as u64),
                allow_panic,
                &failures,
                &requests,
                &retries,
            );
        });
        scenarios += 1;
        let mut fs = failures.lock().unwrap();
        for f in fs[before..].iter_mut() {
            *f = format!("[{label}] {f}");
        }
    }

    // Scenario 5: slow-loris writer. A short-fused server must reap the
    // stalled connection and keep serving everyone else.
    {
        let reaper = Server::bind_with(
            "127.0.0.1:0",
            handle.clone(),
            ServerConfig {
                read_timeout: Some(Duration::from_millis(100)),
                write_timeout: Some(Duration::from_millis(100)),
                chaos: false,
            },
        )
        .map_err(|e| format!("chaos oracle: cannot bind reaper server: {e}"))?;
        match TcpStream::connect(reaper.addr()) {
            Ok(mut loris) => {
                // Open a frame claiming 64 bytes, send 3, stall. The server
                // must cut us loose instead of waiting forever.
                let _ = loris.write_all(&64u32.to_be_bytes());
                let _ = loris.write_all(b"{\"o");
                let _ = loris.flush();
                let _ = loris.set_read_timeout(Some(Duration::from_secs(5)));
                let mut buf = [0u8; 16];
                use std::io::Read as _;
                match loris.read(&mut buf) {
                    Ok(0) | Err(_) => {}
                    Ok(n) => failures
                        .lock()
                        .unwrap()
                        .push(format!("[slow_loris] reaped connection sent {n} bytes")),
                }
            }
            Err(e) => failures
                .lock()
                .unwrap()
                .push(format!("[slow_loris] cannot connect: {e}")),
        }
        // The reaper server still answers honest clients.
        let before = failures.lock().unwrap().len();
        storm(
            reaper.addr(),
            &prepared[..1.min(prepared.len())],
            seed ^ 0x10c5,
            false,
            &failures,
            &requests,
            &retries,
        );
        let mut fs = failures.lock().unwrap();
        for f in fs[before..].iter_mut() {
            *f = format!("[slow_loris] {f}");
        }
        drop(fs);
        reaper.shutdown();
        scenarios += 1;
    }

    // Scenario 6: torn requests. Garbage inside a well-formed frame gets
    // a structured error on a connection that stays usable; a truncated
    // frame followed by a hangup closes cleanly.
    {
        let mut raw = gql_serve::Client::connect(addr)
            .map_err(|e| format!("chaos oracle: cannot connect raw client: {e}"))?;
        match raw.roundtrip(&gql_serve::json::Value::str("not an op")) {
            Ok(reply) => {
                let code = reply.get("code").and_then(|v| v.as_str());
                if code != Some("bad-request") {
                    failures.lock().unwrap().push(format!(
                        "[torn_request] garbage op wanted bad-request, got {reply:?}"
                    ));
                }
            }
            Err(e) => failures
                .lock()
                .unwrap()
                .push(format!("[torn_request] garbage op: {e}")),
        }
        // Truncated frame, then vanish: the server must not hang on it.
        let _ = raw.stream().write_all(&8u32.to_be_bytes());
        let _ = raw.stream().write_all(b"{\"op");
        drop(raw);
        scenarios += 1;
    }

    // Scenario 7: mid-stream disconnect. Submit a real query and hang up
    // before the reply; the service must cancel (or complete) it without
    // leaking the slot — proven by the conservation laws below and by the
    // follow-up storm.
    {
        if let Ok(mut ghost) = TcpStream::connect(addr) {
            let case = &prepared[0];
            let req = Request::new(TENANTS[0], &case.dataset, &case.kind, &case.query);
            let frame = gql_serve::proto::encode_request(&req).render();
            let payload = frame.as_bytes();
            let _ = ghost.write_all(&(payload.len() as u32).to_be_bytes());
            let _ = ghost.write_all(payload);
            let _ = ghost.flush();
            drop(ghost);
        }
        let before = failures.lock().unwrap().len();
        storm(
            addr,
            &prepared[..1.min(prepared.len())],
            seed ^ 0xd15c,
            false,
            &failures,
            &requests,
            &retries,
        );
        let mut fs = failures.lock().unwrap();
        for f in fs[before..].iter_mut() {
            *f = format!("[disconnect] {f}");
        }
        drop(fs);
        scenarios += 1;
    }

    // Scenario 8: hot reload during the storm. A reloader swaps every
    // dataset to a new epoch (same content, so answers stay
    // byte-identical) while the storm runs; afterwards the catalog must
    // drain completely — every epoch's permits conserved.
    {
        let catalog = handle.catalog();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let before = failures.lock().unwrap().len();
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    for case in &prepared {
                        let Some(doc) = oracle::normalize(&case.doc_xml) else {
                            continue;
                        };
                        if let Err(e) = catalog.reload(&case.dataset, doc) {
                            failures
                                .lock()
                                .unwrap()
                                .push(format!("[reload] {}: {e}", case.dataset));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
            storm(
                addr,
                &prepared,
                seed ^ 0x8e10,
                false,
                &failures,
                &requests,
                &retries,
            );
            stop.store(true, Ordering::SeqCst);
        });
        let mut fs = failures.lock().unwrap();
        for f in fs[before..].iter_mut() {
            *f = format!("[reload] {f}");
        }
        drop(fs);
        // Quiescent now: every retired epoch must drain and reap.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            catalog.reap_retired();
            if catalog.draining() == 0 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if catalog.draining() != 0 {
            failures.lock().unwrap().push(format!(
                "[reload] {} retired epoch(s) never drained — permit leak",
                catalog.draining()
            ));
        }
        for stat in catalog.epoch_stats() {
            if stat.admitted != stat.released {
                failures.lock().unwrap().push(format!(
                    "[reload] {} epoch {}: admitted {} != released {} — permit leak",
                    stat.name, stat.epoch, stat.admitted, stat.released
                ));
            }
            if stat.epoch < 2 {
                failures.lock().unwrap().push(format!(
                    "[reload] {} never advanced past epoch {} under the reloader",
                    stat.name, stat.epoch
                ));
            }
        }
        scenarios += 1;
    }

    // Scenario 9: rate limiting. The throttled tenant's storm must make
    // the quota visibly reject, and the client — honouring
    // `retry_after_ms` — must land every request anyway.
    {
        let case = &prepared[0];
        let policy = RetryPolicy::default()
            .max_attempts(8)
            .base_backoff(Duration::from_millis(5))
            .deadline(Duration::from_secs(20))
            .seed(seed ^ 0x4a7e);
        let mut client = ResilientClient::new(addr, policy);
        // A burst can straddle a quota-window boundary and sail through;
        // re-burst (bounded) until the quota demonstrably rejected.
        let mut tripped = false;
        for _round in 0..3 {
            for _ in 0..(THROTTLED_RPS * 2) {
                let req = Request::new(THROTTLED, &case.dataset, &case.kind, &case.query);
                requests.fetch_add(1, Ordering::SeqCst);
                match client.query(&req) {
                    Ok(resp) => {
                        if let Err(msg) = check_response(case, &resp, false) {
                            failures.lock().unwrap().push(format!("[rate_limit] {msg}"));
                        }
                    }
                    Err(e @ ClientError::Protocol(_)) => failures
                        .lock()
                        .unwrap()
                        .push(format!("[rate_limit] protocol fault: {e}")),
                    Err(e) => failures
                        .lock()
                        .unwrap()
                        .push(format!("[rate_limit] client gave up: {e}")),
                }
            }
            if handle.metrics().rate_limited > 0 {
                tripped = true;
                break;
            }
        }
        retries.fetch_add(client.retries() as usize, Ordering::SeqCst);
        if !tripped {
            failures
                .lock()
                .unwrap()
                .push("[rate_limit] quota never tripped — the scenario tested nothing".to_string());
        }
        scenarios += 1;
    }

    // Epilogue: the service is quiescent; the conservation laws must be
    // exact. Retries of already-completed requests surface as `deduped`.
    let mut failures = failures.into_inner().unwrap();
    let m = handle.metrics();
    if m.admitted + m.rejected + m.refused + m.deduped != m.submitted {
        failures.push(format!(
            "telemetry: conservation broken under chaos: admitted {} + rejected {} + refused {} + deduped {} != submitted {}",
            m.admitted, m.rejected, m.refused, m.deduped, m.submitted
        ));
    }
    let outcomes = m.completed + m.cancelled + m.budget_tripped + m.failed;
    if outcomes != m.admitted {
        failures.push(format!(
            "telemetry: admitted {} vs outcomes {outcomes} under chaos",
            m.admitted
        ));
    }
    for stat in handle.catalog().epoch_stats() {
        if stat.admitted != stat.released {
            failures.push(format!(
                "catalog: {} epoch {} leaked permits (admitted {} != released {})",
                stat.name, stat.epoch, stat.admitted, stat.released
            ));
        }
    }
    server.shutdown();
    service.shutdown();

    if started.elapsed() > wall_budget {
        failures.push(format!(
            "chaos oracle blew its wall-clock budget: {:?} > {:?}",
            started.elapsed(),
            wall_budget
        ));
    }
    if failures.is_empty() {
        Ok(ChaosReport {
            cases: prepared.len(),
            scenarios,
            requests: requests.into_inner(),
            retries: retries.into_inner() as u64,
        })
    } else {
        failures.truncate(12);
        Err(failures.join("\n"))
    }
}

/// Convenience entry point: run the chaos matrix over a corpus directory.
pub fn check_corpus_dir(
    dir: &std::path::Path,
    seed: u64,
    wall_budget: Duration,
) -> Result<ChaosReport, String> {
    let cases = crate::corpus::load_dir(dir)?;
    let named: Vec<(String, CorpusCase)> = cases
        .into_iter()
        .map(|(path, case)| {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "case".into());
            (name, case)
        })
        .collect();
    check_cases(&named, seed, wall_budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(kind: &str, query: &str, doc: &str) -> CorpusCase {
        CorpusCase {
            kind: kind.into(),
            oracle: String::new(),
            seed: None,
            query: query.into(),
            doc: doc.into(),
            budget: None,
        }
    }

    #[test]
    fn chaos_matrix_passes_on_agreeing_cases() {
        let cases = vec![
            (
                "xp".to_string(),
                case("xpath", "//a", "<r><a/><b><a/></b></r>"),
            ),
            ("err".to_string(), case("xpath", "//[", "<r><a/></r>")),
        ];
        let report =
            check_cases(&cases, 42, Duration::from_secs(120)).expect("chaos matrix passes");
        assert_eq!(report.cases, 2);
        assert!(report.scenarios >= 9);
        assert!(report.requests > 0);
    }

    #[test]
    fn empty_corpus_is_an_error_not_a_vacuous_pass() {
        assert!(check_cases(&[], 1, Duration::from_secs(5)).is_err());
    }
}
