//! Greedy delta-debugging: minimize a failing `(document, query)` pair.
//!
//! Both shrinkers are *semantic-blind*: a candidate is accepted exactly
//! when the caller's failure predicate still holds on it. The oracles
//! return `Ok` for anything that no longer parses, so candidates that
//! merely break the syntax are rejected automatically and the minimized
//! case is always a well-formed witness of the original disagreement.

use gql_ssdm::{Document, NodeKind};

/// Count the element nodes of `xml` (0 if it does not parse).
fn element_count(xml: &str) -> usize {
    Document::parse_str(xml).map_or(0, |doc| {
        doc.descendants(doc.root())
            .filter(|&n| doc.kind(n) == NodeKind::Element)
            .count()
    })
}

/// `xml` with its `k`-th element subtree (document order) removed.
fn without_kth_element(xml: &str, k: usize) -> Option<String> {
    let mut doc = Document::parse_str(xml).ok()?;
    let victim = doc
        .descendants(doc.root())
        .filter(|&n| doc.kind(n) == NodeKind::Element)
        .nth(k)?;
    doc.detach(victim).ok()?;
    Some(doc.to_xml_string())
}

/// All `(element order index, attribute name)` pairs of `xml`.
fn attr_sites(xml: &str) -> Vec<(usize, String)> {
    let Ok(doc) = Document::parse_str(xml) else {
        return Vec::new();
    };
    doc.descendants(doc.root())
        .filter(|&n| doc.kind(n) == NodeKind::Element)
        .enumerate()
        .flat_map(|(i, n)| {
            doc.attrs(n)
                .map(|(k, _)| (i, k.to_string()))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// `xml` with one attribute removed from its `k`-th element.
fn without_attr(xml: &str, k: usize, name: &str) -> Option<String> {
    let mut doc = Document::parse_str(xml).ok()?;
    let el = doc
        .descendants(doc.root())
        .filter(|&n| doc.kind(n) == NodeKind::Element)
        .nth(k)?;
    doc.remove_attr(el, name).ok()?;
    Some(doc.to_xml_string())
}

/// Minimize a failing document: greedily remove element subtrees, then
/// attributes, as long as the failure persists.
pub fn shrink_doc(xml: &str, fails: impl Fn(&str) -> bool) -> String {
    let mut best = xml.to_string();
    loop {
        let mut improved = false;
        for k in 0..element_count(&best) {
            if let Some(cand) = without_kth_element(&best, k) {
                if cand.len() < best.len() && fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    loop {
        let mut improved = false;
        for (k, name) in attr_sites(&best) {
            if let Some(cand) = without_attr(&best, k, &name) {
                if cand.len() < best.len() && fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// Character spans (inclusive) of matching `open`…`close` pairs.
fn balanced_spans(chars: &[char], open: char, close: char) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut spans = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c == open {
            stack.push(i);
        } else if c == close {
            if let Some(s) = stack.pop() {
                spans.push((s, i));
            }
        }
    }
    spans
}

/// Shrink candidates for a one-line query: balanced-span removals (whole
/// span, or just its interior) and removals of 1–3 consecutive words.
fn query_candidates(src: &str) -> Vec<String> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    for (open, close) in [('{', '}'), ('(', ')'), ('[', ']')] {
        for (s, e) in balanced_spans(&chars, open, close) {
            let drop_all: String = chars[..s].iter().chain(&chars[e + 1..]).collect();
            out.push(drop_all);
            if e > s + 1 {
                let drop_inner: String = chars[..=s].iter().chain(&chars[e..]).collect();
                out.push(drop_inner);
            }
        }
    }
    let words: Vec<&str> = src.split_whitespace().collect();
    for run in 1..=3usize.min(words.len()) {
        for i in 0..=words.len() - run {
            let cand: Vec<&str> = words[..i]
                .iter()
                .chain(&words[i + run..])
                .copied()
                .collect();
            out.push(cand.join(" "));
        }
    }
    out
}

/// Minimize a failing query string greedily.
pub fn shrink_query(src: &str, fails: impl Fn(&str) -> bool) -> String {
    let mut best = src.to_string();
    loop {
        let mut improved = false;
        for cand in query_candidates(&best) {
            if cand.len() < best.len() && fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Minimize both halves of a failing case, alternating until neither
/// shrinks further (bounded, but in practice two rounds suffice).
pub fn shrink_case(
    doc_xml: &str,
    query: &str,
    fails: impl Fn(&str, &str) -> bool,
) -> (String, String) {
    let mut doc = doc_xml.to_string();
    let mut query = query.to_string();
    for _ in 0..8 {
        let d2 = shrink_doc(&doc, |cand| fails(cand, &query));
        let q2 = shrink_query(&query, |cand| fails(&d2, cand));
        let stable = d2 == doc && q2 == query;
        doc = d2;
        query = q2;
        if stable {
            break;
        }
    }
    (doc, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_doc_to_the_witness_subtree() {
        let xml = "<root><a k='1'><b/><c>x</c></a><d><item lang='y'/></d><b>noise</b></root>";
        // "Failure" = the document still contains an <item> element.
        let min = shrink_doc(xml, |cand| {
            Document::parse_str(cand)
                .map(|d| d.elements_named("item").next().is_some())
                .unwrap_or(false)
        });
        assert!(min.contains("<item"), "{min}");
        assert!(!min.contains("<a"), "{min}");
        assert!(!min.contains("noise"), "{min}");
        assert!(!min.contains("lang"), "attributes should shrink too: {min}");
    }

    #[test]
    fn shrinks_query_keeping_it_failing() {
        let src = "rule { extract { a as $v0 { b { c } not d } } construct { out { all $v0 } } }";
        // "Failure" = still a parseable XML-GL rule that mentions `b`.
        let min = shrink_query(src, |cand| {
            cand.contains('b') && gql_xmlgl::dsl::parse_unchecked(cand).is_ok()
        });
        assert!(min.len() < src.len(), "{min}");
        assert!(min.contains('b'), "{min}");
        assert!(gql_xmlgl::dsl::parse_unchecked(&min).is_ok(), "{min}");
    }

    #[test]
    fn shrink_case_minimizes_both_halves() {
        let xml = "<r><a><b>t</b></a><c/><d>pad</d></r>";
        let query = "rule { extract { a as $x { b } c } construct { out { all $x } } }";
        let (d, q) = shrink_case(xml, query, |doc, qq| {
            // "Failure" = query parses and doc still holds a <b>.
            doc.contains("<b>") && gql_xmlgl::dsl::parse_unchecked(qq).is_ok()
        });
        assert!(d.contains("<b>"), "{d}");
        assert!(!d.contains("pad"), "{d}");
        assert!(q.len() <= query.len());
    }
}
