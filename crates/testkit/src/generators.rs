//! Deterministic random documents and queries over the shared vocabulary.
//!
//! Every generator is a pure function of the [`Rng`] it is handed, so a
//! `(generator, seed)` pair replays a case exactly. Query generators
//! always produce *syntactically valid* sources (the analyzers may still
//! reject a program semantically — negated bindings referenced on the
//! construct side, say — and the oracles gate on that verdict).

use gql_ssdm::generator::{random_tree_with, TreeConfig};
use gql_ssdm::rng::Rng;
use gql_ssdm::{Document, NodeId};

use crate::vocab::{pick, ATTRS, TAGS, VALUES};

// ----------------------------------------------------------------------
// Text and strings
// ----------------------------------------------------------------------

/// Printable text including tricky-to-escape characters, never
/// whitespace-only (whitespace-only text nodes are dropped on reparse,
/// which would make re-serialization oracles vacuously noisy).
pub fn text_value(rng: &mut Rng) -> String {
    let len = rng.gen_range(0..=12);
    let s: String = (0..len)
        .map(|_| char::from(rng.gen_range(0x20..0x7f) as u8))
        .collect();
    if s.trim().is_empty() && !s.is_empty() {
        // Re-anchor whitespace-only runs on a visible character.
        format!("w{s}")
    } else {
        s
    }
}

/// A string over an explicit alphabet, for fuzzing parsers.
pub fn string_over(rng: &mut Rng, alphabet: &[char], max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// All printable ASCII plus the given extra characters.
pub fn fuzz_alphabet(extra: &str) -> Vec<char> {
    let mut v: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    v.extend(extra.chars());
    v
}

// ----------------------------------------------------------------------
// Documents
// ----------------------------------------------------------------------

fn add_attrs(doc: &mut Document, rng: &mut Rng, el: NodeId) {
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..3) {
        let k = pick(rng, ATTRS).to_string();
        if seen.insert(k.clone()) {
            let v = if rng.gen_bool(0.6) {
                pick(rng, VALUES).to_string()
            } else {
                text_value(rng)
            };
            doc.set_attr(el, &k, &v).expect("attrs on elements");
        }
    }
}

/// Grow a random subtree under `parent`: depth-bounded elements with a few
/// attributes, text leaves, small fanout.
fn grow(doc: &mut Document, rng: &mut Rng, parent: NodeId, depth: usize) {
    if depth == 0 || rng.gen_bool(0.25) {
        if rng.gen_bool(0.5) {
            let text = if rng.gen_bool(0.5) {
                pick(rng, VALUES).to_string()
            } else {
                text_value(rng)
            };
            doc.add_text(parent, &text);
        } else {
            let el = doc.add_element(parent, pick(rng, TAGS));
            add_attrs(doc, rng, el);
        }
        return;
    }
    let el = doc.add_element(parent, pick(rng, TAGS));
    add_attrs(doc, rng, el);
    for _ in 0..rng.gen_range(0..5) {
        grow(doc, rng, el, depth - 1);
    }
}

/// A random document over the shared vocabulary: the hand-grown shape the
/// historical property tests used, with attribute/value pools aligned to
/// the query generators.
pub fn document(rng: &mut Rng) -> Document {
    let mut doc = Document::new();
    let root = doc.add_element(doc.root(), pick(rng, TAGS));
    for _ in 0..rng.gen_range(0..6) {
        grow(&mut doc, rng, root, 3);
    }
    doc
}

/// A random document as XML text. Mixes the hand-grown generator with
/// [`random_tree_with`] under randomized knobs (skewed tags, extra
/// attributes, mixed content) so postings and hash-collision paths see
/// non-uniform shapes too.
pub fn document_xml(rng: &mut Rng) -> String {
    if rng.gen_bool(0.3) {
        let cfg = TreeConfig {
            nodes: rng.gen_range(3..80),
            seed: rng.next_u64(),
            text_prob: rng.gen_range(0..=5) as f64 / 10.0,
            attr_prob: rng.gen_range(0..=5) as f64 / 10.0,
            tag_skew: if rng.gen_bool(0.5) { 1.5 } else { 0.0 },
            max_extra_attrs: rng.gen_range(0..3),
            mixed_text_prob: if rng.gen_bool(0.4) { 0.3 } else { 0.0 },
            ..TreeConfig::default()
        };
        random_tree_with(&cfg).to_xml_string()
    } else {
        document(rng).to_xml_string()
    }
}

// ----------------------------------------------------------------------
// XML-GL query generator
// ----------------------------------------------------------------------

/// One query leaf or subtree of an XML-GL extract pattern. Collects the
/// variables it binds (including under negation — the analyzer gate
/// decides whether such a program is runnable).
fn xmlgl_subtree(rng: &mut Rng, vars: &mut Vec<String>, depth: usize, out: &mut String) {
    let tag = if rng.gen_bool(0.1) {
        "*"
    } else {
        pick(rng, TAGS)
    };
    out.push_str(tag);
    if rng.gen_bool(0.6) {
        let v = format!("v{}", vars.len());
        out.push_str(&format!(" as ${v}"));
        vars.push(v);
    }
    if depth > 0 && rng.gen_bool(0.6) {
        out.push_str(" { ");
        for _ in 0..rng.gen_range(1..3usize) {
            match rng.gen_range(0..10) {
                // Attribute circle, possibly bound and/or constrained.
                0 | 1 => {
                    out.push('@');
                    out.push_str(pick(rng, ATTRS));
                    if rng.gen_bool(0.5) {
                        let v = format!("v{}", vars.len());
                        out.push_str(&format!(" as ${v}"));
                        vars.push(v);
                    }
                    if rng.gen_bool(0.4) {
                        let op = ["=", ">=", "<=", "!="][rng.gen_range(0..4)];
                        out.push_str(&format!(" {op} \"{}\"", pick(rng, VALUES)));
                    }
                    out.push(' ');
                }
                // Content circle.
                2 => {
                    out.push_str("text");
                    if rng.gen_bool(0.5) {
                        let v = format!("v{}", vars.len());
                        out.push_str(&format!(" as ${v}"));
                        vars.push(v);
                    } else if rng.gen_bool(0.3) {
                        out.push_str(&format!(" = \"{}\"", pick(rng, VALUES)));
                    }
                    out.push(' ');
                }
                // Element edge: plain, negated, or deep.
                _ => {
                    if rng.gen_bool(0.15) {
                        out.push_str("not ");
                    } else if rng.gen_bool(0.2) {
                        out.push_str("deep ");
                    }
                    xmlgl_subtree(rng, vars, depth - 1, out);
                }
            }
        }
        out.push_str("} ");
    } else {
        out.push(' ');
    }
}

/// A random XML-GL extract/construct program as DSL text: one or two
/// extract trees, an optional deep-equal join, and a construct tree over a
/// subset of the bound variables. Always syntactically valid; deliberately
/// allowed to be *unsafe* (negated bindings referenced on the construct
/// side) — oracles filter on the analyzer's verdict.
pub fn gen_xmlgl(rng: &mut Rng) -> String {
    let mut vars = Vec::new();
    let mut extract = String::new();
    xmlgl_subtree(rng, &mut vars, 2, &mut extract);
    let first_tree_vars = vars.len();
    if rng.gen_bool(0.3) {
        xmlgl_subtree(rng, &mut vars, 1, &mut extract);
        // A join needs one var from each tree.
        if first_tree_vars > 0 && vars.len() > first_tree_vars && rng.gen_bool(0.8) {
            let a = &vars[rng.gen_range(0..first_tree_vars)];
            let b = &vars[first_tree_vars + rng.gen_range(0..vars.len() - first_tree_vars)];
            extract.push_str(&format!("join ${a} == ${b} "));
        }
    }
    let mut construct = String::from("out { ");
    if vars.is_empty() {
        construct.push_str("answer ");
    } else {
        let n = rng.gen_range(1..=vars.len());
        for v in vars.iter().take(n) {
            if rng.gen_bool(0.2) {
                construct.push_str(&format!("copy ${v} "));
            } else {
                construct.push_str(&format!("all ${v} "));
            }
        }
    }
    if rng.gen_bool(0.2) {
        construct.push_str(&format!(
            "@{} = \"{}\" ",
            pick(rng, ATTRS),
            pick(rng, VALUES)
        ));
    }
    construct.push('}');
    format!("rule {{ extract {{ {extract}}} construct {{ {construct} }} }}")
}

// ----------------------------------------------------------------------
// WG-Log query generator
// ----------------------------------------------------------------------

/// A random WG-Log program as DSL text: typed query nodes (tags double as
/// object types), plain/negated/regular-path edges labelled by child tags,
/// and a collector construct with the `result` goal. Non-vacuous against
/// the instance mapping (child tags become edge labels, attributes come
/// from the shared pools).
pub fn gen_wglog(rng: &mut Rng) -> String {
    let n = rng.gen_range(1..4usize);
    let mut query = String::new();
    for i in 0..n {
        query.push_str(&format!("$q{i}: {}", pick(rng, TAGS)));
        if rng.gen_bool(0.15) {
            let attr = if rng.gen_bool(0.5) {
                "text"
            } else {
                pick(rng, ATTRS)
            };
            let op = ["=", ">=", "<="][rng.gen_range(0..3)];
            query.push_str(&format!(" where {attr} {op} \"{}\"", pick(rng, VALUES)));
        }
        query.push_str("  ");
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if rng.gen_bool(0.2) {
            query.push_str("not ");
        }
        let edge = match rng.gen_range(0..10) {
            // Regular path over two labels (the GraphLog dashed edge).
            0 => format!("-({}|{})+->", pick(rng, TAGS), pick(rng, TAGS)),
            1 => format!("-({})+->", pick(rng, TAGS)),
            // Any-label edge.
            2 => "-*->".to_string(),
            _ => format!("-{}->", pick(rng, TAGS)),
        };
        query.push_str(&format!("$q{a} {edge} $q{b}  "));
    }
    let target = rng.gen_range(0..n);
    // `set` is a suffix of the node declaration, so it must precede edges.
    let mut construct = "$c: result".to_string();
    if rng.gen_bool(0.25) {
        construct.push_str(&format!(" set tag = \"{}\"", pick(rng, VALUES)));
    }
    construct.push_str(&format!("  $c -member-> $q{target}"));
    format!("rule {{ query {{ {query}}} construct {{ {construct} }} }} goal result")
}

// ----------------------------------------------------------------------
// XPath query generator
// ----------------------------------------------------------------------

fn xpath_predicate(rng: &mut Rng) -> String {
    match rng.gen_range(0..8) {
        0 => format!("@{}", pick(rng, ATTRS)),
        1 => format!("@{}='{}'", pick(rng, ATTRS), pick(rng, VALUES)),
        2 => pick(rng, TAGS).to_string(),
        3 => format!("{}", rng.gen_range(1..4)),
        4 => format!("count({})>{}", pick(rng, TAGS), rng.gen_range(0..2)),
        5 => format!("not({})", pick(rng, TAGS)),
        6 => format!("text()='{}'", pick(rng, VALUES)),
        _ => format!(
            "@{} {} {}",
            pick(rng, ATTRS),
            ["<", "<=", ">", ">=", "!="][rng.gen_range(0..5)],
            rng.gen_range(0..30)
        ),
    }
}

fn xpath_step(rng: &mut Rng) -> String {
    let mut step = match rng.gen_range(0..12) {
        0 => "*".to_string(),
        1 => "text()".to_string(),
        2 => format!("descendant::{}", pick(rng, TAGS)),
        3 => "parent::*".to_string(),
        4 => format!("following-sibling::{}", pick(rng, TAGS)),
        5 => format!("ancestor-or-self::{}", pick(rng, TAGS)),
        _ => pick(rng, TAGS).to_string(),
    };
    if !step.ends_with("()") {
        for _ in 0..rng.gen_range(0..2) {
            step.push_str(&format!("[{}]", xpath_predicate(rng)));
        }
    }
    step
}

fn xpath_path(rng: &mut Rng) -> String {
    let mut p = if rng.gen_bool(0.8) { "//" } else { "/" }.to_string();
    p.push_str(&xpath_step(rng));
    for _ in 0..rng.gen_range(0..3usize) {
        p.push_str(if rng.gen_bool(0.4) { "//" } else { "/" });
        p.push_str(&xpath_step(rng));
    }
    p
}

/// A random XPath expression within the supported 1.0 subset: abbreviated
/// and explicit axes, attribute/positional/boolean predicates, unions,
/// and the occasional scalar wrapper.
pub fn gen_xpath(rng: &mut Rng) -> String {
    let p = xpath_path(rng);
    match rng.gen_range(0..10) {
        0 => format!("count({p})"),
        1 => format!("{p} | {}", xpath_path(rng)),
        2 => format!(
            "count({p}) {} {}",
            ["=", ">", "<="][rng.gen_range(0..3)],
            rng.gen_range(0..4)
        ),
        _ => p,
    }
}

// ----------------------------------------------------------------------
// Cross-engine intents
// ----------------------------------------------------------------------

/// A query intent expressible in both XML-GL and XPath with provably equal
/// result counts — the cross-engine oracle of the testkit. (WG-Log is
/// excluded from count equality because the instance mapping folds atomic
/// elements into attributes, changing what is countable.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// All elements named `.0` — `//t`.
    All(String),
    /// Elements `.0` with a child `.1` — `//p[c]`, distinct parents.
    WithChild(String, String),
    /// Elements `.0` without any child `.1` — `count(//p) - count(//p[c])`.
    WithoutChild(String, String),
    /// Child chains `.0/.1/.2` — `//a/b/c` (one embedding per leaf).
    Chain(String, String, String),
    /// Descendants `.1` under some `.0` — `//a//d`, distinct descendants.
    Deep(String, String),
}

impl Intent {
    pub fn gen(rng: &mut Rng) -> Intent {
        let t = |rng: &mut Rng| pick(rng, TAGS).to_string();
        match rng.gen_range(0..5) {
            0 => Intent::All(t(rng)),
            1 => Intent::WithChild(t(rng), t(rng)),
            2 => Intent::WithoutChild(t(rng), t(rng)),
            3 => Intent::Chain(t(rng), t(rng), t(rng)),
            _ => Intent::Deep(t(rng), t(rng)),
        }
    }

    /// Parse the textual descriptor produced by `Display` (corpus format).
    pub fn parse(s: &str) -> Option<Intent> {
        let mut w = s.split_whitespace();
        let kind = w.next()?;
        let rest: Vec<&str> = w.collect();
        let own = |i: usize| rest.get(i).map(|s| s.to_string());
        match (kind, rest.len()) {
            ("all", 1) => Some(Intent::All(own(0)?)),
            ("with-child", 2) => Some(Intent::WithChild(own(0)?, own(1)?)),
            ("without-child", 2) => Some(Intent::WithoutChild(own(0)?, own(1)?)),
            ("chain", 3) => Some(Intent::Chain(own(0)?, own(1)?, own(2)?)),
            ("deep", 2) => Some(Intent::Deep(own(0)?, own(1)?)),
            _ => None,
        }
    }

    /// The XML-GL side of the intent. The variable the count is taken over
    /// is always `$x`; [`Intent::distinct`] says whether to deduplicate.
    pub fn xmlgl(&self) -> String {
        let body = match self {
            Intent::All(t) => format!("{t} as $x"),
            Intent::WithChild(p, c) => format!("{p} as $x {{ {c} }}"),
            Intent::WithoutChild(p, c) => format!("{p} as $x {{ not {c} }}"),
            Intent::Chain(a, b, c) => format!("{a} as $x {{ {b} {{ {c} }} }}"),
            Intent::Deep(a, d) => format!("{a} {{ deep {d} as $x }}"),
        };
        format!("rule {{ extract {{ {body} }} construct {{ out {{ all $x }} }} }}")
    }

    /// The XPath side. `WithoutChild` is counted as a difference of two
    /// selects, handled in the oracle.
    pub fn xpath(&self) -> String {
        match self {
            Intent::All(t) => format!("//{t}"),
            Intent::WithChild(p, c) => format!("//{p}[{c}]"),
            Intent::WithoutChild(p, c) => format!("//{p}[not({c})]"),
            Intent::Chain(a, b, c) => format!("//{a}/{b}/{c}"),
            Intent::Deep(a, d) => format!("//{a}//{d}"),
        }
    }

    /// Must the XML-GL binding count be deduplicated on `$x`? (A parent
    /// with two matching children yields two embeddings but one `//p[c]`
    /// node; a descendant under two nested `a`s yields two embeddings but
    /// one `//a//d` node.)
    pub fn distinct(&self) -> bool {
        matches!(self, Intent::WithChild(..) | Intent::Deep(..))
    }

    /// Positive intents are monotone under subtree pruning; `WithoutChild`
    /// is not (removing a child can make its parent start matching).
    pub fn positive(&self) -> bool {
        !matches!(self, Intent::WithoutChild(..))
    }
}

impl std::fmt::Display for Intent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Intent::All(t) => write!(f, "all {t}"),
            Intent::WithChild(p, c) => write!(f, "with-child {p} {c}"),
            Intent::WithoutChild(p, c) => write!(f, "without-child {p} {c}"),
            Intent::Chain(a, b, c) => write!(f, "chain {a} {b} {c}"),
            Intent::Deep(a, d) => write!(f, "deep {a} {d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::case_rng;

    #[test]
    fn xmlgl_generator_is_always_syntactically_valid() {
        for seed in 0..400 {
            let mut rng = case_rng(seed);
            let src = gen_xmlgl(&mut rng);
            gql_xmlgl::dsl::parse_unchecked(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn wglog_generator_is_always_syntactically_valid() {
        for seed in 0..400 {
            let mut rng = case_rng(seed);
            let src = gen_wglog(&mut rng);
            gql_wglog::dsl::parse_unchecked(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn xpath_generator_is_always_syntactically_valid() {
        for seed in 0..400 {
            let mut rng = case_rng(seed);
            let src = gen_xpath(&mut rng);
            gql_xpath::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn intent_descriptor_roundtrips() {
        for seed in 0..100 {
            let mut rng = case_rng(seed);
            let i = Intent::gen(&mut rng);
            assert_eq!(Intent::parse(&i.to_string()), Some(i.clone()), "{i}");
            // Both renderings parse in their engines.
            gql_xmlgl::dsl::parse(&i.xmlgl()).unwrap_or_else(|e| panic!("{i}: {e}"));
            gql_xpath::parse(&i.xpath()).unwrap_or_else(|e| panic!("{i}: {e}"));
        }
    }

    #[test]
    fn documents_parse_and_are_reserialization_stable() {
        for seed in 0..200 {
            let mut rng = case_rng(seed);
            let xml = document_xml(&mut rng);
            let doc = gql_ssdm::Document::parse_str(&xml)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{xml}"));
            let once = doc.to_xml_string();
            let again = gql_ssdm::Document::parse_str(&once).expect("reparses");
            assert_eq!(once, again.to_xml_string(), "seed {seed}");
        }
    }
}
