//! The budgeted differential fuzz runner behind the `gql-fuzz` binary.
//!
//! A case is a `(generator, seed)` pair: the seed drives [`case_rng`],
//! which produces a document and a query, which the generator's oracle
//! battery checks. On disagreement the case is shrunk and reported as a
//! replayable [`Failure`] ready to append to `tests/corpus/`.

use std::time::{Duration, Instant};

use crate::generators::{self, Intent};
use crate::harness::case_rng;
use crate::oracle;
use crate::shrink;

/// One of the four case generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generator {
    /// Random XML-GL programs → matcher/construct/engine path oracles.
    XmlGl,
    /// Random WG-Log programs → fixpoint-mode and loader oracles.
    WgLog,
    /// Random XPath expressions → indexed-vs-lazy oracles.
    XPath,
    /// Cross-engine intents → XML-GL vs XPath count agreement.
    Intent,
}

impl Generator {
    pub const ALL: [Generator; 4] = [
        Generator::XmlGl,
        Generator::WgLog,
        Generator::XPath,
        Generator::Intent,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Generator::XmlGl => "xmlgl",
            Generator::WgLog => "wglog",
            Generator::XPath => "xpath",
            Generator::Intent => "intent",
        }
    }

    pub fn from_name(s: &str) -> Option<Generator> {
        match s {
            "xmlgl" => Some(Generator::XmlGl),
            "wglog" => Some(Generator::WgLog),
            "xpath" => Some(Generator::XPath),
            "intent" => Some(Generator::Intent),
            _ => None,
        }
    }
}

/// A minimized, seed-replayable counterexample.
#[derive(Debug, Clone)]
pub struct Failure {
    pub generator: &'static str,
    pub seed: u64,
    /// The oracle's disagreement message (first line names the oracle).
    pub message: String,
    /// Minimized document (XML, one line).
    pub doc: String,
    /// Minimized query (DSL/XPath source, or an intent descriptor).
    pub query: String,
}

impl Failure {
    /// The one-line command that replays this case from its seed.
    pub fn replay_command(&self) -> String {
        format!(
            "cargo run -p gql-testkit --bin gql-fuzz -- replay --generator {} --seed {}",
            self.generator, self.seed
        )
    }
}

/// Deterministically derive the `(document, query)` inputs of a case.
pub fn case_inputs(generator: Generator, seed: u64) -> (String, String) {
    let mut rng = case_rng(seed);
    let doc = generators::document_xml(&mut rng);
    let query = match generator {
        Generator::XmlGl => generators::gen_xmlgl(&mut rng),
        Generator::WgLog => generators::gen_wglog(&mut rng),
        Generator::XPath => generators::gen_xpath(&mut rng),
        Generator::Intent => Intent::gen(&mut rng).to_string(),
    };
    (doc, query)
}

/// Run one generator's oracle battery over explicit inputs. Unparseable
/// inputs are vacuous (`Ok`), so the same entry point serves fuzzing,
/// shrinking and corpus replay.
pub fn check_case(generator: Generator, doc_xml: &str, query: &str) -> Result<(), String> {
    let Some(doc) = oracle::normalize(doc_xml) else {
        return Ok(());
    };
    match generator {
        Generator::XmlGl => oracle::check_xmlgl_case(&doc, query),
        Generator::WgLog => oracle::check_wglog_case(&doc, query),
        Generator::XPath => oracle::check_xpath_case(&doc, query),
        Generator::Intent => match Intent::parse(query) {
            Some(i) => oracle::check_intent_case(&doc, &i),
            None => Ok(()),
        },
    }
}

/// Render the execution profile of a case's engine run as a text tree, for
/// `gql-fuzz replay --profile`. `None` when the inputs don't parse into an
/// engine-runnable query (the vacuous cases of [`check_case`]); engine
/// errors are rendered into the output rather than hidden, since a profile
/// request is a debugging aid.
pub fn profile_case(generator: Generator, doc_xml: &str, query: &str) -> Option<String> {
    use gql_core::engine::{Engine, QueryKind};
    let doc = oracle::normalize(doc_xml)?;
    let kind = match generator {
        Generator::XmlGl => QueryKind::XmlGl(gql_xmlgl::dsl::parse_unchecked(query).ok()?),
        Generator::WgLog => QueryKind::WgLog(gql_wglog::dsl::parse_unchecked(query).ok()?),
        Generator::XPath => QueryKind::XPath(query.to_string()),
        // Intents run on both engines; profile the XPath side, which is the
        // one with per-step instrumentation.
        Generator::Intent => QueryKind::XPath(Intent::parse(query)?.xpath()),
    };
    let engine = Engine::new();
    match engine.run_profiled(&kind, &doc) {
        Ok(outcome) => {
            let mut text = outcome
                .profile
                .map(|p| p.to_text())
                .unwrap_or_else(|| "(empty profile)".to_string());
            // Plan provenance for the case: the lowered logical plan and the
            // engine's plan-cache behaviour, same surfaces `gql-prof` prints.
            for line in outcome.plan.lines() {
                text.push_str("plan: ");
                text.push_str(line);
                text.push('\n');
            }
            let stats = engine.plan_cache_stats();
            text.push_str(&format!(
                "plan_cache: {{hit: {}, miss: {}, evict: {}, replan: {}}}\n",
                stats.hits, stats.misses, stats.evictions, stats.replans
            ));
            Some(text)
        }
        Err(e) => Some(format!("engine error: {e}\n")),
    }
}

/// Execute one `(generator, seed)` case; on disagreement, shrink both the
/// document and the query before reporting.
pub fn fuzz_one(generator: Generator, seed: u64) -> Result<(), Failure> {
    let (doc, query) = case_inputs(generator, seed);
    match check_case(generator, &doc, &query) {
        Ok(()) => Ok(()),
        Err(first_msg) => {
            let (min_doc, min_query) =
                shrink::shrink_case(&doc, &query, |d, q| check_case(generator, d, q).is_err());
            let message = check_case(generator, &min_doc, &min_query)
                .err()
                .unwrap_or(first_msg);
            Err(Failure {
                generator: generator.name(),
                seed,
                message,
                doc: min_doc,
                query: min_query,
            })
        }
    }
}

/// Outcome of a budgeted run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases executed (seeds × generators actually reached).
    pub executed: u64,
    pub failures: Vec<Failure>,
}

/// Run `cases` seeds (starting at `start_seed`) through each generator,
/// stopping early when the optional wall-clock budget runs out.
/// `on_case` observes every executed case (for progress output).
pub fn run_fuzz(
    generators: &[Generator],
    start_seed: u64,
    cases: u64,
    budget: Option<Duration>,
    mut on_case: impl FnMut(Generator, u64),
) -> FuzzReport {
    let started = Instant::now();
    let mut report = FuzzReport::default();
    'outer: for seed in start_seed..start_seed.saturating_add(cases) {
        for &g in generators {
            if let Some(b) = budget {
                if started.elapsed() >= b {
                    break 'outer;
                }
            }
            on_case(g, seed);
            report.executed += 1;
            if let Err(f) = fuzz_one(g, seed) {
                report.failures.push(f);
            }
        }
    }
    report
}

/// Sanity check used by unit tests and the CI smoke job: a small clean
/// sweep over every generator.
pub fn smoke(cases: u64) -> FuzzReport {
    run_fuzz(&Generator::ALL, 0, cases, None, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_inputs_are_deterministic() {
        for g in Generator::ALL {
            assert_eq!(case_inputs(g, 17), case_inputs(g, 17));
        }
    }

    #[test]
    fn generator_names_roundtrip() {
        for g in Generator::ALL {
            assert_eq!(Generator::from_name(g.name()), Some(g));
        }
        assert_eq!(Generator::from_name("nope"), None);
    }

    #[test]
    fn small_differential_sweep_is_clean() {
        let report = smoke(40);
        let msgs: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{} seed {}: {}", f.generator, f.seed, f.message))
            .collect();
        assert!(msgs.is_empty(), "disagreements found:\n{}", msgs.join("\n"));
        assert_eq!(report.executed, 40 * Generator::ALL.len() as u64);
    }

    #[test]
    fn unparseable_inputs_are_vacuous() {
        assert_eq!(
            check_case(Generator::XmlGl, "not xml at all", "rule {"),
            Ok(())
        );
        assert_eq!(check_case(Generator::XPath, "<a/>", "//["), Ok(()));
        assert_eq!(
            check_case(Generator::Intent, "<a/>", "no such intent"),
            Ok(())
        );
    }

    /// A doc in which the forced-hash-collision verification fallback runs:
    /// equal text under different tags, joined on deep equality.
    #[test]
    fn join_case_with_equal_content_is_clean() {
        let doc = "<r><a>t</a><a>t</a><b>t</b><b>u</b></r>";
        let query = "rule { extract { a as $l { text as $x } b as $r { text as $y } \
                     join $x == $y } construct { out { all $l } } }";
        assert_eq!(check_case(Generator::XmlGl, doc, query), Ok(()));
    }
}
