//! Fault-injection differential oracles: the degradation ladder under test.
//!
//! Every [`FaultPlan`] variant is driven against every case generator and
//! checked against one invariant — an injected fault may **never** produce a
//! wrong answer, a hang, or a process abort. The two acceptable outcomes
//! are:
//!
//! 1. *graceful degradation*: the faulted bounded run returns exactly the
//!    bytes of the unfaulted baseline (index build failed → scan mode
//!    answered; a worker panicked → the sequential retry answered), or
//! 2. *clean refusal*: the faulted run surfaces a structured
//!    [`CoreError::Budget`] whose partial-progress report names the phase
//!    reached (a stalled fixpoint tripping its deadline, a cancelled run).
//!
//! Baseline errors (analyzer-rejected programs, syntax errors) must stay
//! errors under fault — a fault may not *un*-reject a program.

use std::time::Duration;

use gql_core::engine::{Engine, QueryKind};
use gql_core::{Budget, CoreError};
use gql_guard::fault::{self, FaultPlan};

use crate::fuzz::{case_inputs, Generator};
use crate::generators::Intent;
use crate::oracle;

/// Every fault variant the sweep drives, with the worker index / round
/// chosen to hit real seams on small generated cases.
pub fn all_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::fail_index_build(),
        FaultPlan::corrupt_postings(),
        FaultPlan::corrupt_plan_cache(),
        FaultPlan::panic_worker(0),
        FaultPlan::panic_worker(1),
        FaultPlan::stall_round(1),
    ]
}

/// The engine-runnable queries a generator's source text denotes; empty for
/// unparseable inputs (vacuous, mirroring [`crate::fuzz::check_case`]).
/// Intents contribute both their XML-GL and XPath renderings, so one intent
/// case exercises two engines under the same fault.
pub fn query_kinds(generator: Generator, query: &str) -> Vec<QueryKind> {
    match generator {
        Generator::XmlGl => gql_xmlgl::dsl::parse_unchecked(query)
            .ok()
            .map(QueryKind::XmlGl)
            .into_iter()
            .collect(),
        Generator::WgLog => gql_wglog::dsl::parse_unchecked(query)
            .ok()
            .map(QueryKind::WgLog)
            .into_iter()
            .collect(),
        Generator::XPath => vec![QueryKind::XPath(query.to_string())],
        Generator::Intent => match Intent::parse(query) {
            Some(i) => {
                let mut v = vec![QueryKind::XPath(i.xpath())];
                if let Ok(p) = gql_xmlgl::dsl::parse_unchecked(&i.xmlgl()) {
                    v.push(QueryKind::XmlGl(p));
                }
                v
            }
            None => Vec::new(),
        },
    }
}

/// Check one `(document, query, fault, budget)` case: run the unfaulted,
/// unlimited baseline, then the same query bounded by `budget` with `plan`
/// installed, and demand degradation-to-correct or a clean budget error.
pub fn check_fault_case(
    generator: Generator,
    doc_xml: &str,
    query: &str,
    plan: &FaultPlan,
    budget: &Budget,
) -> Result<(), String> {
    let Some(doc) = oracle::normalize(doc_xml) else {
        return Ok(());
    };
    for kind in query_kinds(generator, query) {
        let baseline = Engine::new().run(&kind, &doc);
        let faulted = fault::with_plan(plan.clone(), || {
            Engine::new().run_bounded(&kind, &doc, budget)
        });
        match (baseline, faulted) {
            (Ok(b), Ok(f)) => {
                let (b, f) = (b.output.to_xml_string(), f.output.to_xml_string());
                if b != f {
                    return Err(format!(
                        "fault-degradation: {plan:?} changed the answer\nbaseline: {b}\nfaulted:  {f}"
                    ));
                }
            }
            (_, Err(CoreError::Budget(g))) => {
                // A clean structured refusal: the report must be
                // non-degenerate (it names the phase reached).
                if g.report.phase.is_empty() {
                    return Err(format!(
                        "fault-refusal: {plan:?} produced a degenerate budget report: {g}"
                    ));
                }
            }
            (Err(be), Err(fe)) => {
                if format!("{be}") != format!("{fe}") {
                    return Err(format!(
                        "fault-error-stability: {plan:?} changed the error\nbaseline: {be}\nfaulted:  {fe}"
                    ));
                }
            }
            (Ok(_), Err(fe)) => {
                return Err(format!(
                    "fault-refusal: {plan:?} turned a clean run into a non-budget error: {fe}"
                ));
            }
            (Err(be), Ok(_)) => {
                return Err(format!(
                    "fault-error-stability: {plan:?} made a rejected query succeed \
                     (baseline error: {be})"
                ));
            }
        }
    }
    Ok(())
}

/// Seeded sweep: `seeds` consecutive seeds × every generator × every
/// [`all_plans`] variant, each under `budget`. Returns the number of
/// `(seed, generator, plan)` cells executed, or the first violation with
/// enough context to replay it.
pub fn run_fault_matrix(start_seed: u64, seeds: u64, budget: &Budget) -> Result<u64, String> {
    let mut executed = 0u64;
    for seed in start_seed..start_seed.saturating_add(seeds) {
        for g in Generator::ALL {
            let (doc, query) = case_inputs(g, seed);
            for plan in all_plans() {
                check_fault_case(g, &doc, &query, &plan, budget).map_err(|msg| {
                    format!("generator {} seed {seed} plan {plan:?}: {msg}", g.name())
                })?;
                executed += 1;
            }
        }
    }
    Ok(executed)
}

/// The budget the CI fault-injection smoke step uses: generous enough that
/// only genuinely stalled runs trip it, small enough to bound the sweep's
/// wall clock even against injected stalls.
pub fn smoke_budget() -> Budget {
    Budget::unlimited().with_timeout(Duration::from_millis(2000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_ssdm::Document;

    #[test]
    fn fault_matrix_small_sweep_is_clean() {
        let executed = run_fault_matrix(0, 4, &smoke_budget()).unwrap();
        assert_eq!(
            executed,
            4 * Generator::ALL.len() as u64 * all_plans().len() as u64
        );
    }

    #[test]
    fn stalled_fixpoint_trips_a_deadline_budget() {
        let doc =
            Document::parse_str("<guide><restaurant><menu/></restaurant><restaurant/></guide>")
                .unwrap();
        let program = gql_wglog::dsl::parse(
            "rule { query { $r: restaurant  $m: menu  $r -menu-> $m } \
                    construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        )
        .unwrap();
        let kind = QueryKind::WgLog(program);
        let budget = Budget::unlimited().with_timeout_ms(1);
        let err = fault::with_plan(FaultPlan::stall_round(1), || {
            Engine::new().run_bounded(&kind, &doc, &budget).unwrap_err()
        });
        let CoreError::Budget(g) = err else {
            panic!("expected a budget error, got {err:?}");
        };
        assert_eq!(g.kind.name(), "timeout");
        assert!(!g.report.phase.is_empty());
    }

    #[test]
    fn injected_worker_panic_degrades_to_the_sequential_answer() {
        use gql_trace::Trace;
        use gql_xmlgl::eval::{match_rule_guarded, MatchMode};
        // Enough candidates that the parallel matcher actually fans out.
        let mut xml = String::from("<r>");
        for i in 0..64 {
            xml.push_str(&format!("<a><b>{i}</b></a>"));
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let rule = gql_xmlgl::dsl::parse_unchecked(
            "rule { extract { a as $x { b as $y } } construct { out { all $x } } }",
        )
        .unwrap()
        .rules
        .remove(0);
        let sequential = match_rule_guarded(
            &rule,
            &doc,
            None,
            MatchMode::Sequential,
            &Trace::disabled(),
            &gql_guard::Guard::unlimited(),
        );
        let retried = fault::with_plan(FaultPlan::panic_worker(0), || {
            let trace = Trace::profiling();
            let bs = match_rule_guarded(
                &rule,
                &doc,
                None,
                MatchMode::Parallel,
                &trace,
                &gql_guard::Guard::unlimited(),
            );
            (bs, trace.finish())
        });
        assert_eq!(
            retried.0.len(),
            sequential.len(),
            "sequential retry must reproduce the sequential binding set"
        );
    }
}
