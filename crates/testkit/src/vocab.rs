//! The shared tag/attribute/value vocabulary.
//!
//! Generated queries are only useful oracle food if they can actually hit
//! something in generated documents, so the document generators and all
//! three query generators draw from these pools. `TAGS` is a superset of
//! the `gql_ssdm::generator::random_tree` vocabulary (`a`–`d`), and in the
//! WG-Log instance mapping child tags double as edge labels, so the same
//! pool serves both node types and edge labels.

use gql_ssdm::rng::Rng;

/// Element names — also WG-Log object types and edge labels.
pub const TAGS: &[&str] = &["a", "b", "c", "d", "item"];

/// Attribute names; overlaps `gql_ssdm::generator`'s extra-attribute pool.
pub const ATTRS: &[&str] = &["id", "kind", "lang", "rank", "k"];

/// A small value domain, so equal values (and thus joins, equal canonical
/// forms and hash-equal candidates) occur often.
pub const VALUES: &[&str] = &["x", "y", "z", "10", "20", "2000", "north"];

/// Uniform pick from a pool.
pub fn pick<'a>(rng: &mut Rng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}
