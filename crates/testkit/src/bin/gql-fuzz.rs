//! `gql-fuzz` — budgeted differential fuzzing across all three engines.
//!
//! ```text
//! gql-fuzz run [--cases N] [--start-seed S] [--generators xmlgl,wglog,xpath,intent]
//!              [--budget-secs T] [--corpus DIR]
//! gql-fuzz replay --generator G --seed S [--profile]
//! gql-fuzz corpus [DIR]
//! ```
//!
//! `run` executes N seeds through every selected generator's oracle
//! battery; each disagreement is minimized (document *and* query) and
//! printed with an exact replay command, and — when `--corpus` is given —
//! appended as a `.case` file so it becomes a permanent regression test.
//! `replay` re-runs a single `(generator, seed)` case; with `--profile` it
//! also prints the engine's execution profile for the case, so a slow or
//! disagreeing case can be inspected span by span. `corpus` replays a
//! corpus directory (default `tests/corpus`). Exit status is non-zero
//! whenever any disagreement is found.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use gql_testkit::corpus::{self, CorpusCase};
use gql_testkit::fuzz::{case_inputs, fuzz_one, profile_case, run_fuzz, Failure, Generator};

fn usage() -> ! {
    eprintln!(
        "usage:\n  gql-fuzz run [--cases N] [--start-seed S] [--generators a,b] \
         [--budget-secs T] [--corpus DIR]\n  gql-fuzz replay --generator G --seed S [--profile]\n  \
         gql-fuzz corpus [DIR]"
    );
    std::process::exit(2);
}

fn parse_u64(args: &mut std::slice::Iter<String>, flag: &str) -> u64 {
    match args.next().map(|v| v.parse::<u64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs an unsigned integer");
            usage();
        }
    }
}

fn print_failure(f: &Failure) {
    println!("FAIL {} seed {}: {}", f.generator, f.seed, f.message);
    println!("  minimized doc:   {}", f.doc);
    println!("  minimized query: {}", f.query);
    println!("  replay: {}", f.replay_command());
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cases = 1000u64;
    let mut start_seed = 0u64;
    let mut generators: Vec<Generator> = Generator::ALL.to_vec();
    let mut budget: Option<Duration> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => cases = parse_u64(&mut it, "--cases"),
            "--start-seed" => start_seed = parse_u64(&mut it, "--start-seed"),
            "--budget-secs" => {
                budget = Some(Duration::from_secs(parse_u64(&mut it, "--budget-secs")))
            }
            "--generators" => {
                let Some(list) = it.next() else { usage() };
                generators = list
                    .split(',')
                    .map(|s| {
                        Generator::from_name(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown generator: {s}");
                            usage();
                        })
                    })
                    .collect();
            }
            "--corpus" => corpus_dir = it.next().map(PathBuf::from),
            _ => usage(),
        }
    }
    let names: Vec<&str> = generators.iter().map(|g| g.name()).collect();
    println!(
        "fuzzing {} seeds from {start_seed} over [{}]{}",
        cases,
        names.join(", "),
        budget.map_or(String::new(), |b| format!(", budget {}s", b.as_secs()))
    );
    let mut done = 0u64;
    let report = run_fuzz(&generators, start_seed, cases, budget, |_, _| {
        done += 1;
        if done.is_multiple_of(4000) {
            println!("  … {done} cases");
        }
    });
    for f in &report.failures {
        print_failure(f);
        if let Some(dir) = &corpus_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create corpus dir: {e}");
            } else {
                let path = dir.join(format!("{}-seed{}.case", f.generator, f.seed));
                let entry = CorpusCase::from(f).render();
                match std::fs::write(&path, entry) {
                    Ok(()) => println!("  appended to corpus: {}", path.display()),
                    Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                }
            }
        }
    }
    println!(
        "{} cases executed, {} disagreement(s)",
        report.executed,
        report.failures.len()
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut generator = None;
    let mut seed = None;
    let mut profile = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--generator" => {
                generator = it.next().and_then(|s| Generator::from_name(s));
            }
            "--seed" => seed = Some(parse_u64(&mut it, "--seed")),
            "--profile" => profile = true,
            _ => usage(),
        }
    }
    let (Some(g), Some(s)) = (generator, seed) else {
        usage()
    };
    let status = match fuzz_one(g, s) {
        Ok(()) => {
            println!("OK {} seed {s}: all oracles agree", g.name());
            ExitCode::SUCCESS
        }
        Err(f) => {
            print_failure(&f);
            ExitCode::FAILURE
        }
    };
    if profile {
        let (doc, query) = case_inputs(g, s);
        match profile_case(g, &doc, &query) {
            Some(text) => {
                println!("profile ({} seed {s}):", g.name());
                print!("{text}");
            }
            None => println!("profile: case inputs do not form a runnable query"),
        }
    }
    status
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/corpus"));
    let cases = match corpus::load_dir(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = 0usize;
    for (path, case) in &cases {
        match case.replay() {
            Ok(()) => println!("OK   {}", path.display()),
            Err(e) => {
                failed += 1;
                println!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!("{} corpus case(s), {failed} failing", cases.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        _ => usage(),
    }
}
