//! `gql-fuzz` — budgeted differential fuzzing across all three engines.
//!
//! ```text
//! gql-fuzz run [--cases N] [--start-seed S] [--generators xmlgl,wglog,xpath,intent]
//!              [--budget-secs T] [--corpus DIR]
//! gql-fuzz replay --generator G --seed S [--profile]
//!                 [--timeout-ms N] [--max-rounds N] [--max-matches N]
//! gql-fuzz corpus [DIR]
//! gql-fuzz faults [--seeds N] [--start-seed S] [--timeout-ms T]
//! gql-fuzz chaos [--corpus DIR] [--seed S] [--budget-secs T]
//! ```
//!
//! `run` executes N seeds through every selected generator's oracle
//! battery; each disagreement is minimized (document *and* query) and
//! printed with an exact replay command, and — when `--corpus` is given —
//! appended as a `.case` file so it becomes a permanent regression test.
//! `replay` re-runs a single `(generator, seed)` case; with `--profile` it
//! also prints the engine's execution profile for the case, so a slow or
//! disagreeing case can be inspected span by span; with budget flags it
//! instead runs each engine-runnable query of the case bounded and prints
//! whether it completed or tripped cleanly. `corpus` replays a corpus
//! directory (default `tests/corpus`). `faults` drives the seeded
//! fault-injection sweep (every `FaultPlan` × generator × seed) under a
//! wall-clock smoke budget — the CI degradation check. `chaos` storms the
//! corpus through a live TCP server and the retrying client under the
//! service-layer fault matrix (torn/dropped replies, worker panics,
//! slow-loris reaping, hot reload mid-storm, rate-limit retry) — the CI
//! resilience check. Exit status is non-zero whenever any disagreement or
//! degradation violation is found.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use gql_core::engine::Engine;
use gql_core::{Budget, CoreError};
use gql_testkit::corpus::{self, CorpusCase};
use gql_testkit::fault::{query_kinds, run_fault_matrix, smoke_budget};
use gql_testkit::fuzz::{case_inputs, fuzz_one, profile_case, run_fuzz, Failure, Generator};

fn usage() -> ! {
    eprintln!(
        "usage:\n  gql-fuzz run [--cases N] [--start-seed S] [--generators a,b] \
         [--budget-secs T] [--corpus DIR]\n  gql-fuzz replay --generator G --seed S [--profile] \
         [--timeout-ms N] [--max-rounds N] [--max-matches N]\n  \
         gql-fuzz corpus [DIR]\n  gql-fuzz faults [--seeds N] [--start-seed S] [--timeout-ms T]\n  \
         gql-fuzz chaos [--corpus DIR] [--seed S] [--budget-secs T]"
    );
    std::process::exit(2);
}

/// Parse a flag's value as an unsigned integer; `min` rejects nonsensical
/// magnitudes (`--cases 0` would silently test nothing, a zero budget can
/// never admit a run). Prints the reason and exits 2 — never panics.
fn parse_u64_at_least(args: &mut std::slice::Iter<String>, flag: &str, min: u64) -> u64 {
    let Some(v) = args.next() else {
        eprintln!("{flag} needs an unsigned integer argument");
        usage();
    };
    match v.parse::<u64>() {
        Ok(n) if n >= min => n,
        Ok(n) => {
            eprintln!("{flag} must be at least {min}, got {n}");
            usage();
        }
        Err(_) => {
            eprintln!("{flag} needs an unsigned integer, got '{v}'");
            usage();
        }
    }
}

fn parse_u64(args: &mut std::slice::Iter<String>, flag: &str) -> u64 {
    parse_u64_at_least(args, flag, 0)
}

fn print_failure(f: &Failure) {
    println!("FAIL {} seed {}: {}", f.generator, f.seed, f.message);
    println!("  minimized doc:   {}", f.doc);
    println!("  minimized query: {}", f.query);
    println!("  replay: {}", f.replay_command());
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cases = 1000u64;
    let mut start_seed = 0u64;
    let mut generators: Vec<Generator> = Generator::ALL.to_vec();
    let mut budget: Option<Duration> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => cases = parse_u64_at_least(&mut it, "--cases", 1),
            "--start-seed" => start_seed = parse_u64(&mut it, "--start-seed"),
            "--budget-secs" => {
                budget = Some(Duration::from_secs(parse_u64_at_least(
                    &mut it,
                    "--budget-secs",
                    1,
                )))
            }
            "--generators" => {
                let Some(list) = it.next() else {
                    eprintln!("--generators needs a comma-separated list");
                    usage();
                };
                generators = list
                    .split(',')
                    .map(|s| {
                        Generator::from_name(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown generator: {s}");
                            usage();
                        })
                    })
                    .collect();
                if generators.is_empty() {
                    eprintln!("--generators selected no generators");
                    usage();
                }
            }
            "--corpus" => {
                let Some(dir) = it.next() else {
                    eprintln!("--corpus needs a directory argument");
                    usage();
                };
                corpus_dir = Some(PathBuf::from(dir));
            }
            other => {
                eprintln!("unknown option for `run`: {other}");
                usage();
            }
        }
    }
    let names: Vec<&str> = generators.iter().map(|g| g.name()).collect();
    println!(
        "fuzzing {} seeds from {start_seed} over [{}]{}",
        cases,
        names.join(", "),
        budget.map_or(String::new(), |b| format!(", budget {}s", b.as_secs()))
    );
    let mut done = 0u64;
    let report = run_fuzz(&generators, start_seed, cases, budget, |_, _| {
        done += 1;
        if done.is_multiple_of(4000) {
            println!("  … {done} cases");
        }
    });
    for f in &report.failures {
        print_failure(f);
        if let Some(dir) = &corpus_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create corpus dir: {e}");
            } else {
                let path = dir.join(format!("{}-seed{}.case", f.generator, f.seed));
                let entry = CorpusCase::from(f).render();
                match std::fs::write(&path, entry) {
                    Ok(()) => println!("  appended to corpus: {}", path.display()),
                    Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                }
            }
        }
    }
    println!(
        "{} cases executed, {} disagreement(s)",
        report.executed,
        report.failures.len()
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut generator = None;
    let mut seed = None;
    let mut profile = false;
    let mut budget = Budget::unlimited();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--generator" => {
                let Some(name) = it.next() else {
                    eprintln!("--generator needs a name argument");
                    usage();
                };
                generator = Some(Generator::from_name(name).unwrap_or_else(|| {
                    eprintln!("unknown generator: {name}");
                    usage();
                }));
            }
            "--seed" => seed = Some(parse_u64(&mut it, "--seed")),
            "--profile" => profile = true,
            "--timeout-ms" => {
                budget = budget.with_timeout_ms(parse_u64_at_least(&mut it, "--timeout-ms", 1))
            }
            "--max-rounds" => {
                budget = budget.with_max_rounds(parse_u64_at_least(&mut it, "--max-rounds", 1))
            }
            "--max-matches" => {
                budget = budget.with_max_matches(parse_u64_at_least(&mut it, "--max-matches", 1))
            }
            other => {
                eprintln!("unknown option for `replay`: {other}");
                usage();
            }
        }
    }
    let (Some(g), Some(s)) = (generator, seed) else {
        eprintln!("replay needs both --generator and --seed");
        usage()
    };
    if !budget.is_unlimited() {
        return replay_bounded(g, s, &budget);
    }
    let status = match fuzz_one(g, s) {
        Ok(()) => {
            println!("OK {} seed {s}: all oracles agree", g.name());
            ExitCode::SUCCESS
        }
        Err(f) => {
            print_failure(&f);
            ExitCode::FAILURE
        }
    };
    if profile {
        let (doc, query) = case_inputs(g, s);
        match profile_case(g, &doc, &query) {
            Some(text) => {
                println!("profile ({} seed {s}):", g.name());
                print!("{text}");
            }
            None => println!("profile: case inputs do not form a runnable query"),
        }
    }
    status
}

/// Bounded replay: run every engine-runnable query the case denotes under
/// `budget`. Completing and tripping cleanly are both acceptable; what the
/// budget must never cause is a non-budget failure.
fn replay_bounded(g: Generator, seed: u64, budget: &Budget) -> ExitCode {
    let (doc_xml, query) = case_inputs(g, seed);
    let Some(doc) = gql_testkit::oracle::normalize(&doc_xml) else {
        println!(
            "OK {} seed {seed}: generated document does not parse (vacuous)",
            g.name()
        );
        return ExitCode::SUCCESS;
    };
    let kinds = query_kinds(g, &query);
    if kinds.is_empty() {
        println!(
            "OK {} seed {seed}: generated query does not parse (vacuous)",
            g.name()
        );
        return ExitCode::SUCCESS;
    }
    let mut status = ExitCode::SUCCESS;
    for kind in kinds {
        let label = match &kind {
            gql_core::engine::QueryKind::XmlGl(_) => "xmlgl",
            gql_core::engine::QueryKind::WgLog(_) => "wglog",
            gql_core::engine::QueryKind::XPath(_) => "xpath",
        };
        match Engine::new().run_bounded(&kind, &doc, budget) {
            Ok(o) => println!(
                "OK {} seed {seed} [{label}]: completed under budget, {} result(s)",
                g.name(),
                o.result_count
            ),
            Err(CoreError::Budget(e)) => println!(
                "TRIPPED {} seed {seed} [{label}]: {} — {}",
                g.name(),
                e.kind.name(),
                e.report.to_text()
            ),
            Err(e) => {
                println!("FAIL {} seed {seed} [{label}]: {e}", g.name());
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}

/// The seeded fault-injection sweep: every `FaultPlan` variant against
/// every generator for `--seeds` consecutive seeds, each run bounded by
/// the smoke budget (override the wall clock with `--timeout-ms`). This is
/// the CI degradation check: any wrong answer, hang or abort under an
/// injected fault fails the command.
fn cmd_faults(args: &[String]) -> ExitCode {
    let mut seeds = 8u64;
    let mut start_seed = 0u64;
    let mut budget = smoke_budget();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => seeds = parse_u64_at_least(&mut it, "--seeds", 1),
            "--start-seed" => start_seed = parse_u64(&mut it, "--start-seed"),
            "--timeout-ms" => {
                budget = Budget::unlimited().with_timeout_ms(parse_u64_at_least(
                    &mut it,
                    "--timeout-ms",
                    1,
                ))
            }
            other => {
                eprintln!("unknown option for `faults`: {other}");
                usage();
            }
        }
    }
    println!("fault sweep: {seeds} seed(s) from {start_seed}, every plan × generator");
    match run_fault_matrix(start_seed, seeds, &budget) {
        Ok(executed) => {
            println!("{executed} (seed, generator, plan) cells executed, all degraded cleanly");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("FAIL {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The service-layer chaos matrix over a corpus directory: a live TCP
/// server with fault seams armed, stormed through the resilient client.
/// Bounded in wall-clock — a hang is a failure, not a timeout.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let mut dir = PathBuf::from("tests/corpus");
    let mut seed = 0u64;
    let mut budget = Duration::from_secs(120);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => {
                let Some(d) = it.next() else {
                    eprintln!("--corpus needs a directory argument");
                    usage();
                };
                dir = PathBuf::from(d);
            }
            "--seed" => seed = parse_u64(&mut it, "--seed"),
            "--budget-secs" => {
                budget = Duration::from_secs(parse_u64_at_least(&mut it, "--budget-secs", 1))
            }
            other => {
                eprintln!("unknown option for `chaos`: {other}");
                usage();
            }
        }
    }
    println!(
        "chaos matrix: corpus {} seed {seed}, wall budget {}s",
        dir.display(),
        budget.as_secs()
    );
    match gql_testkit::chaos_oracle::check_corpus_dir(&dir, seed, budget) {
        Ok(report) => {
            println!(
                "{} case(s) × {} scenario(s): {} request(s), {} retry(ies), all answers held",
                report.cases, report.scenarios, report.requests, report.retries
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("FAIL {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/corpus"));
    let cases = match corpus::load_dir(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = 0usize;
    for (path, case) in &cases {
        match case.replay() {
            Ok(()) => println!("OK   {}", path.display()),
            Err(e) => {
                failed += 1;
                println!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!("{} corpus case(s), {failed} failing", cases.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => usage(),
    }
}
