//! # gql-testkit — differential fuzzing and conformance harness
//!
//! The paper's core claim is that one query intent can be expressed in
//! WG-Log, XML-GL and a navigational language — which makes *cross-engine
//! agreement* the strongest correctness oracle this reproduction has. This
//! crate turns that observation into infrastructure:
//!
//! * [`harness`] — the seed-reporting property runner shared by the
//!   workspace property tests, corpus replay and the fuzz CLI. Every
//!   failure prints an exact one-line replay command.
//! * [`vocab`] — the tag/attribute/value vocabulary shared between the
//!   document generators and the query generators, so generated queries
//!   are non-vacuous against generated documents.
//! * [`generators`] — deterministic random documents, XML-GL rules,
//!   WG-Log programs, XPath expressions, and cross-engine [`Intent`]s.
//! * [`oracle`] — differential oracles over every dual execution path
//!   (indexed vs scan, parallel vs sequential, semi-naive vs naive
//!   fixpoint, prebuilt vs lazy index, translated vs direct) plus
//!   metamorphic properties (print→parse round-trips, re-serialization
//!   invariance, prune monotonicity).
//! * [`fault`] — fault-injection differential oracles: every
//!   [`FaultPlan`](gql_guard::fault::FaultPlan) variant driven against
//!   every generator, proving injected faults degrade to the correct
//!   answer or surface a clean budget error — never a wrong answer.
//! * [`shrink`] — greedy delta-debugging that minimizes both the failing
//!   document and the failing query.
//! * [`fuzz`] — the budgeted runner behind the `gql-fuzz` binary.
//! * [`corpus`] — the replayable regression-corpus file format; every bug
//!   the fuzzer ever finds becomes a permanent regression test under
//!   `tests/corpus/`.
//! * [`serve_oracle`] — the concurrency differential oracle: the whole
//!   corpus replayed through the `gql-serve` service at concurrency N
//!   with mixed tenants, held byte-identical to a fresh single-threaded
//!   engine, plus trace-shape determinism and cancellation-hygiene
//!   checks.
//! * [`chaos_oracle`] — the service-layer chaos matrix: the corpus
//!   stormed through a real TCP server and the retrying client while
//!   replies are torn, workers panic, slow-loris connections stall, and
//!   the catalog hot-reloads epochs mid-storm — answers held
//!   byte-identical throughout, permits and telemetry conserved exactly.
//!
//! [`Intent`]: generators::Intent

pub mod chaos_oracle;
pub mod corpus;
pub mod fault;
pub mod fuzz;
pub mod generators;
pub mod harness;
pub mod oracle;
pub mod serve_oracle;
pub mod shrink;
pub mod vocab;

pub use fuzz::{Failure, FuzzReport, Generator};
pub use harness::{case_rng, check, replay_command};
pub use vocab::{pick, ATTRS, TAGS, VALUES};
