//! The slow-query log: bounded per-dataset rings of query captures.
//!
//! Jobs whose service time exceeds the configured threshold deposit a
//! [`SlowEntry`] — the query text, outcome class, timings, the plan the
//! optimiser chose, per-phase trace timings, and (when a guard tripped)
//! the trip report. Entries live in a per-dataset `VecDeque` capped at a
//! fixed capacity, oldest evicted first. Capturing a slow query is by
//! definition off the fast path, so a short mutex section is fine here —
//! unlike the histograms and event ring, which must stay lock-free.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One captured slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The service-assigned request id.
    pub request_id: u64,
    pub tenant: String,
    pub dataset: String,
    /// Which protocol surface submitted it (e.g. "query", "batch").
    pub surface: String,
    /// The query text as submitted.
    pub query: String,
    /// Outcome class: "ok", "budget", "cancelled", "engine", ...
    pub outcome: String,
    /// Submission-to-reply service time, microseconds.
    pub service_us: u64,
    /// Engine evaluation time, microseconds.
    pub eval_us: u64,
    /// Compact plan text from the optimiser (present even on tripped
    /// runs — it is noted before evaluation starts).
    pub plan: String,
    /// Per-phase trace timings as `(phase, micros)` pairs.
    pub phases: Vec<(String, u64)>,
    /// The guard's progress report when a budget/cancellation tripped.
    pub trip: Option<String>,
}

/// Bounded per-dataset slow-query rings.
pub struct SlowLog {
    /// Service-time threshold in microseconds; strictly-greater captures.
    threshold_us: u64,
    /// Max entries retained per dataset.
    capacity: usize,
    rings: Mutex<BTreeMap<String, std::collections::VecDeque<SlowEntry>>>,
    captured: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("threshold_us", &self.threshold_us)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SlowLog {
    /// A log capturing queries slower than `threshold_us`, keeping at most
    /// `capacity` entries per dataset (min 1).
    pub fn new(threshold_us: u64, capacity: usize) -> SlowLog {
        SlowLog {
            threshold_us,
            capacity: capacity.max(1),
            rings: Mutex::new(BTreeMap::new()),
            captured: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Whether a service time of `service_us` qualifies as slow.
    pub fn qualifies(&self, service_us: u64) -> bool {
        service_us > self.threshold_us
    }

    /// Deposit one capture (the caller checks [`SlowLog::qualifies`]; this
    /// always stores). Evicts the oldest entry for the dataset when full.
    pub fn capture(&self, entry: SlowEntry) {
        let mut rings = self.rings.lock().unwrap();
        let ring = rings.entry(entry.dataset.clone()).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        self.captured
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Total captures ever made (including since-evicted ones).
    pub fn captured(&self) -> u64 {
        self.captured.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// All retained entries, grouped by dataset in name order, oldest
    /// first within a dataset.
    pub fn entries(&self) -> Vec<(String, Vec<SlowEntry>)> {
        let rings = self.rings.lock().unwrap();
        rings
            .iter()
            .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
            .collect()
    }

    /// Retained entries for one dataset, oldest first.
    pub fn entries_for(&self, dataset: &str) -> Vec<SlowEntry> {
        let rings = self.rings.lock().unwrap();
        rings
            .get(dataset)
            .map(|v| v.iter().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dataset: &str, id: u64) -> SlowEntry {
        SlowEntry {
            request_id: id,
            tenant: "t".into(),
            dataset: dataset.into(),
            surface: "query".into(),
            query: format!("q{id}"),
            outcome: "ok".into(),
            service_us: 1000 + id,
            eval_us: 900,
            plan: "scan(n)".into(),
            phases: vec![("eval".into(), 900)],
            trip: None,
        }
    }

    #[test]
    fn threshold_is_strictly_greater() {
        let log = SlowLog::new(100, 4);
        assert!(!log.qualifies(99));
        assert!(!log.qualifies(100));
        assert!(log.qualifies(101));
        // Zero threshold captures everything that took any time at all.
        let zero = SlowLog::new(0, 4);
        assert!(zero.qualifies(1));
    }

    #[test]
    fn per_dataset_rings_evict_oldest() {
        let log = SlowLog::new(0, 2);
        for id in 0..5 {
            log.capture(entry("a", id));
        }
        log.capture(entry("b", 100));
        assert_eq!(log.captured(), 6);
        let a = log.entries_for("a");
        assert_eq!(
            a.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            [3, 4],
            "newest two retained, oldest first"
        );
        assert_eq!(log.entries_for("b").len(), 1);
        assert!(log.entries_for("missing").is_empty());
        let grouped = log.entries();
        assert_eq!(
            grouped.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
    }

    #[test]
    fn captures_preserve_the_full_payload() {
        let log = SlowLog::new(0, 1);
        let mut e = entry("d", 7);
        e.trip = Some("phase=eval rounds=12 matches=3 nodes=20000".into());
        e.outcome = "budget".into();
        log.capture(e.clone());
        assert_eq!(log.entries_for("d"), [e]);
    }
}
