//! The bounded lock-free request event ring.
//!
//! Every request the service admits gets a `RequestId`, and the lifecycle
//! points — admit, dequeue, start, trip, reply — append an [`Event`] here.
//! The ring holds the most recent `capacity` events; an append **never
//! blocks and never fails**: when the ring is full it overwrites the
//! oldest slot and the loss is counted, so at quiescence the accounting
//! identity
//!
//! ```text
//! retained + dropped == appended
//! ```
//!
//! holds exactly ([`EventRingStats`]), which the storm tests pin.
//!
//! Implementation: each slot is a tiny seqlock. A writer takes a global
//! ticket (`fetch_add`), claims its slot by CAS-ing the slot's version
//! from even (idle) to odd (writing), stores the three payload words, and
//! releases the slot at version `2·ticket + 2` — even again, and encoding
//! which append the slot now holds. If the claim CAS loses (another writer
//! is mid-flight on the same slot, which requires two appends a full ring
//! apart racing), the writer simply counts its event as dropped and
//! returns: the hot path never spins. Readers ([`EventRing::snapshot`])
//! double-read each slot's version around the payload and skip torn slots,
//! then order events by ticket.

use std::sync::atomic::{AtomicU64, Ordering};

/// What happened at one point of a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Admission control granted the request a slot.
    Admit,
    /// A pool worker dequeued the job.
    Dequeue,
    /// The engine run began.
    Start,
    /// A budget or cancellation tripped mid-run.
    Trip,
    /// The response was produced (any outcome).
    Reply,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Dequeue => "dequeue",
            EventKind::Start => "start",
            EventKind::Trip => "trip",
            EventKind::Reply => "reply",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            EventKind::Admit => 0,
            EventKind::Dequeue => 1,
            EventKind::Start => 2,
            EventKind::Trip => 3,
            EventKind::Reply => 4,
        }
    }

    fn from_u8(b: u8) -> EventKind {
        match b {
            0 => EventKind::Admit,
            1 => EventKind::Dequeue,
            2 => EventKind::Start,
            3 => EventKind::Trip,
            _ => EventKind::Reply,
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The request this event belongs to.
    pub request_id: u64,
    pub kind: EventKind,
    /// Clock reading at the event, in microseconds.
    pub t_micros: u64,
    /// Small event-specific tag (the service stores the outcome class for
    /// replies/trips; 0 elsewhere).
    pub code: u32,
}

/// Accounting snapshot of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventRingStats {
    /// Appends attempted (tickets issued).
    pub appended: u64,
    /// Events currently readable from the ring.
    pub retained: u64,
    /// Appends no longer readable: overwritten by newer events or skipped
    /// under a same-slot write race. `retained + dropped == appended`.
    pub dropped: u64,
    /// The subset of `dropped` lost to same-slot write races (diagnostic;
    /// expected ~0 in practice).
    pub lost_races: u64,
}

/// One seqlocked slot: version word + three payload words.
struct SlotCell {
    /// 0 = never written; odd = write in flight; even `2t+2` = holds the
    /// event appended with ticket `t`.
    version: AtomicU64,
    request_id: AtomicU64,
    t_micros: AtomicU64,
    /// kind in the low byte, code in the next 32 bits.
    meta: AtomicU64,
}

/// The bounded drop-oldest event ring.
pub struct EventRing {
    slots: Vec<SlotCell>,
    appended: AtomicU64,
    lost_races: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl EventRing {
    /// A ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            slots: (0..capacity)
                .map(|_| SlotCell {
                    version: AtomicU64::new(0),
                    request_id: AtomicU64::new(0),
                    t_micros: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            appended: AtomicU64::new(0),
            lost_races: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append one event. Wait-free: on a same-slot write race the event is
    /// counted as dropped instead of spinning.
    pub fn record(&self, ev: Event) {
        let ticket = self.appended.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        let seen = slot.version.load(Ordering::Acquire);
        if seen & 1 == 1 {
            // Another writer is mid-flight on this slot: give up rather
            // than block. The ticket still counts as appended → dropped.
            self.lost_races.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .version
            .compare_exchange(seen, ticket * 2 + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lost_races.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.request_id.store(ev.request_id, Ordering::Relaxed);
        slot.t_micros.store(ev.t_micros, Ordering::Relaxed);
        slot.meta.store(
            u64::from(ev.kind.to_u8()) | (u64::from(ev.code) << 8),
            Ordering::Relaxed,
        );
        slot.version.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Total appends attempted so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Read every consistent slot, oldest first, plus the accounting
    /// stats. Torn slots (a writer mid-flight during the read) are skipped
    /// and show up as dropped; at quiescence the snapshot is exact.
    pub fn snapshot(&self) -> (Vec<Event>, EventRingStats) {
        let mut ticketed: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue;
            }
            let request_id = slot.request_id.load(Ordering::Relaxed);
            let t_micros = slot.t_micros.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != v1 {
                continue; // torn read: a writer got in between
            }
            ticketed.push((
                (v1 - 2) / 2,
                Event {
                    request_id,
                    kind: EventKind::from_u8((meta & 0xff) as u8),
                    t_micros,
                    code: (meta >> 8) as u32,
                },
            ));
        }
        ticketed.sort_by_key(|(t, _)| *t);
        let appended = self.appended.load(Ordering::Relaxed);
        let retained = ticketed.len() as u64;
        let stats = EventRingStats {
            appended,
            retained,
            dropped: appended.saturating_sub(retained),
            lost_races: self.lost_races.load(Ordering::Relaxed),
        };
        (ticketed.into_iter().map(|(_, e)| e).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, kind: EventKind, t: u64) -> Event {
        Event {
            request_id: id,
            kind,
            t_micros: t,
            code: 0,
        }
    }

    #[test]
    fn retains_everything_under_capacity_in_order() {
        let ring = EventRing::new(8);
        for i in 0..5u64 {
            ring.record(ev(i, EventKind::Admit, i * 10));
        }
        let (events, stats) = ring.snapshot();
        assert_eq!(stats.appended, 5);
        assert_eq!(stats.retained, 5);
        assert_eq!(stats.dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert_eq!(events[3].t_micros, 30);
    }

    #[test]
    fn drop_oldest_keeps_the_newest_and_counts_exactly() {
        let ring = EventRing::new(4);
        for i in 0..11u64 {
            ring.record(ev(i, EventKind::Reply, i));
        }
        let (events, stats) = ring.snapshot();
        assert_eq!(stats.appended, 11);
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.dropped, 7, "oldest 7 overwritten");
        assert_eq!(stats.retained + stats.dropped, stats.appended);
        assert_eq!(
            events.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            [7, 8, 9, 10],
            "the newest capacity-many survive, oldest first"
        );
    }

    #[test]
    fn event_payload_roundtrips_through_the_packed_slot() {
        let ring = EventRing::new(2);
        ring.record(Event {
            request_id: u64::MAX - 3,
            kind: EventKind::Trip,
            t_micros: 123_456_789,
            code: 0xDEAD_BEEF,
        });
        let (events, _) = ring.snapshot();
        assert_eq!(
            events,
            [Event {
                request_id: u64::MAX - 3,
                kind: EventKind::Trip,
                t_micros: 123_456_789,
                code: 0xDEAD_BEEF,
            }]
        );
    }

    #[test]
    fn zero_capacity_is_clamped_not_divided_by() {
        let ring = EventRing::new(0);
        ring.record(ev(1, EventKind::Admit, 0));
        ring.record(ev(2, EventKind::Reply, 1));
        let (events, stats) = ring.snapshot();
        assert_eq!(ring.capacity(), 1);
        assert_eq!(events.len(), 1);
        assert_eq!(stats.retained + stats.dropped, stats.appended);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            EventKind::Admit,
            EventKind::Dequeue,
            EventKind::Start,
            EventKind::Trip,
            EventKind::Reply,
        ] {
            assert_eq!(EventKind::from_u8(kind.to_u8()), kind);
            assert!(!kind.name().is_empty());
        }
    }
}
