//! The lock-free log-linear latency histogram.
//!
//! Values (u64, any unit — the service records nanoseconds or
//! microseconds) are bucketed HDR-style: each power-of-two octave is split
//! into [`SUB`] linear sub-buckets, so every bucket's width is at most
//! 1/[`SUB`] of its lower bound. Values below `2·SUB` land in exact
//! single-value buckets. That bounds the relative error of any
//! bucket-derived statistic by [`Histo::MAX_RELATIVE_ERROR`] = 1/SUB,
//! which is the contract the percentile property tests pin.
//!
//! `record` is two relaxed `fetch_add`s on fixed storage — no locks, no
//! allocation, safe from any thread, and cheap enough for a per-request
//! hot path. Reads go through [`Histo::snapshot`]; a snapshot taken during
//! concurrent writes is a consistent-enough view (each bucket read once),
//! and at quiescence it is exact. Snapshots merge ([`HistoSnapshot::merge`])
//! so per-key histograms can be reduced to service-wide ones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (power of two). 8 → ≤ 12.5% relative error.
pub const SUB: u64 = 8;
const SUB_BITS: u32 = SUB.trailing_zeros(); // 3

/// Octaves 0..=61 (values up to u64::MAX) × SUB sub-buckets.
pub const BUCKETS: usize = 62 * SUB as usize;

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        // Exact buckets: 0..16 map to indices 0..16 (octaves 0 and 1).
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= 4
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    let octave = i as u64 / SUB;
    let sub = i as u64 % SUB;
    if octave <= 1 {
        return i as u64;
    }
    (SUB + sub) << (octave - 1)
}

/// The largest value that lands in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    let octave = i as u64 / SUB;
    if octave <= 1 {
        return i as u64;
    }
    let width = 1u64 << (octave - 1);
    bucket_lower(i).saturating_add(width - 1)
}

/// A lock-free fixed-bucket log-linear histogram.
pub struct Histo {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histo")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histo {
    fn default() -> Self {
        Histo::new()
    }
}

impl Histo {
    /// The bucketing scheme's relative-error bound: any recorded value and
    /// its bucket's bounds differ by at most this fraction of the value.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    pub fn new() -> Histo {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("BUCKETS-sized vec"));
        Histo {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating only at u64 wrap, which the
    /// service's microsecond latencies cannot reach).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Exact at quiescence; during
    /// concurrent writes each bucket is read once (relaxed), so the copy
    /// may straddle in-flight records but never tears a counter.
    pub fn snapshot(&self) -> HistoSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistoSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// An owned, mergeable copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Per-bucket counts (see [`bucket_lower`]/[`bucket_upper`]).
    pub counts: Vec<u64>,
    /// Total recorded values (= sum of `counts`).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistoSnapshot {
    pub fn empty() -> HistoSnapshot {
        HistoSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Fold another snapshot into this one (histograms are mergeable by
    /// bucket-wise addition).
    pub fn merge(&mut self, other: &HistoSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Nearest-rank percentile (`p` in 0..=1): the upper bound of the
    /// bucket holding the ⌈p·n⌉-th smallest recorded value — the same
    /// "smallest value with at least p of the distribution at or below
    /// it" statistic `gql_bench::serve_load` reports, within one bucket's
    /// relative error ([`Histo::MAX_RELATIVE_ERROR`]).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, ending
    /// with the total — the shape a Prometheus histogram exposition needs.
    /// Only boundaries where the cumulative count changes are emitted.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c > 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_line() {
        // Every value maps into a bucket whose [lower, upper] contains it,
        // and boundaries are exact inverses of the index function.
        for v in (0u64..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(
                bucket_lower(i) <= v && v <= bucket_upper(i),
                "v={v} i={i} lower={} upper={}",
                bucket_lower(i),
                bucket_upper(i)
            );
        }
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
            if i + 1 < BUCKETS {
                assert_eq!(
                    bucket_upper(i) + 1,
                    bucket_lower(i + 1),
                    "buckets must tile without gaps at {i}"
                );
            }
        }
    }

    #[test]
    fn bucket_width_respects_the_relative_error_bound() {
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            if lo > 0 {
                let rel = (hi - lo) as f64 / lo as f64;
                assert!(
                    rel <= Histo::MAX_RELATIVE_ERROR + 1e-12,
                    "bucket {i} [{lo},{hi}] rel error {rel}"
                );
            }
        }
    }

    #[test]
    fn records_count_and_percentiles() {
        let h = Histo::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // Small values are exact-bucketed; larger ones within 12.5%.
        assert_eq!(s.percentile(0.05), 5);
        let p50 = s.p50();
        assert!((50..=56).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((99..=111).contains(&p99), "p99={p99}");
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
        assert_eq!(s.percentile(1.0), s.percentile(0.9999));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histo::new().snapshot();
        assert_eq!((s.count, s.sum, s.p50(), s.p99()), (0, 0, 0, 0));
        assert!(s.cumulative_buckets().is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let (a, b) = (Histo::new(), Histo::new());
        for v in [1u64, 10, 100, 1000] {
            a.record(v);
        }
        for v in [5u64, 50, 500, 5000, 50_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 9);
        assert_eq!(merged.sum, a.sum() + b.sum());
        let all = Histo::new();
        for v in [1u64, 10, 100, 1000, 5, 50, 500, 5000, 50_000] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot(), "merge == recording into one");
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = Histo::new();
        for v in [3u64, 3, 17, 900, 900, 900, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, s.count);
    }
}
