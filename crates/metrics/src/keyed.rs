//! A keyed registry of histograms.
//!
//! The service records one latency histogram per
//! `(tenant, dataset, surface, outcome)` combination. Keys are unbounded
//! in principle but tiny in practice, so a `Mutex<BTreeMap>` guards only
//! the key → histogram lookup; the returned [`Histo`] is `Arc`-shared and
//! recording into it is lock-free. Callers on a hot path can cache the
//! `Arc` and skip the map entirely.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histo::{Histo, HistoSnapshot};

/// Histograms indexed by an ordered key.
pub struct KeyedHistos<K: Ord + Clone> {
    map: Mutex<BTreeMap<K, Arc<Histo>>>,
}

impl<K: Ord + Clone> Default for KeyedHistos<K> {
    fn default() -> Self {
        KeyedHistos::new()
    }
}

impl<K: Ord + Clone + std::fmt::Debug> std::fmt::Debug for KeyedHistos<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<K> = self.map.lock().unwrap().keys().cloned().collect();
        f.debug_struct("KeyedHistos").field("keys", &keys).finish()
    }
}

impl<K: Ord + Clone> KeyedHistos<K> {
    pub fn new() -> KeyedHistos<K> {
        KeyedHistos {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// The histogram for `key`, created on first use. The lock covers only
    /// this lookup; record into the returned handle lock-free.
    pub fn get(&self, key: &K) -> Arc<Histo> {
        let mut map = self.map.lock().unwrap();
        if let Some(h) = map.get(key) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histo::new());
        map.insert(key.clone(), Arc::clone(&h));
        h
    }

    /// Record `v` under `key` (lookup + lock-free record).
    pub fn record(&self, key: &K, v: u64) {
        self.get(key).record(v);
    }

    /// Snapshot every key's histogram, in key order.
    pub fn snapshots(&self) -> Vec<(K, HistoSnapshot)> {
        let map = self.map.lock().unwrap();
        map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    }

    /// Merge every key's histogram into one service-wide snapshot.
    pub fn merged(&self) -> HistoSnapshot {
        let mut out = HistoSnapshot::empty();
        for (_, s) in self.snapshots() {
            out.merge(&s);
        }
        out
    }

    /// Number of distinct keys seen so far.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_get_independent_histograms() {
        let k: KeyedHistos<(&str, &str)> = KeyedHistos::new();
        k.record(&("a", "x"), 10);
        k.record(&("a", "x"), 20);
        k.record(&("b", "y"), 1000);
        assert_eq!(k.len(), 2);
        let snaps = k.snapshots();
        assert_eq!(snaps[0].0, ("a", "x"));
        assert_eq!(snaps[0].1.count, 2);
        assert_eq!(snaps[1].1.count, 1);
        assert_eq!(k.merged().count, 3);
        assert_eq!(k.merged().sum, 1030);
    }

    #[test]
    fn cached_handle_and_map_record_agree() {
        let k: KeyedHistos<u32> = KeyedHistos::new();
        let h = k.get(&7);
        h.record(5);
        k.record(&7, 6);
        assert_eq!(k.len(), 1);
        assert_eq!(k.get(&7).count(), 2);
    }

    #[test]
    fn empty_registry_merges_to_empty() {
        let k: KeyedHistos<String> = KeyedHistos::new();
        assert!(k.is_empty());
        assert_eq!(k.merged().count, 0);
    }
}
