//! # gql-metrics — the service telemetry substrate
//!
//! Dependency-free building blocks the query service ([`gql-serve`])
//! assembles into its telemetry plane. Everything here is designed for a
//! hot path that must never perturb answers or block:
//!
//! * [`Histo`] — a fixed-bucket **log-linear latency histogram** with
//!   atomic buckets: `record` is a couple of relaxed `fetch_add`s, no
//!   locks, no allocation. Snapshots are mergeable and reduce to
//!   nearest-rank percentiles with a bounded relative error of
//!   [`Histo::MAX_RELATIVE_ERROR`] (one sub-bucket's width).
//! * [`Clock`] — the injected monotonic time source: [`MonotonicClock`]
//!   in production, [`ManualClock`] in tests so every windowed behaviour
//!   is deterministic.
//! * [`Windows`] — rolling time-window counters: a ring of per-second
//!   epoch buckets advanced by the clock, summed over the trailing
//!   1 s / 10 s / 60 s. The substrate for rate limiting over time windows.
//! * [`EventRing`] — a bounded lock-free request-event log. Writers never
//!   block and never wait for readers: when the ring is full the oldest
//!   event is overwritten and the drop is **counted**, so the accounting
//!   identity `retained + dropped == appended` holds exactly at
//!   quiescence.
//! * [`SlowLog`] — a bounded per-dataset ring of slow-query captures
//!   (plan text, phase timings, trip reports). The slow path by
//!   definition, so a short critical section is acceptable here.
//! * [`KeyedHistos`] — a keyed registry of histograms
//!   (per (tenant, dataset, surface, outcome) in the service), where the
//!   brief registry lock only guards the map lookup — recording itself is
//!   on the lock-free histogram.

pub mod clock;
pub mod events;
pub mod histo;
pub mod keyed;
pub mod slow;
pub mod window;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use events::{Event, EventKind, EventRing, EventRingStats};
pub use histo::{Histo, HistoSnapshot};
pub use keyed::KeyedHistos;
pub use slow::{SlowEntry, SlowLog};
pub use window::{WindowSnapshot, Windows, WINDOW_SLOTS};
