//! The injected monotonic time source.
//!
//! Every windowed structure in this crate takes its notion of "now" from a
//! [`Clock`] rather than calling `Instant::now()` directly, so tests can
//! drive bucket rotation, window sums and epoch wraparound deterministically
//! with a [`ManualClock`]. Production uses [`MonotonicClock`], a single
//! `Instant` anchor read on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must be cheap and
/// thread-safe: the service reads the clock on every request.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since an arbitrary (per-clock) epoch. Must
    /// never decrease.
    fn now_micros(&self) -> u64;
}

/// Production clock: microseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.anchor.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// Test clock: time only moves when the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A clock pre-set to `micros`.
    pub fn at_micros(micros: u64) -> ManualClock {
        ManualClock {
            micros: AtomicU64::new(micros),
        }
    }

    pub fn advance_micros(&self, by: u64) {
        self.micros.fetch_add(by, Ordering::SeqCst);
    }

    pub fn advance_secs(&self, by: u64) {
        self.advance_micros(by * 1_000_000);
    }

    /// Jump to an absolute reading; panics on an attempt to move backwards
    /// (the trait promises monotonicity).
    pub fn set_micros(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        assert!(
            prev <= micros,
            "ManualClock moved backwards: {prev} -> {micros}"
        );
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_micros(5);
        c.advance_secs(2);
        assert_eq!(c.now_micros(), 2_000_005);
        c.set_micros(3_000_000);
        assert_eq!(c.now_micros(), 3_000_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_refuses_to_rewind() {
        let c = ManualClock::at_micros(10);
        c.set_micros(3);
    }

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
